"""Benchmark harness package (one module per EXPERIMENTS.md experiment)."""
