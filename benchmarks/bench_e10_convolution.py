"""E10 — Section 5: convolutional layers as circuit matrix multiplications.

Regenerates the P x Q / Q x K GEMM framing of a convolution layer, runs a
small quantized layer through the Theorem 4.9 circuit, and quantifies the
fan-in splitting argument given at the end of Section 5.
"""

import numpy as np

from benchmarks.conftest import report
from repro.analysis import split_for_fan_in, split_overhead
from repro.convolution import ConvolutionShape, build_convolution_layer
from repro.fastmm import strassen_2x2


def test_e10_circuit_convolution_layer(benchmark, rng):
    shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=2)
    layer = build_convolution_layer(shape, bit_width=2, depth_parameter=2)
    image = rng.integers(0, 4, (4, 4, 1))
    kernels = rng.integers(-3, 4, (2, 2, 2, 1))

    scores = benchmark(layer.apply, image, kernels)
    assert (scores == layer.reference(image, kernels)).all()
    p, q, k = shape.gemm_shape
    report(
        "E10: convolution-as-GEMM on the product circuit",
        [
            {
                "patches P": p,
                "patch length Q": q,
                "kernels K": k,
                "GEMM dim (padded)": layer.gemm_dimension,
                "circuit gates": layer.matmul.circuit.size,
                "circuit depth": layer.matmul.circuit.depth,
            }
        ],
    )


def test_e10_fan_in_splitting(benchmark):
    def compute_rows():
        rows = []
        for budget in (256, 1024, 4096, 16384):
            pieces = split_for_fan_in(1024, budget)
            overhead = split_overhead(64, budget, depth_parameter=3)
            rows.append(
                {
                    "fan-in budget x": budget,
                    "rows/piece x^(1/omega)": round(budget ** (1 / strassen_2x2().omega), 1),
                    "pieces for P=1024": pieces,
                    "gate overhead ratio (N=64)": round(overhead["overhead_ratio"], 2),
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E10: splitting the GEMM for a bounded fan-in architecture (Section 5)", rows)
    pieces = [row["pieces for P=1024"] for row in rows]
    assert all(b <= a for a, b in zip(pieces, pieces[1:]))  # bigger budget, fewer pieces
