"""E11 — Section 5: triangle counting and clustering coefficients.

Regenerates the social-network workflow the paper sketches: generate graphs
with and without community structure, compute wedge counts and clustering
coefficients, derive tau, and answer the threshold query with the subcubic
circuit, cross-checked against the naive baseline and the exact count.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import build_naive_triangle_circuit
from repro.triangles import (
    block_two_level_adjacency,
    build_triangle_query,
    erdos_renyi_adjacency,
    global_clustering_coefficient,
    tau_from_wedges,
    triangle_count,
    wedge_count,
)


def test_e11_clustering_coefficient_contrast(benchmark, rng):
    def compute_rows():
        rows = []
        community = block_two_level_adjacency(16, 4, p_within=0.9, p_between=0.05, rng=rng)
        density = community.sum() / (16 * 15)
        background = erdos_renyi_adjacency(16, float(density), rng)
        for name, adjacency in (("BTER-like (communities)", community), ("Erdos-Renyi (control)", background)):
            rows.append(
                {
                    "graph": name,
                    "edges": int(adjacency.sum() // 2),
                    "wedges": wedge_count(adjacency),
                    "triangles": triangle_count(adjacency),
                    "clustering": round(global_clustering_coefficient(adjacency), 3),
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E11: community structure raises the clustering coefficient (Section 5)", rows)
    assert rows[0]["clustering"] > rows[1]["clustering"]


def test_e11_threshold_query_via_subcubic_circuit(benchmark, rng):
    adjacency = block_two_level_adjacency(8, 4, p_within=0.9, p_between=0.1, rng=rng)
    tau = tau_from_wedges(adjacency, 0.3)
    query = build_triangle_query(8, tau_triangles=tau, depth_parameter=3)
    naive = build_naive_triangle_circuit(8, tau)

    answer = benchmark(query.evaluate, adjacency)
    assert answer == query.reference(adjacency)
    assert answer == naive.evaluate(adjacency)
    report(
        "E11: threshold query (tau from wedge count)",
        [
            {
                "tau (triangles)": tau,
                "exact triangles": triangle_count(adjacency),
                "circuit answer": answer,
                "subcubic gates": query.trace_circuit.circuit.size,
                "naive gates": naive.circuit.size,
            }
        ],
    )
