"""E12 — Section 6 open problem: firing energy of the circuits.

The paper asks what the energy complexity (number of firing gates per
evaluation, Uchizawa et al.) of these matrix-multiplication circuits is.
This experiment measures it for the subcubic trace circuit and the naive
depth-2 baseline over an ensemble of random graphs.
"""

import numpy as np

from benchmarks.conftest import report
from repro.analysis import measure_circuit_energy
from repro.core import build_naive_triangle_circuit, build_trace_circuit
from repro.triangles import erdos_renyi_adjacency, triangle_count


def test_e12_energy_of_trace_circuits(benchmark, rng):
    n, samples = 8, 12
    graphs = [erdos_renyi_adjacency(n, 0.5, rng) for _ in range(samples)]
    tau = max(1, int(np.median([triangle_count(g) for g in graphs])))

    subcubic = build_trace_circuit(n, 6 * tau, bit_width=1, depth_parameter=3)
    naive = build_naive_triangle_circuit(n, tau)

    def measure():
        subcubic_report = measure_circuit_energy(
            subcubic.circuit, [subcubic.encoding.encode(g) for g in graphs]
        )
        naive_report = measure_circuit_energy(naive.circuit, [naive.encode(g) for g in graphs])
        return subcubic_report, naive_report

    subcubic_report, naive_report = benchmark(measure)
    rows = [
        {
            "circuit": "subcubic trace (d=3)",
            "gates": subcubic_report.circuit_size,
            "mean energy": round(subcubic_report.mean_energy, 1),
            "fraction firing": round(subcubic_report.mean_fraction_firing, 3),
        },
        {
            "circuit": "naive depth-2 triangles",
            "gates": naive_report.circuit_size,
            "mean energy": round(naive_report.mean_energy, 1),
            "fraction firing": round(naive_report.mean_fraction_firing, 3),
        },
    ]
    report("E12: firing energy over 12 random G(8, 0.5) graphs", rows)
    assert 0.0 < subcubic_report.mean_fraction_firing < 1.0
    assert 0.0 <= naive_report.mean_fraction_firing <= 1.0
    # The naive circuit's energy is dominated by the triangle gates that fire;
    # the subcubic circuit fires a bounded fraction of a much larger circuit.
    assert subcubic_report.mean_energy > 0
