"""E13 — Ablation: the Lemma 4.3 geometric schedule vs the alternatives.

The paper notes (Sections 2.2 and 4.2) that "simply selecting every kth
level does not achieve our best results" and that the natural single-jump
strategy is far worse.  Two views are reported:

* the *leaf-stage* gate estimate (the quantity Lemma 4.2/4.3 actually
  bounds) evaluated with exact rational arithmetic at a large N, where the
  asymptotics are visible, for the geometric, every-k and single-jump
  schedules under the same depth budget;
* exact dry-run counts of full trace circuits at a small N, where the
  product stage still dominates, as the finite-size counterpart.

A second benchmark measures what builder-level structural gate sharing buys
on a constructed circuit.
"""

from fractions import Fraction

from benchmarks.conftest import report
from repro.core import build_trace_circuit, count_trace_circuit
from repro.core.gate_count_model import _leaf_stage_estimate
from repro.core.schedule import (
    LevelSchedule,
    constant_depth_schedule,
    direct_schedule,
    every_k_schedule,
)
from repro.fastmm import sparsity_parameters, strassen_2x2


def test_e13_schedule_ablation_leaf_stage(benchmark):
    algorithm = strassen_2x2()
    params = sparsity_parameters(algorithm).side_A
    exponent = 40
    n = 2 ** exponent

    def compute_rows():
        geometric = constant_depth_schedule(algorithm, n, 4)
        candidates = [
            ("Lemma 4.3 geometric (d=4)", geometric),
            ("every 10th level (same #levels)", every_k_schedule(algorithm, n, 10)),
            ("single jump (Section 4.2 motivation)", direct_schedule(algorithm, n)),
        ]
        rows = []
        for name, schedule in candidates:
            estimate = _leaf_stage_estimate(
                n, algorithm.t, 1, schedule, params.alpha, params.beta
            )
            rows.append(
                {
                    "schedule": name,
                    "levels": str(list(schedule.levels)),
                    "steps t": schedule.t_steps,
                    "leaf-stage gates (model)": float(estimate),
                    "gates / N^3": float(Fraction(estimate, n ** 3)),
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report(f"E13: leaf-stage estimate at N=2^{exponent} (Lemma 4.2/4.3 model)", rows)
    geometric, uniform, single = rows
    assert geometric["leaf-stage gates (model)"] < uniform["leaf-stage gates (model)"]
    assert geometric["leaf-stage gates (model)"] < single["leaf-stage gates (model)"]
    assert geometric["steps t"] <= 4


def test_e13_schedule_ablation_exact_small_n(benchmark):
    algorithm = strassen_2x2()
    n = 8

    def compute_rows():
        rows = []
        for name, schedule in (
            ("Lemma 4.3 geometric (d=3)", constant_depth_schedule(algorithm, n, 3)),
            ("single jump", direct_schedule(algorithm, n)),
            ("every level", every_k_schedule(algorithm, n, 1)),
        ):
            cost = count_trace_circuit(n, bit_width=1, schedule=schedule)
            rows.append(
                {
                    "schedule": name,
                    "levels": str(list(schedule.levels)),
                    "gates": cost.size,
                    "depth": cost.depth,
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E13: exact dry-run trace-circuit counts at N=8", rows)
    geometric, single, every_level = rows
    assert geometric["gates"] < single["gates"]
    assert geometric["depth"] < every_level["depth"]


def test_e13_gate_sharing_ablation(benchmark):
    def compute_rows():
        rows = []
        for share in (False, True):
            circuit = build_trace_circuit(8, 10, bit_width=1, depth_parameter=3, share_gates=share)
            rows.append(
                {
                    "gate sharing": share,
                    "gates": circuit.circuit.size,
                    "edges": circuit.circuit.edges,
                    "depth": circuit.circuit.depth,
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E13: structural gate sharing (builder-level dedup) at N=8", rows)
    assert rows[1]["gates"] <= rows[0]["gates"]
    assert rows[1]["depth"] == rows[0]["depth"]
