"""E14 — Engine backends: sparse vs dense vs sharded batch evaluation.

The execution engine compiles a circuit once per backend and streams
batches through it.  This experiment measures where each backend wins:

* *dense* (int64 numpy matrices) on small/shallow circuits, where the CSR
  bookkeeping of scipy dominates the actual arithmetic — the engine's
  auto-heuristic routes such circuits dense;
* *sparse* (CSR) on the constructed trace circuits, whose thousands of
  nodes would make dense layer matrices quadratically large;
* the *sharded* scheduler (process pool over column chunks) on wide batches,
  reported alongside the serial chunked path.

Rows follow the bench_e* convention: one JSON-compatible dict per
configuration, printed through the shared report helper.
"""

import time

import numpy as np

from benchmarks.conftest import report
from repro.circuits.builder import CircuitBuilder
from repro.core import build_trace_circuit
from repro.engine import Engine, EngineConfig, evaluate_batched


def parity_circuit(n_bits):
    """Depth-2 parity: the canonical small/shallow circuit (2^k batches)."""
    builder = CircuitBuilder(name=f"parity-{n_bits}")
    inputs = builder.allocate_inputs(n_bits)
    at_least = [builder.add_gate(inputs, [1] * n_bits, k) for k in range(1, n_bits + 1)]
    weights = [1 if k % 2 == 1 else -1 for k in range(1, n_bits + 1)]
    out = builder.add_gate(at_least, weights, 1)
    builder.set_outputs([out], ["parity"])
    return builder.build()


def best_time(fn, repeats=7):
    """Minimum wall time over several repeats (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e14_sparse_vs_dense_backends(benchmark, rng):
    engine = Engine()
    cases = [
        (parity_circuit(8), [256, 4096]),
        (parity_circuit(16), [4096]),
        (parity_circuit(32), [4096]),
    ]

    def compute_rows():
        rows = []
        for circuit, widths in cases:
            programs = {
                name: engine.compile(circuit, backend=name)
                for name in ("sparse", "dense")
            }
            for width in widths:
                batch = rng.integers(0, 2, size=(circuit.n_inputs, width))
                sparse_s = best_time(lambda: programs["sparse"].run(batch))
                dense_s = best_time(lambda: programs["dense"].run(batch))
                rows.append(
                    {
                        "circuit": circuit.name,
                        "gates": circuit.size,
                        "nodes": circuit.n_nodes,
                        "batch": width,
                        "sparse_s": sparse_s,
                        "dense_s": dense_s,
                        "dense_speedup": sparse_s / dense_s,
                        "auto_backend": engine.compile(circuit).backend_name,
                    }
                )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E14: sparse vs dense backend on small/shallow circuits", rows)
    # Headline claim: dense beats sparse on at least one small-circuit /
    # large-batch configuration (in practice: all of them).
    small_large = [row for row in rows if row["nodes"] <= 512 and row["batch"] >= 4096]
    assert small_large, "no small-circuit/large-batch configuration measured"
    assert any(row["dense_s"] < row["sparse_s"] for row in small_large)
    # ...and the auto-heuristic agrees with the measurement on these circuits.
    assert all(row["auto_backend"] == "dense" for row in rows)


def test_e14_trace_circuit_backend_choice(benchmark, rng):
    # The constructed trace circuits are far too large for dense layer
    # matrices; the heuristic must keep them on the sparse path, and the
    # sparse program must sustain wide batches.
    trace = build_trace_circuit(4, 10, bit_width=1, depth_parameter=2)
    engine = Engine()
    program = engine.compile(trace.circuit)
    batch = rng.integers(0, 2, size=(trace.circuit.n_inputs, 1024))

    def run():
        return program.run(batch)

    node_values = benchmark(run)
    rows = [
        {
            "circuit": trace.circuit.name,
            "gates": trace.circuit.size,
            "nodes": trace.circuit.n_nodes,
            "batch": 1024,
            "backend": program.backend_name,
            "mean_energy": float(
                node_values[trace.circuit.n_inputs :, :].sum(axis=0).mean()
            ),
        }
    ]
    report("E14: trace circuit stays on the sparse backend", rows)
    assert program.backend_name == "sparse"


def test_e14_sharded_scheduler(benchmark, rng):
    trace = build_trace_circuit(4, 10, bit_width=1, depth_parameter=2)
    engine = Engine()
    program = engine.compile(trace.circuit, backend="sparse")
    batch = rng.integers(0, 2, size=(trace.circuit.n_inputs, 2048))
    serial_config = EngineConfig(chunk_size=256)
    sharded_config = EngineConfig(chunk_size=256, max_workers=2, parallel_threshold=512)

    def compute_rows():
        serial_s = best_time(lambda: evaluate_batched(program, batch, serial_config), repeats=3)
        sharded_s = best_time(lambda: evaluate_batched(program, batch, sharded_config), repeats=3)
        return [
            {
                "circuit": trace.circuit.name,
                "batch": 2048,
                "chunk": 256,
                "serial_s": serial_s,
                "sharded_2w_s": sharded_s,
                "shard_speedup": serial_s / sharded_s,
            }
        ]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E14: serial vs sharded (2 workers) chunked evaluation", rows)
    # Correctness of the sharded path, whatever the timing says.
    serial_values = evaluate_batched(program, batch, serial_config)
    sharded_values = evaluate_batched(program, batch, sharded_config)
    assert (serial_values == sharded_values).all()
