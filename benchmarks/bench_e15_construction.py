"""E15 — Vectorized circuit construction: columnar store + template stamping.

PR 1 made *evaluation* fast; this experiment measures what the columnar gate
store, the bulk ``add_gates`` API and gadget template stamping do to
*construction* time.  Every case builds the same circuit twice —
``vectorize=False`` (the seed's per-gate ``Gate``-object path, kept as an
explicit legacy mode) and ``vectorize=True`` (the array-native path) — and
checks that the two circuits are bit-identical (equal ``structural_hash``)
before reporting the speedup.

The headline configuration is the paper's definition-based matrix-product
circuit at ``n = 64`` (1-bit entries, Theorem 4.1 staged sums keep the edge
count tractable): the vectorized path must construct it at least 10x faster
than the per-gate path.  A smaller subcubic Theorem 4.9 circuit rides along
so the level-selected construction is covered too.

Rows follow the bench_e* convention and are additionally written to
``BENCH_e15.json`` at the repository root (the CI smoke step uploads it).
Set ``E15_QUICK=1`` for the CI-sized quick mode.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import report
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.naive_circuits import build_naive_matmul_circuit
from repro.engine import Engine

QUICK = os.environ.get("E15_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e15.json"


def _timed_build(build):
    start = time.perf_counter()
    built = build()
    return built, time.perf_counter() - start


def _case(name, build, check_outputs=False, rng=None):
    """Build legacy + vectorized, compare hashes (and optionally outputs)."""
    # The vectorized build is cheap enough to repeat: best of two shields the
    # reported ratio from one noisy sample (the legacy build runs once — at
    # n=64 it alone takes ~40 s).  The first fast circuit is dropped before
    # the retry so two million-gate circuits never coexist.
    fast, fast_s = _timed_build(lambda: build(True))
    fast_hash = fast.circuit.structural_hash()
    gates, edges = fast.circuit.size, fast.circuit.edges
    del fast
    fast, retry_s = _timed_build(lambda: build(True))
    fast_s = min(fast_s, retry_s)
    if not check_outputs:
        fast = None  # release before the big legacy build
    legacy, legacy_s = _timed_build(lambda: build(False))
    legacy_hash = legacy.circuit.structural_hash()
    row = {
        "case": name,
        "gates": gates,
        "edges": edges,
        "legacy_s": round(legacy_s, 3),
        "vectorized_s": round(fast_s, 3),
        "speedup": round(legacy_s / fast_s, 2) if fast_s else float("inf"),
        "hash_equal": fast_hash == legacy_hash,
    }
    if check_outputs:
        # Engine outputs must be unchanged on the compiled result.  (Equal
        # hashes already imply one compiled program; this checks end to end.)
        engine = Engine()
        batch = rng.integers(0, 2, size=(fast.circuit.n_inputs, 64))
        fast_out = engine.evaluate(fast.circuit, batch).outputs
        legacy_out = engine.evaluate(legacy.circuit, batch).outputs
        row["outputs_equal"] = bool((fast_out == legacy_out).all())
    return row


def test_e15_construction_speedup(benchmark, rng):
    if QUICK:
        cases = [
            (
                "naive-matmul n=16 b=1 stages=2",
                lambda v: build_naive_matmul_circuit(
                    16, bit_width=1, stages=2, vectorize=v
                ),
                False,
            ),
            (
                "matmul-strassen n=4 d=2",
                lambda v: build_matmul_circuit(4, depth_parameter=2, vectorize=v),
                True,
            ),
        ]
        headline = "naive-matmul n=16 b=1 stages=2"
        required_speedup = 1.5  # small circuits amortize less; CI-noise safe
    else:
        cases = [
            (
                "naive-matmul n=64 b=1 stages=2",
                lambda v: build_naive_matmul_circuit(
                    64, bit_width=1, stages=2, vectorize=v
                ),
                False,
            ),
            (
                "naive-matmul n=32 b=1 stages=2",
                lambda v: build_naive_matmul_circuit(
                    32, bit_width=1, stages=2, vectorize=v
                ),
                False,
            ),
            (
                "matmul-strassen n=8 b=1 loglog",
                lambda v: build_matmul_circuit(8, bit_width=1, vectorize=v),
                True,
            ),
        ]
        headline = "naive-matmul n=64 b=1 stages=2"
        required_speedup = 10.0

    def compute_rows():
        return [
            _case(name, build, check_outputs=check, rng=rng)
            for name, build, check in cases
        ]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E15: per-gate (legacy) vs columnar/stamped construction", rows)
    BENCH_JSON.write_text(
        json.dumps({"experiment": "E15", "quick": QUICK, "rows": rows}, indent=2)
    )

    # The two paths must agree bit for bit before any timing claim counts.
    assert all(row["hash_equal"] for row in rows), rows
    assert all(row.get("outputs_equal", True) for row in rows), rows
    headline_row = next(row for row in rows if row["case"] == headline)
    assert headline_row["speedup"] >= required_speedup, headline_row
