"""E16 — Value banks: array-native stage interfaces + bulk-aware counting.

PR 2 made gate *emission* array-native; this experiment measures what the
value banks (``RepBank``/``SignedValueBank`` flowing between construction
stages) and the bulk-aware ``CountingBuilder`` buy on top of it.

Two comparisons are reported:

* **Construction** — the same circuit built with ``banked=True`` (the
  default pipeline) and ``banked=False`` (the PR-2 stamped-but-scalar stage
  interface).  Both must be bit-identical (equal ``structural_hash``); the
  banked path must be at least 2x faster at the headline size (n = 64).
* **Counting** — ``count_matmul_circuit`` through the bulk/template-reusing
  counting builder versus the per-gate legacy dry run
  (``vectorize=False``).  Both must report identical costs; the fast path
  must be at least 10x faster at the headline size (n = 32).

Rows follow the bench_e* convention and are additionally written to
``BENCH_e16.json`` at the repository root (the CI smoke step uploads it
alongside ``BENCH_e15.json``).  Set ``E16_QUICK=1`` for the CI-sized quick
mode.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import report
from repro.core.gate_count_model import count_matmul_circuit
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.naive_circuits import build_naive_matmul_circuit

QUICK = os.environ.get("E16_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e16.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _construction_case(name, build, rounds=3):
    """Banked vs stamped builds of one circuit, hashes compared.

    Best-of-``rounds`` on both sides shields the reported ratio from noisy
    samples (allocator warm-up on the first multi-million-gate build).
    """
    banked_s = stamped_s = float("inf")
    banked = stamped = None
    for _ in range(rounds):
        banked, dt = _timed(lambda: build(banked=True))
        banked_s = min(banked_s, dt)
        stamped, dt = _timed(lambda: build(banked=False))
        stamped_s = min(stamped_s, dt)
    row = {
        "case": name,
        "kind": "construction",
        "gates": banked.circuit.size,
        "edges": banked.circuit.edges,
        "banked_s": round(banked_s, 3),
        "stamped_s": round(stamped_s, 3),
        "speedup": round(stamped_s / banked_s, 2) if banked_s else float("inf"),
        "hash_equal": banked.circuit.structural_hash()
        == stamped.circuit.structural_hash(),
    }
    return row


def _counting_case(name, count):
    """Template-reusing vs per-gate counting of one construction."""
    fast, fast_s = _timed(lambda: count(vectorize=True))
    slow, slow_s = _timed(lambda: count(vectorize=False))
    return {
        "case": name,
        "kind": "counting",
        "size": fast.size,
        "fast_s": round(fast_s, 3),
        "legacy_s": round(slow_s, 3),
        "speedup": round(slow_s / fast_s, 2) if fast_s else float("inf"),
        "counts_equal": fast == slow,
    }


def test_e16_value_banks(benchmark):
    if QUICK:
        cases = [
            (
                "construction",
                "naive-matmul n=16 b=1 stages=2",
                lambda: _construction_case(
                    "naive-matmul n=16 b=1 stages=2",
                    lambda banked: build_naive_matmul_circuit(
                        16, bit_width=1, stages=2, banked=banked
                    ),
                ),
                1.15,  # small circuits amortize less; CI-noise safe
            ),
            (
                "counting",
                "count-matmul n=8 loglog",
                lambda: _counting_case(
                    "count-matmul n=8 loglog",
                    lambda vectorize: count_matmul_circuit(8, vectorize=vectorize),
                ),
                2.0,
            ),
        ]
    else:
        cases = [
            (
                "construction",
                "naive-matmul n=64 b=1 stages=2",
                lambda: _construction_case(
                    "naive-matmul n=64 b=1 stages=2",
                    lambda banked: build_naive_matmul_circuit(
                        64, bit_width=1, stages=2, banked=banked
                    ),
                ),
                2.0,
            ),
            (
                "construction",
                "matmul-strassen n=8 b=1 loglog",
                lambda: _construction_case(
                    "matmul-strassen n=8 b=1 loglog",
                    lambda banked: build_matmul_circuit(8, bit_width=1, banked=banked),
                ),
                1.0,  # subcubic levels already batch well; parity is the point
            ),
            (
                "counting",
                "count-matmul n=32 loglog",
                lambda: _counting_case(
                    "count-matmul n=32 loglog",
                    lambda vectorize: count_matmul_circuit(32, vectorize=vectorize),
                ),
                10.0,
            ),
        ]

    def compute_rows():
        return [(case() | {"required": required}) for _, _, case, required in cases]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E16: value banks (construction) + bulk-aware counting", rows)
    BENCH_JSON.write_text(
        json.dumps({"experiment": "E16", "quick": QUICK, "rows": rows}, indent=2)
    )

    for row in rows:
        if row["kind"] == "construction":
            assert row["hash_equal"], row
        else:
            assert row["counts_equal"], row
        assert row["speedup"] >= row["required"], row
