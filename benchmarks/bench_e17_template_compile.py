"""E17 — Template-streaming compilation: skip the compile-time CSR re-gather.

PR 2/3 made *construction* array-native (~30x over the seed), which left the
engine's compile step — re-reading the consolidated CSR, gathering every
wire into depth layers, and building per-layer sparse matrices — as the
dominant slice of end-to-end latency.  The template-streaming path compiles
one layer plan per stamped gadget template and tiles it across the stamps,
so compile cost scales with the number of *distinct templates* plus the
residual (non-stamped) gates instead of with the full wire count.

For each case the same circuit is compiled twice on fresh engines — once
through the template path (``template_compile=True``, the default) and once
through the classic CSR path (``template_compile=False``) — with the
structural hash pre-warmed so both sides time exactly the backend compile.
Both programs must be bit-identical on a probe batch; the headline case
(naive matmul n = 64) must compile at least 3x faster.

Rows follow the bench_e* convention and are written to ``BENCH_e17.json``
at the repository root (uploaded by CI alongside e15/e16).  Set
``E17_QUICK=1`` for the CI-sized quick mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import report
from repro.core.naive_circuits import build_naive_matmul_circuit
from repro.core.matmul_circuit import build_matmul_circuit
from repro.engine import Engine
from repro.engine.config import EngineConfig

QUICK = os.environ.get("E17_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e17.json"


def _best_compile(circuit, config, rounds):
    """Best-of-``rounds`` cold compile time on fresh engines (warm hash)."""
    best_s = float("inf")
    program = None
    for _ in range(rounds):
        engine = Engine(config)
        start = time.perf_counter()
        program = engine.compile(circuit)
        best_s = min(best_s, time.perf_counter() - start)
    return program, best_s


def _compile_case(name, build, required, rounds=2, backend="sparse"):
    built = build()
    circuit = built.circuit
    circuit.structural_hash()  # warm the hash cache: both sides skip it
    covered = sum(block.k * block.n_gates for block in circuit.template_blocks)
    template_prog, template_s = _best_compile(
        circuit, EngineConfig(backend=backend, template_compile=True), rounds
    )
    csr_prog, csr_s = _best_compile(
        circuit, EngineConfig(backend=backend, template_compile=False), rounds
    )
    rng = np.random.default_rng(17)
    probe = rng.integers(0, 2, size=(circuit.n_inputs, 2)).astype(np.int64)
    bit_identical = bool(
        (template_prog.run(probe) == csr_prog.run(probe)).all()
    )
    return {
        "case": name,
        "backend": backend,
        "gates": circuit.size,
        "edges": circuit.edges,
        "blocks": len(circuit.template_blocks),
        "covered": round(covered / circuit.size, 4),
        "template_s": round(template_s, 4),
        "csr_s": round(csr_s, 4),
        "speedup": round(csr_s / template_s, 2) if template_s else float("inf"),
        "bit_identical": bit_identical,
        "required": required,
    }


def test_e17_template_streaming_compile(benchmark):
    if QUICK:
        cases = [
            (
                "naive-matmul n=16 b=1 stages=2",
                lambda: build_naive_matmul_circuit(16, bit_width=1, stages=2),
                1.5,  # small circuits leave less CSR work to skip; CI-safe
            ),
            (
                "matmul-strassen n=8 b=1 loglog",
                lambda: build_matmul_circuit(8, bit_width=1),
                1.0,  # ~60% residual gates: parity is the point here
            ),
        ]
    else:
        cases = [
            (
                "naive-matmul n=64 b=1 stages=2",
                lambda: build_naive_matmul_circuit(64, bit_width=1, stages=2),
                3.0,  # acceptance target; measured ~250x
            ),
            (
                "naive-matmul n=32 b=1 stages=2",
                lambda: build_naive_matmul_circuit(32, bit_width=1, stages=2),
                3.0,
            ),
            (
                "matmul-strassen n=8 b=1 loglog",
                lambda: build_matmul_circuit(8, bit_width=1),
                1.5,  # subcubic levels stamp too (~90% covered at n >= 8)
            ),
        ]

    def compute_rows():
        return [_compile_case(name, build, required) for name, build, required in cases]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E17: template-streaming compile vs consolidated-CSR compile", rows)
    BENCH_JSON.write_text(
        json.dumps({"experiment": "E17", "quick": QUICK, "rows": rows}, indent=2)
    )

    for row in rows:
        assert row["bit_identical"], row
        assert row["speedup"] >= row["required"], row
