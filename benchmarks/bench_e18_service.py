"""E18 — Persistent evaluation service vs the per-call process pool.

The paper's amortization story — build a circuit once, answer many queries
cheaply — was broken at the runtime layer: every ``evaluate_batched`` call
with workers spawned a fresh ``multiprocessing.Pool``, re-shipping state to
every worker and narrowing each batch into one chunk per worker (so a
query's sparse traversal cost was paid once *per worker*, per call).  The
resident :class:`~repro.engine.service.EvaluationService` keeps workers
alive, installs a compiled program once per worker, and ships only input
columns per query.

Each case replays the same stream of repeated matmul queries (distinct
random input batches against one compiled circuit) three ways under one
``EngineConfig``:

* ``per-call pool`` — the pre-service scheduler path (``persistent_pool``
  off): pool spawn + chunk narrowing on every query;
* ``service`` — steady-state submit/result loop over the resident pool
  (one warm-up call installs the program first);
* ``serial`` — ``program.run`` inline, the bit-identity oracle.

Every service and per-call result must be bit-identical to serial.  The
headline case (repeated n=32 matmul queries) must run at least 5x faster
through the service than through the per-call pool; a pipelined row
(all queries submitted before the first result is collected) is reported
alongside.  Rows go to ``BENCH_e18.json`` at the repository root (uploaded
by CI next to e15/e16/e17).  Set ``E18_QUICK=1`` for the CI-sized quick
mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import report
from repro.core.naive_circuits import build_naive_matmul_circuit
from repro.engine import Engine, EngineConfig, EvaluationService, evaluate_batched

QUICK = os.environ.get("E18_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e18.json"


def _query_stream(circuit, batch_width, repeats, seed=18):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, size=(circuit.n_inputs, batch_width))
        for _ in range(repeats)
    ]


#: Timed passes per mode; the best one is reported (same convention as the
#: best-of-rounds compile timing of bench_e17 — shields the single-machine
#: numbers from scheduler noise without averaging away the contrast).
ROUNDS = 2


def _time_per_call_pool(program, batches, config):
    """The pre-service path: one pool spawn per query (best of ROUNDS)."""
    best_s = float("inf")
    results = None
    for _ in range(ROUNDS):
        attempt = []
        start = time.perf_counter()
        for batch in batches:
            attempt.append(evaluate_batched(program, batch, config))
        best_s = min(best_s, time.perf_counter() - start)
        results = attempt
    return best_s, results


def _time_service(program, batches, config, pipelined):
    """Steady state through the resident pool (best of ROUNDS, warm installs)."""
    with EvaluationService(config) as service:
        service.evaluate(program, batches[0])  # warm-up: spawn + install once
        best_s = float("inf")
        results = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            if pipelined:
                futures = [service.submit(program, batch) for batch in batches]
                attempt = [future.result() for future in futures]
            else:
                attempt = [service.evaluate(program, batch) for batch in batches]
            best_s = min(best_s, time.perf_counter() - start)
            results = attempt
        stats = service.stats()
    return best_s, results, stats


def _service_case(name, n, workers, batch_width, repeats, required, required_pipelined):
    circuit = build_naive_matmul_circuit(n, bit_width=1, stages=2).circuit
    program = Engine(EngineConfig(backend="sparse")).compile(circuit)
    config = EngineConfig(
        backend="sparse", max_workers=workers, parallel_threshold=1
    )
    batches = _query_stream(circuit, batch_width, repeats)

    serial_start = time.perf_counter()
    expected = [program.run(batch) for batch in batches]
    serial_s = time.perf_counter() - serial_start

    percall_s, percall_results = _time_per_call_pool(program, batches, config)
    service_s, service_results, stats = _time_service(
        program, batches, config, pipelined=False
    )
    pipelined_s, pipelined_results, _ = _time_service(
        program, batches, config, pipelined=True
    )

    bit_identical = all(
        (got == want).all()
        for outputs in (percall_results, service_results, pipelined_results)
        for got, want in zip(outputs, expected)
    )
    return {
        "case": name,
        "gates": circuit.size,
        "workers": workers,
        "batch": batch_width,
        "queries": repeats,
        "serial_s": round(serial_s, 4),
        "percall_s": round(percall_s, 4),
        "service_s": round(service_s, 4),
        "service_pipelined_s": round(pipelined_s, 4),
        "speedup": round(percall_s / service_s, 2) if service_s else float("inf"),
        "speedup_pipelined": (
            round(percall_s / pipelined_s, 2) if pipelined_s else float("inf")
        ),
        "installs": stats.installs,
        "bit_identical": bit_identical,
        "required": required,
        "required_pipelined": required_pipelined,
    }


def test_e18_persistent_service_throughput(benchmark):
    if QUICK:
        cases = [
            # CI runners have few cores and noisy neighbours: smaller circuit,
            # fewer workers, a conservative floor.  The measured full-mode
            # numbers live in the checked-in BENCH_e18.json.
            ("naive-matmul n=16 repeated queries", 16, 4, 4, 6, 2.0, 1.0),
        ]
    else:
        cases = [
            # The acceptance case: repeated n=32 matmul queries, >= 5x.
            ("naive-matmul n=32 repeated queries", 32, 8, 8, 6, 5.0, 1.5),
            ("naive-matmul n=16 repeated queries", 16, 4, 4, 8, 3.0, 1.5),
        ]

    def compute_rows():
        return [_service_case(*case) for case in cases]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E18: persistent evaluation service vs per-call pool", rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "experiment": "E18",
                "quick": QUICK,
                "cpu_count": os.cpu_count(),
                "rows": rows,
            },
            indent=2,
        )
    )

    for row in rows:
        assert row["bit_identical"], row
        assert row["speedup"] >= row["required"], row
        assert row["speedup_pipelined"] >= row["required_pipelined"], row
