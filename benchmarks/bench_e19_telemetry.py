"""E19 — Telemetry overhead: instrumented hot paths vs the no-op registry.

The observability layer of ``repro.obs`` threads counters and timing spans
through the engine, compile cache, and scheduler.  Its contract is that the
instrumentation is effectively free: the disabled path is one attribute
check against shared no-op singletons, and the enabled path (counter
increments plus a handful of ``perf_counter`` pairs per evaluation) stays
within a few percent of the uninstrumented steady state.

The workload is the steady-state query loop the instrumentation targets:
one compiled n=32 naive-matmul circuit evaluated serially over a stream of
random batches (compile once, then pure ``engine.evaluate`` traffic — cache
hits, scheduler chunks, span timing on every query).  Three modes run the
identical stream:

* ``disabled`` — the default :class:`~repro.obs.metrics.NullRegistry`;
* ``enabled`` — a live :class:`~repro.obs.metrics.MetricsRegistry`;
* ``debug`` is deliberately *not* timed: per-layer GEMM spans are an
  opt-in diagnostic (``REPRO_TELEMETRY_DEBUG=1``) with no overhead budget.

The two modes are timed best-of-rounds with the rounds *interleaved*
(disabled pass, enabled pass, repeat): machine drift on a shared box dwarfs
the per-query instrumentation cost, and interleaving exposes both modes to
the same drift so the best-of comparison cancels it (sequential
all-of-one-then-all-of-the-other rounds showed swings of +/-10% on
identical code).  The headline assertion pins enabled-telemetry overhead
below 3% in full mode; quick mode (``E19_QUICK=1``, CI-sized) uses a looser
10% gate because the shrunken stream amplifies timer noise.  The enabled pass must also actually record
the series the subsystem promises (cache hits, evaluate spans, chunk
counts) — an accidentally-dead registry would otherwise "win" the overhead
comparison.  Rows go to ``BENCH_e19.json`` at the repository root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import report
from repro import obs
from repro.core.naive_circuits import build_naive_matmul_circuit
from repro.engine import Engine, EngineConfig

QUICK = os.environ.get("E19_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e19.json"

#: Timed passes per mode; the best one is reported.
ROUNDS = 3 if QUICK else 7


def _query_stream(circuit, batch_width, repeats, seed=19):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, size=(circuit.n_inputs, batch_width))
        for _ in range(repeats)
    ]


def _run_stream(engine, circuit, batches):
    start = time.perf_counter()
    for batch in batches:
        engine.evaluate(circuit, batch)
    return time.perf_counter() - start


def _overhead_case(name, n, batch_width, repeats, max_overhead):
    circuit = build_naive_matmul_circuit(n, bit_width=1, stages=2).circuit
    batches = _query_stream(circuit, batch_width, repeats)
    config = EngineConfig(backend="sparse")

    # One engine per mode so each keeps its own warm compile cache; the
    # instrumentation reads the process-global registry at call time, so
    # toggling obs between passes switches modes without rebuilding anything.
    engine_disabled = Engine(config)
    engine_enabled = Engine(config)
    registry = obs.enable(reset=True)
    disabled_s = enabled_s = float("inf")
    try:
        obs.disable()
        engine_disabled.evaluate(circuit, batches[0])  # warm-up: compile
        obs.set_registry(registry)
        engine_enabled.evaluate(circuit, batches[0])
        for _ in range(ROUNDS):
            obs.disable()
            disabled_s = min(
                disabled_s, _run_stream(engine_disabled, circuit, batches)
            )
            obs.set_registry(registry)
            enabled_s = min(enabled_s, _run_stream(engine_enabled, circuit, batches))
        snapshot = registry.snapshot()
    finally:
        obs.disable()

    recorded = {
        "cache_hits": sum(
            value
            for key, value in snapshot["counters"].items()
            if key.startswith("cache.hits")
        ),
        "eval_columns": sum(
            value
            for key, value in snapshot["counters"].items()
            if key.startswith("engine.eval_columns")
        ),
        "evaluate_spans": sum(
            summary["count"]
            for key, summary in snapshot["histograms"].items()
            if key.startswith("engine.evaluate_s")
        ),
        "chunks": sum(
            value
            for key, value in snapshot["counters"].items()
            if key.startswith("scheduler.chunks")
        ),
    }
    overhead = (enabled_s - disabled_s) / disabled_s if disabled_s else 0.0
    return {
        "case": name,
        "gates": circuit.size,
        "batch": batch_width,
        "queries": repeats,
        "rounds": ROUNDS,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "overhead_pct": round(overhead * 100.0, 2),
        "max_overhead_pct": round(max_overhead * 100.0, 2),
        "recorded": recorded,
    }


def test_e19_telemetry_overhead(benchmark):
    if QUICK:
        # CI-sized: a smaller circuit and shorter stream; the loosened gate
        # absorbs timer noise on shared runners.  Full-mode numbers live in
        # the checked-in BENCH_e19.json.
        cases = [("naive-matmul n=16 steady-state", 16, 16, 30, 0.10)]
    else:
        # The acceptance case: steady-state n=32 matmul queries, < 3%.
        cases = [
            ("naive-matmul n=32 steady-state", 32, 16, 40, 0.03),
            ("naive-matmul n=16 steady-state", 16, 16, 60, 0.03),
        ]

    def compute_rows():
        return [_overhead_case(*case) for case in cases]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E19: telemetry overhead (enabled vs no-op registry)", rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "experiment": "E19",
                "quick": QUICK,
                "cpu_count": os.cpu_count(),
                "rows": rows,
            },
            indent=2,
        )
    )

    for row in rows:
        # The enabled pass must really have instrumented the stream.
        recorded = row["recorded"]
        per_round_queries = row["queries"]
        assert recorded["cache_hits"] >= per_round_queries, row
        assert recorded["eval_columns"] > 0, row
        assert recorded["evaluate_spans"] >= per_round_queries, row
        assert recorded["chunks"] >= per_round_queries, row
        assert row["overhead_pct"] <= row["max_overhead_pct"], row
