"""E1 — Figure 1: Strassen's algorithm (correctness and operation counts).

Regenerates the content of the paper's Figure 1: the seven multiplications,
their correctness, and the operation-count recurrence
``T(N) = 7 T(N/2) + 18 (N/2)^2`` giving ``N^{log2 7}`` scalar multiplications.
"""

import numpy as np

from benchmarks.conftest import report
from repro.fastmm import fast_matmul, operation_counts, strassen_2x2
from repro.util.matrices import random_integer_matrix


def test_e1_strassen_brent_verification(benchmark):
    algorithm = strassen_2x2()
    result = benchmark(algorithm.verify)
    assert result is True


def test_e1_recursive_strassen_vs_naive_counts(benchmark):
    algorithm = strassen_2x2()

    def compute_rows():
        rows = []
        for exponent in range(1, 9):
            n = 2 ** exponent
            counts = operation_counts(algorithm, n)
            rows.append(
                {
                    "N": n,
                    "strassen_mults": counts.scalar_multiplications,
                    "strassen_adds": counts.scalar_additions,
                    "naive_mults": n ** 3,
                    "ratio": n ** 3 / counts.scalar_multiplications,
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E1: Strassen operation counts (Figure 1 / Section 2.1)", rows)
    # Shape claims: 7^l multiplications, and the advantage over N^3 grows with N.
    assert rows[3]["strassen_mults"] == 7 ** 4
    ratios = [row["ratio"] for row in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))


def test_e1_recursive_strassen_matches_oracle(benchmark, rng):
    algorithm = strassen_2x2()
    a = random_integer_matrix(32, 8, rng=rng)
    b = random_integer_matrix(32, 8, rng=rng)

    result = benchmark(fast_matmul, a, b, algorithm)
    assert (result == a.astype(object) @ b.astype(object)).all()
