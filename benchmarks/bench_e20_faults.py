"""E20 — What service hardening costs, and what fault recovery delivers.

PR 7 wrapped the resident :class:`~repro.engine.service.EvaluationService`
in a failure ladder: heartbeats, stall detection, bounded retry with
backoff, per-job deadlines, respawn budgets, degradation.  Two questions
keep that honest:

* **Overhead** — the machinery must be ~free on the healthy path.  The
  same query stream runs through a service with hardening effectively off
  (no heartbeats, no stall detection) and one with the soak-grade
  aggressive knobs (10 Hz heartbeats, 1 s stall timeout); the hardened
  run must stay within ``MAX_OVERHEAD`` of the bare one.
* **Recovery** — under a constant-kill :class:`FaultPlan`
  (``kill_before_task=5`` re-armed on every respawn), the stream must
  still complete bit-identically, and the row records the measured
  recovery cost (wall-time multiple vs the healthy hardened run) plus the
  restart/retry counters, so regressions in recovery efficiency show up
  as a number, not a feeling.

Rows go to ``BENCH_e20.json`` at the repository root (uploaded by CI next
to e15–e19).  Set ``E20_QUICK=1`` for the CI-sized quick mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import report
from repro.core.naive_circuits import build_naive_matmul_circuit
from repro.engine import Engine, EngineConfig, EvaluationService, FaultPlan

QUICK = os.environ.get("E20_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e20.json"

#: Hardened / bare wall-time ratio the healthy path must stay within.
#: Loose on purpose: the healthy-path work per heartbeat interval is large,
#: so the true overhead is a few percent; the slack absorbs CI noise.
MAX_OVERHEAD = 1.25

ROUNDS = 2


def _stream(circuit, batch_width, repeats, seed=20):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, size=(circuit.n_inputs, batch_width))
        for _ in range(repeats)
    ]


def _run_stream(program, batches, config):
    """Best-of-ROUNDS pipelined wall time through one resident service."""
    with EvaluationService(config) as service:
        service.evaluate(program, batches[0])  # warm-up: spawn + install
        best_s = float("inf")
        results = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            futures = [service.submit(program, batch) for batch in batches]
            attempt = [future.result(timeout=120.0) for future in futures]
            best_s = min(best_s, time.perf_counter() - start)
            results = attempt
        stats = service.stats()
    return best_s, results, stats


def _fault_case(name, n, workers, batch_width, repeats):
    circuit = build_naive_matmul_circuit(n, bit_width=1, stages=2).circuit
    program = Engine(EngineConfig(backend="sparse")).compile(circuit)
    batches = _stream(circuit, batch_width, repeats)
    expected = [program.run(batch) for batch in batches]

    base = dict(backend="sparse", max_workers=workers, parallel_threshold=1)
    # Hardening off: no heartbeats, no stall detection — the pre-PR-7 wire
    # protocol (retry/deadline machinery is present but never exercised).
    bare = EngineConfig(**base, service_heartbeat_s=0.0, service_stall_timeout_s=0.0)
    # Soak-grade hardening: 10 Hz heartbeats, aggressive stall detection.
    hardened = EngineConfig(
        **base, service_heartbeat_s=0.1, service_stall_timeout_s=1.0
    )
    # Same hardened knobs plus sustained kill pressure; generous budgets so
    # recovery (not budget exhaustion) is what gets measured.
    faulty = EngineConfig(
        **base,
        service_heartbeat_s=0.1,
        service_stall_timeout_s=1.0,
        service_retry_backoff_s=0.02,
        service_task_attempts=50,
        service_respawn_budget=1_000_000,
        fault_plan=FaultPlan(kill_before_task=5),
    )

    bare_s, bare_results, _ = _run_stream(program, batches, bare)
    hard_s, hard_results, _ = _run_stream(program, batches, hardened)
    fault_s, fault_results, fault_stats = _run_stream(program, batches, faulty)

    bit_identical = all(
        (got == want).all()
        for outputs in (bare_results, hard_results, fault_results)
        for got, want in zip(outputs, expected)
    )
    return {
        "case": name,
        "gates": circuit.size,
        "workers": workers,
        "batch": batch_width,
        "queries": repeats,
        "bare_s": round(bare_s, 4),
        "hardened_s": round(hard_s, 4),
        "faulty_s": round(fault_s, 4),
        "hardening_overhead": round(hard_s / bare_s, 3) if bare_s else float("inf"),
        "recovery_cost": round(fault_s / hard_s, 2) if hard_s else float("inf"),
        "worker_restarts": fault_stats.worker_restarts,
        "retries": fault_stats.retries,
        "stall_kills": fault_stats.stall_kills,
        "bit_identical": bit_identical,
        "max_overhead": MAX_OVERHEAD,
    }


def test_e20_hardening_overhead_and_fault_recovery(benchmark):
    if QUICK:
        cases = [("naive-matmul n=12 kill-storm", 12, 2, 6, 6)]
    else:
        cases = [
            ("naive-matmul n=16 kill-storm", 16, 2, 8, 10),
            ("naive-matmul n=24 kill-storm", 24, 4, 8, 8),
        ]

    def compute_rows():
        return [_fault_case(*case) for case in cases]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E20: hardening overhead and fault recovery", rows)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "experiment": "E20",
                "quick": QUICK,
                "cpu_count": os.cpu_count(),
                "rows": rows,
            },
            indent=2,
        )
    )

    for row in rows:
        assert row["bit_identical"], row
        assert row["hardening_overhead"] <= row["max_overhead"], row
        # Recovery must actually have been exercised — and terminated.
        assert row["worker_restarts"] >= 1, row
