"""E21 — Disk artifact cache: cold-start restore vs full recompile.

The disk artifact store exists so a process that has *already* compiled a
circuit — in a previous run, on another worker, on the same host yesterday
— never pays the compile again.  This benchmark measures exactly that gap.

Both sides start from the same place: a serialized circuit payload, which
is all a fresh consumer process has.  The cold side pays the full pipeline
— rebuild the circuit from its payload (``circuit_from_dict`` with
validation *disabled*, which is charitable to the cold side), recompute
the structural hash, and run the consolidated-CSR compile (the JSON
round-trip drops template provenance, so this is the classic compile a
``load_circuit`` caller gets).  The warm side replaces all three steps
with a single key-addressed ``DiskArtifactStore.get``, which includes the
full integrity pass (per-file SHA-256) plus the memmap-backed unpickle.

Publication uses the template-compiled program from the producer process;
the structural hash deliberately excludes provenance, so the artifact hits
for the provenance-less consumer circuit — and the restored program must
be bit-identical to the consumer's own fresh compile on a probe batch.
The headline case (naive matmul n = 64) must restore at least 100x faster
than the cold pipeline; measured headroom on the reference machine is
roughly 10x beyond the floor.

Rows follow the bench_e* convention and are written to ``BENCH_e21.json``
at the repository root (uploaded by CI alongside e15–e20).  Set
``E21_QUICK=1`` for the CI-sized quick mode.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import report
from repro.circuits.serialize import circuit_from_dict, circuit_to_dict
from repro.core.naive_circuits import build_naive_matmul_circuit
from repro.engine import DiskArtifactStore, Engine, EngineConfig

QUICK = os.environ.get("E21_QUICK") == "1"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e21.json"

BACKEND = "sparse"
ROUNDS = 3


def _restore_case(name, n, required):
    built = build_naive_matmul_circuit(n, bit_width=1, stages=2)
    payload = circuit_to_dict(built.circuit)

    # Producer process: compiles the as-built circuit (template provenance
    # intact, so the published artifact is the compact template program)
    # and publishes it under the structural hash.
    producer_hash = built.circuit.structural_hash()
    template_program = Engine(EngineConfig(backend=BACKEND)).compile(built.circuit)

    # Consumer cold path: payload -> circuit -> hash -> compile.
    start = time.perf_counter()
    circuit = circuit_from_dict(payload, validate=False)
    rebuild_s = time.perf_counter() - start
    start = time.perf_counter()
    key_hash = circuit.structural_hash()
    hash_s = time.perf_counter() - start
    assert key_hash == producer_hash
    start = time.perf_counter()
    program = Engine(EngineConfig(backend=BACKEND)).compile(circuit)
    compile_s = time.perf_counter() - start
    cold_s = rebuild_s + hash_s + compile_s

    directory = tempfile.mkdtemp(prefix="bench-e21-")
    try:
        store = DiskArtifactStore(directory)
        assert store.put(producer_hash, BACKEND, template_program)
        payload_bytes = store.stats().total_bytes

        # Consumer warm path: key -> integrity-checked restore.
        restored = None
        restore_s = float("inf")
        for _ in range(ROUNDS):
            fresh = DiskArtifactStore(directory, sweep=False)
            start = time.perf_counter()
            restored = fresh.get(key_hash, BACKEND)
            restore_s = min(restore_s, time.perf_counter() - start)

        rng = np.random.default_rng(17)
        probe = rng.integers(0, 2, size=(circuit.n_inputs, 2)).astype(np.int64)
        bit_identical = bool((restored.run(probe) == program.run(probe)).all())
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    return {
        "case": name,
        "backend": BACKEND,
        "gates": circuit.size,
        "edges": circuit.edges,
        "payload_bytes": payload_bytes,
        "rebuild_s": round(rebuild_s, 4),
        "hash_s": round(hash_s, 4),
        "compile_s": round(compile_s, 4),
        "cold_s": round(cold_s, 4),
        "restore_s": round(restore_s, 6),
        "speedup": round(cold_s / restore_s, 2) if restore_s else float("inf"),
        "bit_identical": bit_identical,
        "required": required,
    }


def test_e21_disk_artifact_restore(benchmark):
    if QUICK:
        cases = [
            # Small circuits leave less cold work to skip (~75x measured);
            # CI-safe floor.
            ("naive-matmul n=16 b=1 stages=2", 16, 10.0),
        ]
    else:
        cases = [
            # Acceptance target: >= 100x.  Measured ~2700x (cold ~108 s,
            # restore ~40 ms) on the reference machine.
            ("naive-matmul n=64 b=1 stages=2", 64, 100.0),
            # Measured ~240x.
            ("naive-matmul n=32 b=1 stages=2", 32, 50.0),
        ]

    def compute_rows():
        return [_restore_case(name, n, required) for name, n, required in cases]

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E21: disk-artifact restore vs cold compile", rows)
    BENCH_JSON.write_text(
        json.dumps({"experiment": "E21", "quick": QUICK, "rows": rows}, indent=2)
    )

    for row in rows:
        assert row["bit_identical"], row
        assert row["speedup"] >= row["required"], row
