"""E2 — Figure 2: the r-ary tree T_A and equation (3).

Regenerates the structural facts of Figure 2: r^h nodes per level, leaf
count N^{log_T r}, the worked example node, and the subtree size-sum
identity sum size(u) = s_A^delta proved via the multinomial theorem.
"""

from benchmarks.conftest import report
from repro.core.trees import (
    edge_matrices,
    edge_term_counts,
    iter_paths,
    path_size,
    relative_functional,
    subtree_size_sum,
)
from repro.fastmm import sparsity_parameters, strassen_2x2


def test_e2_tree_level_statistics(benchmark):
    algorithm = strassen_2x2()
    counts = edge_term_counts(algorithm, "A")

    def compute_rows():
        rows = []
        for level in range(0, 5):
            enumerated = sum(path_size(counts, path) for path in iter_paths(algorithm.r, level))
            rows.append(
                {
                    "level h": level,
                    "nodes r^h": algorithm.r ** level,
                    "matrix dim": f"N/{algorithm.t ** level}",
                    "sum size(u)": enumerated,
                    "s_A^h": subtree_size_sum(counts, level),
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E2: T_A level statistics (Figure 2, equation (3))", rows)
    for row in rows:
        assert row["sum size(u)"] == row["s_A^h"]
    assert rows[1]["sum size(u)"] == sparsity_parameters(strassen_2x2()).s_A


def test_e2_figure_2_example_node(benchmark):
    algorithm = strassen_2x2()
    edges = edge_matrices(algorithm, "A")

    functional = benchmark(relative_functional, edges, (6, 6))
    # (A12 - A22)12 - (A12 - A22)22: four blocks, weights +1/-1.
    assert functional == {(0, 3): 1, (1, 3): -1, (2, 3): -1, (3, 3): 1}
    report(
        "E2: Figure 2 example node (path M7->M7)",
        [{"block": str(k), "coefficient": v} for k, v in sorted(functional.items())],
    )
