"""E3 — The sparsity / constant table of Definition 2.1 and Section 4.3.

Regenerates every numeric constant the paper quotes for Strassen's algorithm
(s = 12, alpha = 7/12, beta = 3, gamma ~ 0.491, c ~ 1.585, c'_j = 4,2,2,4)
and the same table for the other shipped algorithms, showing that gamma is
governed by sparsity rather than by rank or addition count.
"""

import pytest

from benchmarks.conftest import report
from repro.fastmm import available_algorithms, get_algorithm, sparsity_parameters


def test_e3_sparsity_table(benchmark):
    def compute_rows():
        rows = []
        for name in available_algorithms():
            params = sparsity_parameters(get_algorithm(name))
            rows.append(
                {
                    "algorithm": name,
                    "T": params.t,
                    "r": params.r,
                    "omega": round(params.omega, 4),
                    "s_A": params.s_A,
                    "s_B": params.s_B,
                    "s_C": params.s_C,
                    "alpha": float(params.side_A.alpha),
                    "beta": float(params.side_A.beta),
                    "gamma": round(params.side_A.gamma, 4),
                    "c": round(params.side_A.c, 4),
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E3: sparsity parameters (Definition 2.1, Section 4.3)", rows)

    strassen = next(row for row in rows if row["algorithm"] == "strassen")
    assert strassen["s_A"] == strassen["s_B"] == strassen["s_C"] == 12
    assert strassen["alpha"] == pytest.approx(7 / 12)
    assert strassen["beta"] == pytest.approx(3.0)
    assert strassen["gamma"] == pytest.approx(0.491, abs=2e-3)
    assert strassen["c"] == pytest.approx(1.585, abs=5e-3)

    winograd = next(row for row in rows if row["algorithm"] == "winograd")
    assert winograd["s_A"] == 14
    assert winograd["gamma"] > strassen["gamma"]


def test_e3_strassen_c_prime(benchmark):
    params = benchmark(sparsity_parameters, get_algorithm("strassen"))
    assert params.c_prime == (4, 2, 2, 4)
    report(
        "E3: Strassen c'_j (appendix)",
        [{"output entry": f"C{j // 2 + 1}{j % 2 + 1}", "c'_j": v} for j, v in enumerate(params.c_prime)],
    )
