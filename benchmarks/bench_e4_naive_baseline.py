"""E4 — The Theta(N^3) baselines of the paper's introduction.

Regenerates the depth-2 triangle circuit with exactly C(N,3) + 1 gates, the
integer-matrix naive circuits, and their correctness on random graphs.
These are the yardsticks the subcubic circuits of E6-E8 are measured
against.
"""

import math

from benchmarks.conftest import report
from repro.core import build_naive_matmul_circuit, build_naive_triangle_circuit
from repro.triangles import erdos_renyi_adjacency, triangle_count


def test_e4_triangle_circuit_size_and_depth(benchmark):
    def compute_rows():
        rows = []
        for n in (4, 8, 16, 32, 64):
            circuit = build_naive_triangle_circuit(n, 1)
            rows.append(
                {
                    "N": n,
                    "gates": circuit.circuit.size,
                    "C(N,3)+1": math.comb(n, 3) + 1,
                    "depth": circuit.circuit.depth,
                    "edges": circuit.circuit.edges,
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E4: naive depth-2 triangle circuit (Section 1)", rows)
    for row in rows:
        assert row["gates"] == row["C(N,3)+1"]
        assert row["depth"] == 2


def test_e4_triangle_circuit_correctness(benchmark, rng):
    adjacency = erdos_renyi_adjacency(16, 0.4, rng)
    triangles = triangle_count(adjacency)
    circuit = build_naive_triangle_circuit(16, max(1, triangles))

    result = benchmark(circuit.evaluate, adjacency)
    assert result == (triangles >= max(1, triangles))


def test_e4_naive_matmul_circuit_construction(benchmark):
    circuit = benchmark(build_naive_matmul_circuit, 4, 1)
    # Theta(N^3 b^2) gates in depth 3.
    assert circuit.circuit.depth == 3
    report(
        "E4: naive integer matmul circuit",
        [
            {
                "N": 4,
                "bit_width": 1,
                "gates": circuit.circuit.size,
                "depth": circuit.circuit.depth,
                "edges": circuit.circuit.edges,
            }
        ],
    )
