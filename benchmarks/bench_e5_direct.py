"""E5 — Section 4.2 motivation and Theorem 4.1: the direct (single-jump) circuits.

Regenerates the comparison that motivates level selection: flattening the
fast algorithm in one jump costs far more gates than the Lemma 4.3 schedule,
and staged addition (Theorem 4.1) buys gates back at the price of depth.
"""

from benchmarks.conftest import report
from repro.core import count_trace_circuit
from repro.core.schedule import constant_depth_schedule, direct_schedule
from repro.fastmm import strassen_2x2


def test_e5_direct_vs_selected_levels(benchmark):
    algorithm = strassen_2x2()

    def compute_rows():
        rows = []
        for n in (4, 8):
            direct = count_trace_circuit(n, bit_width=1, schedule=direct_schedule(algorithm, n))
            selected = count_trace_circuit(
                n, bit_width=1, schedule=constant_depth_schedule(algorithm, n, 3)
            )
            rows.append(
                {
                    "N": n,
                    "direct gates": direct.size,
                    "direct depth": direct.depth,
                    "selected gates": selected.size,
                    "selected depth": selected.depth,
                    "direct/selected": round(direct.size / selected.size, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E5: one-jump flattening vs Lemma 4.3 level selection", rows)
    # At N=4 both strategies still pick the same levels; from N=8 on the
    # geometric schedule starts winning, and the gap grows with N (the
    # asymptotic gap on the leaf stage is quantified in E13's model view —
    # the flattening is ~N^{log2 12} versus ~N^{omega + c gamma^d}).
    assert all(row["direct gates"] >= row["selected gates"] for row in rows)
    assert rows[-1]["direct gates"] > rows[-1]["selected gates"]
    assert rows[-1]["direct/selected"] >= rows[0]["direct/selected"]


def test_e5_theorem_4_1_staged_tradeoff(benchmark):
    algorithm = strassen_2x2()
    n = 8

    def compute_rows():
        rows = []
        for stages in (1, 2, 3):
            cost = count_trace_circuit(
                n, bit_width=1, schedule=direct_schedule(algorithm, n), stages=stages
            )
            rows.append(
                {
                    "stages d": stages,
                    "gates": cost.size,
                    "depth": cost.depth,
                    "edges": cost.edges,
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E5: Theorem 4.1 depth/size trade-off (single-jump schedule, staged sums)", rows)
    assert rows[1]["gates"] < rows[0]["gates"]       # more depth, fewer gates
    assert rows[1]["depth"] > rows[0]["depth"]
    assert rows[2]["gates"] <= rows[1]["gates"]
