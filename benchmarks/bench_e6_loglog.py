"""E6 — Theorems 4.4 / 4.8: the O(log log N)-depth, O~(N^omega)-gate circuits.

Regenerates the schedule growth (t = O(log log N)) and the gate-count
scaling of the log-log construction, for both the trace and the product
circuits.
"""

from benchmarks.conftest import report
from repro.core import count_matmul_circuit, count_trace_circuit
from repro.core.schedule import loglog_schedule
from repro.fastmm import strassen_2x2


def test_e6_schedule_depth_grows_doubly_logarithmically(benchmark):
    algorithm = strassen_2x2()

    def compute_rows():
        rows = []
        for exponent in (2, 4, 8, 16, 32, 64, 128, 256):
            schedule = loglog_schedule(algorithm, 2 ** exponent)
            rows.append(
                {
                    "N": f"2^{exponent}",
                    "log_T N": exponent,
                    "selected levels t": schedule.t_steps,
                    "trace depth (2t+2)": 2 * schedule.t_steps + 2,
                    "matmul depth (4t+1)": 4 * schedule.t_steps + 1,
                }
            )
        return rows

    rows = benchmark(compute_rows)
    report("E6: Theorem 4.4/4.8 schedule growth (t = O(log log N))", rows)
    # Doubling the exponent (squaring N) adds at most ~1 level.
    steps = [row["selected levels t"] for row in rows]
    for earlier, later in zip(steps, steps[1:]):
        assert later <= earlier + 2
    assert steps[-1] <= 12  # log log of an astronomically large N is still tiny


def test_e6_gate_counts_track_n_omega(benchmark):
    algorithm = strassen_2x2()

    def compute_rows():
        rows = []
        for n in (4, 8, 16):
            trace = count_trace_circuit(n, bit_width=1, schedule=loglog_schedule(algorithm, n))
            matmul = count_matmul_circuit(n, bit_width=1, schedule=loglog_schedule(algorithm, n))
            rows.append(
                {
                    "N": n,
                    "trace gates": trace.size,
                    "trace depth": trace.depth,
                    "matmul gates": matmul.size,
                    "matmul depth": matmul.depth,
                    "N^omega": round(n ** algorithm.omega),
                    "N^3": n ** 3,
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E6: log-log construction gate counts (exact dry-run)", rows)
    # At these tiny sizes the O~ polylog prefactor still grows (the leaf
    # scalars gain bits with N), so the measured per-doubling growth sits
    # between N^omega (factor 7) and the flattened-construction growth
    # (factor ~14); it must stay clearly below the latter, and the depth must
    # stay flat (that is the whole point of Theorem 4.4/4.8).
    growth = rows[-1]["trace gates"] / rows[-2]["trace gates"]
    assert 7.0 / 2 < growth < 14.0
    depths = {row["trace depth"] for row in rows}
    assert max(depths) - min(depths) <= 2
