"""E7 — Theorem 4.5: constant-depth trace circuits and the d trade-off.

Regenerates the depth <= 2d+5 bound, the gate-count decrease with d, the
predicted exponent omega + c*gamma^d, and the comparison against the
C(N,3)+1 baseline of E4.
"""

import numpy as np

from benchmarks.conftest import report
from repro.analysis import depth_tradeoff_table, exponent_summary, exact_size_sweep
from repro.core import build_trace_circuit, naive_triangle_gate_count, predicted_exponent
from repro.triangles import erdos_renyi_adjacency, triangle_count


def test_e7_depth_tradeoff(benchmark):
    rows = benchmark.pedantic(
        depth_tradeoff_table, args=(8, [1, 2, 3], "trace", 1), rounds=1, iterations=1
    )
    report("E7: Theorem 4.5 trade-off at N=8 (exact dry-run counts)", rows)
    for row in rows:
        assert row["depth"] <= row["depth_bound"]
    gates = [row["gates"] for row in rows]
    assert all(later <= earlier for earlier, later in zip(gates, gates[1:]))
    assert gates[-1] < gates[0]
    exponents = [row["predicted_exponent"] for row in rows]
    assert all(b < a for a, b in zip(exponents, exponents[1:]))
    # The exponent dips below 3 between d=3 and d=4 (the paper states d > 3).
    assert predicted_exponent(None, 4) < 3.0 <= exponents[0]


def test_e7_scaling_against_naive_baseline(benchmark):
    def compute():
        rows = exact_size_sweep([4, 8, 16], depth_parameter=3, kind="trace", bit_width=1)
        table = []
        for row in rows:
            table.append(
                {
                    "N": row.n,
                    "subcubic gates": int(row.size),
                    "naive C(N,3)+1": int(naive_triangle_gate_count(row.n)),
                    "depth": row.depth,
                    "gates/N^3": round(row.size / row.n ** 3, 1),
                }
            )
        return rows, table

    rows, table = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("E7: subcubic trace circuit vs naive baseline (small N, constants dominate)", table)
    summary = exponent_summary(rows)
    report("E7: fitted vs predicted exponent (small-N window, polylog inflated)", [summary])
    # At these tiny sizes the naive circuit is smaller (its constant is ~1/6)
    # and the measured growth still carries the growing (log N)^3 product-stage
    # factor; the asymptotic win and its crossover point are quantified in E8
    # and EXPERIMENTS.md.  Here we pin down the finite-size facts.
    assert all(row["subcubic gates"] > row["naive C(N,3)+1"] for row in table)
    growth = rows[-1].size / rows[-2].size
    assert growth < 14.0  # well below the flattened construction's ~N^(1+omega)


def test_e7_constructed_circuit_answers_random_queries(benchmark, rng):
    n = 8
    adjacency = erdos_renyi_adjacency(n, 0.5, rng)
    triangles = triangle_count(adjacency)
    tau = max(1, triangles)
    circuit = build_trace_circuit(n, 6 * tau, bit_width=1, depth_parameter=3)

    result = benchmark(circuit.evaluate, adjacency)
    assert result == (triangles >= tau)
    assert circuit.circuit.depth <= 2 * 3 + 5
