"""E8 — Theorem 4.9: constant-depth matrix-product circuits and the crossover.

Regenerates the depth <= 4d+1 bound, the gate exponent omega + c*gamma^d,
and the crossover analysis against the Theta(N^3) baseline: at which d the
exponent dips below 3 and at which N the analytic model predicts the
subcubic circuit overtakes the naive one.
"""

import math

from benchmarks.conftest import report
from repro.analysis import analytic_size_sweep, crossover_size, exponent_summary
from repro.core import count_matmul_circuit, predicted_exponent
from repro.fastmm import strassen_2x2


def test_e8_depth_and_size_versus_d(benchmark):
    def compute_rows():
        rows = []
        for d in (1, 2, 3):
            cost = count_matmul_circuit(8, bit_width=1, depth_parameter=d)
            rows.append(
                {
                    "d": d,
                    "gates": cost.size,
                    "depth": cost.depth,
                    "depth bound 4d+1": 4 * d + 1,
                    "max fan-in": cost.max_fan_in,
                    "predicted exponent": round(predicted_exponent(strassen_2x2(), d), 4),
                }
            )
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    report("E8: Theorem 4.9 product circuit at N=8 (exact dry-run counts)", rows)
    for row in rows:
        assert row["depth"] <= row["depth bound 4d+1"]
    assert rows[-1]["gates"] <= rows[0]["gates"]


def test_e8_asymptotic_exponent_and_crossover(benchmark):
    def compute():
        sweep = analytic_size_sweep([2 ** k for k in range(20, 32, 2)], depth_parameter=4, kind="matmul")
        summary = exponent_summary(sweep)
        crossovers = {}
        for d in (3, 4, 5, 6):
            n = crossover_size(d, kind="trace")
            crossovers[d] = None if n is None else int(math.log2(n))
        return summary, crossovers

    summary, crossovers = benchmark(compute)
    report("E8: fitted vs predicted exponent (analytic model, d=4)", [summary])
    report(
        "E8: crossover vs naive baseline (analytic model, exact integers)",
        [{"d": d, "crossover N": "none below 2^512" if e is None else f"2^{e}"} for d, e in crossovers.items()],
    )
    assert summary["predicted_exponent"] < 3.0
    assert summary["fitted_exponent"] < 3.0
    # For d >= 4 a crossover exists (astronomically large N); the paper's
    # claim is asymptotic and the harness records where it actually lands.
    assert crossovers[4] is not None
    assert crossovers[5] is not None and crossovers[5] <= crossovers[4]
