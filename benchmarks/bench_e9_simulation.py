"""E9 — End-to-end correctness: constructed circuits vs exact oracles.

Times construction, compilation and batched simulation of the trace and
product circuits at N = 8, and asserts exact agreement with the integer
oracles on random inputs (the reproduction's equivalent of a results-match
check).
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import build_matmul_circuit, build_trace_circuit
from repro.triangles import erdos_renyi_adjacency, trace_cubed, triangle_count


def test_e9_trace_circuit_construction(benchmark):
    circuit = benchmark(build_trace_circuit, 8, 60, 1, None, None, 3)
    stats = circuit.circuit.stats()
    report(
        "E9: trace circuit at N=8, d=3 (constructed)",
        [
            {
                "N": 8,
                "gates": stats.size,
                "depth": stats.depth,
                "edges": stats.edges,
                "max fan-in": stats.max_fan_in,
                "inputs": stats.n_inputs,
            }
        ],
    )
    assert stats.depth <= 2 * 3 + 5


def test_e9_trace_circuit_batched_simulation(benchmark, rng):
    tau_triangles = 10
    circuit = build_trace_circuit(8, 6 * tau_triangles, bit_width=1, depth_parameter=3)
    graphs = [erdos_renyi_adjacency(8, 0.5, rng) for _ in range(16)]

    results = benchmark(circuit.evaluate_batch, graphs)
    expected = [triangle_count(g) >= tau_triangles for g in graphs]
    assert results.tolist() == expected


def test_e9_matmul_circuit_end_to_end(benchmark, rng):
    n = 4
    circuit = build_matmul_circuit(n, bit_width=2, depth_parameter=2)
    a = rng.integers(-3, 4, (n, n))
    b = rng.integers(-3, 4, (n, n))

    product = benchmark(circuit.evaluate, a, b)
    assert (product == a.astype(object) @ b.astype(object)).all()
    report(
        "E9: matmul circuit at N=4, b=2 (constructed)",
        [
            {
                "N": n,
                "gates": circuit.circuit.size,
                "depth": circuit.circuit.depth,
                "outputs": len(circuit.circuit.outputs),
            }
        ],
    )
