"""Shared fixtures and reporting helpers for the benchmark harness.

Every module under ``benchmarks/`` regenerates one experiment of
EXPERIMENTS.md (E1-E13).  The timed portion uses pytest-benchmark; the rows
each experiment reports are printed (run with ``-s`` to see them) and the
key qualitative claims — who wins, in which direction the trade-off moves —
are asserted so the harness fails loudly if the reproduction drifts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_table


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by all benchmarks."""
    return np.random.default_rng(2018)


def report(title: str, rows, columns=None) -> None:
    """Print an experiment's table (visible with ``pytest -s``)."""
    print(f"\n== {title} ==")
    print(format_table(rows, columns))
