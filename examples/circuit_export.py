#!/usr/bin/env python
"""Exporting a circuit: optimization passes, validation, JSON serialization.

A neuromorphic toolchain consuming these circuits needs a concrete netlist.
This example builds a small matrix-product circuit, applies the two
semantics-preserving optimization passes (structural deduplication and
dead-gate elimination), validates the result against a fan-in budget, writes
it to JSON and reads it back.

Run with ``python examples/circuit_export.py``.
"""

import os
import tempfile

import numpy as np

from repro.analysis import format_table
from repro.circuits import (
    deduplicate_gates,
    dump_circuit,
    eliminate_dead_gates,
    layer_profile,
    load_circuit,
    validate_circuit,
)
from repro.core import build_matmul_circuit
from repro.engine import default_engine


def main() -> None:
    rng = np.random.default_rng(3)
    circuit = build_matmul_circuit(2, bit_width=2, depth_parameter=1)
    original = circuit.circuit

    deduped, dedup_map = deduplicate_gates(original)
    pruned, prune_map = eliminate_dead_gates(deduped)
    # Composite mapping from original node ids to ids in the final circuit
    # (defined for every node the declared outputs depend on).
    node_map = {
        old: prune_map[new] for old, new in dedup_map.items() if new in prune_map
    }

    rows = [
        {"stage": "as constructed", "gates": original.size, "edges": original.edges},
        {"stage": "after dedup", "gates": deduped.size, "edges": deduped.edges},
        {"stage": "after dead-gate elimination", "gates": pruned.size, "edges": pruned.edges},
    ]
    print("Optimization passes on the 2x2 product circuit:")
    print(format_table(rows))

    report = validate_circuit(pruned, require_outputs=True, max_fan_in=4096)
    print(f"\nValidation: {'OK' if report.ok else report.issues}")

    print("\nGates per layer (after optimization):")
    print(format_table(layer_profile(pruned).as_rows()))

    path = os.path.join(tempfile.gettempdir(), "repro-matmul-2x2.json")
    dump_circuit(pruned, path)
    restored = load_circuit(path)
    print(f"\nSerialized to {path} ({os.path.getsize(path) / 1024:.1f} KiB) and reloaded:")
    print(f"  gates={restored.size}, depth={restored.depth}, outputs={len(restored.outputs)}")

    # The reloaded, optimized circuit still computes the right product.  The
    # engine picks a backend from the circuit's stats and caches the program.
    engine = default_engine()
    a = rng.integers(-3, 4, (2, 2))
    b = rng.integers(-3, 4, (2, 2))
    inputs = circuit._encode_inputs(a, b)
    node_values = engine.evaluate(restored, inputs).node_values
    print(f"  engine backend: {engine.compile(restored).backend_name}")
    product = np.empty((2, 2), dtype=object)
    for i in range(2):
        for j in range(2):
            entry = circuit.entries[i, j]
            product[i, j] = sum(
                (1 << pos) * int(node_values[node_map[node]])
                for pos, node in zip(entry.pos.bit_positions, entry.pos.bit_nodes)
            ) - sum(
                (1 << pos) * int(node_values[node_map[node]])
                for pos, node in zip(entry.neg.bit_positions, entry.neg.bit_nodes)
            )
    print("  reloaded circuit computes A @ B correctly:", (product == a @ b).all())


if __name__ == "__main__":
    main()
