#!/usr/bin/env python
"""A quantized convolution layer on a threshold circuit (paper Section 5).

The paper's headline motivation is keeping the GEMM of convolutional neural
network layers on neuromorphic hardware instead of shipping it to a GPU.
This example builds the im2col patch matrix and kernel matrix of a small
quantized convolution layer, runs the product through the Theorem 4.9
threshold circuit, and reports the circuit resources together with the
fan-in splitting the paper proposes for hardware with bounded fan-in.

Run with ``python examples/convolution_gemm.py``.
"""

import numpy as np

from repro.analysis import fan_in_report, format_table, split_for_fan_in
from repro.convolution import ConvolutionShape, build_convolution_layer


def main() -> None:
    rng = np.random.default_rng(11)

    # A small quantized layer: 4x4 single-channel image, two 2x2 kernels.
    shape = ConvolutionShape(image_size=4, channels=1, kernel_size=2, stride=2, n_kernels=2)
    p, q, k = shape.gemm_shape
    print(f"Convolution as GEMM: patches P={p}, patch length Q={q}, kernels K={k}")

    layer = build_convolution_layer(shape, bit_width=3, depth_parameter=2)
    image = rng.integers(0, 8, (4, 4, 1))        # 3-bit activations
    kernels = rng.integers(-4, 5, (2, 2, 2, 1))  # 3-bit signed weights

    scores = layer.apply(image, kernels)
    reference = layer.reference(image, kernels)
    assert (scores == reference).all()

    stats = layer.matmul.circuit.stats()
    print(
        format_table(
            [
                {
                    "GEMM dimension (padded)": layer.gemm_dimension,
                    "circuit gates": stats.size,
                    "circuit depth": stats.depth,
                    "max fan-in": stats.max_fan_in,
                    "scores match reference": bool((scores == reference).all()),
                }
            ]
        )
    )

    print("\nPatch x kernel score matrix (P x K):")
    print(np.array(scores.tolist()))

    # Fan-in splitting (end of Section 5): how many independent pieces would a
    # fan-in-limited architecture need for a realistic patch count?
    rows = []
    realistic_patches = 224 * 224 // 4  # stride-2 over a 224x224 image
    for budget in (1024, 4096, 16384):
        rows.append(
            {
                "fan-in budget": budget,
                "pieces for P=12544": split_for_fan_in(realistic_patches, budget),
            }
        )
    print("\nSplitting a realistic layer for bounded fan-in (same depth, parallel pieces):")
    print(format_table(rows))
    print("\nFan-in profile of this example's circuit:")
    print(format_table([fan_in_report(layer.matmul.circuit, budget=4096).as_dict()]))


if __name__ == "__main__":
    main()
