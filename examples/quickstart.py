#!/usr/bin/env python
"""Quickstart: build, inspect and run the paper's circuits on small inputs.

This script walks through the three main entry points of the library:

1. a fast matrix multiplication algorithm and its sparsity constants
   (Section 2.1 / Definition 2.1),
2. the constant-depth subcubic trace circuit of Theorem 4.5 deciding
   ``trace(A^3) >= tau`` for a small graph,
3. the constant-depth matrix-product circuit of Theorem 4.9 computing
   ``C = AB`` for small integer matrices,
4. the execution engine: batched evaluation with a compile cache and a
   spiking-mode energy trace (the Section 6 activity measure).

Run it with ``python examples/quickstart.py``.
"""

import numpy as np

from repro import build_matmul_circuit, build_trace_circuit, strassen_2x2
from repro.analysis import format_table
from repro.engine import default_engine
from repro.fastmm import sparsity_parameters
from repro.triangles import erdos_renyi_adjacency, triangle_count


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------ step 1
    algorithm = strassen_2x2()
    params = sparsity_parameters(algorithm)
    print("Strassen's algorithm (paper Figure 1):")
    print(algorithm.describe())
    print()
    print(
        f"sparsity s_A={params.s_A}, alpha={float(params.side_A.alpha):.4f}, "
        f"beta={float(params.side_A.beta):.1f}, gamma={params.side_A.gamma:.3f}, "
        f"c={params.side_A.c:.3f}  (paper: 7/12, 3, ~0.491, ~1.585)"
    )

    # ------------------------------------------------------------------ step 2
    n = 8
    adjacency = erdos_renyi_adjacency(n, 0.5, rng)
    triangles = triangle_count(adjacency)
    tau = max(1, triangles)  # "does the graph have at least tau triangles?"
    trace_circuit = build_trace_circuit(n, 6 * tau, bit_width=1, depth_parameter=3)
    answer = trace_circuit.evaluate(adjacency)
    stats = trace_circuit.circuit.stats()
    print()
    print(f"Trace circuit (Theorem 4.5, d=3) on a G({n}, 0.5) graph:")
    print(
        format_table(
            [
                {
                    "gates": stats.size,
                    "depth": stats.depth,
                    "edges": stats.edges,
                    "max fan-in": stats.max_fan_in,
                    "exact triangles": triangles,
                    "tau": tau,
                    "circuit answer": answer,
                }
            ]
        )
    )
    assert answer == (triangles >= tau)

    # ------------------------------------------------------------------ step 3
    m = 4
    a = rng.integers(-3, 4, (m, m))
    b = rng.integers(-3, 4, (m, m))
    matmul = build_matmul_circuit(m, bit_width=2, depth_parameter=2)
    product = matmul.evaluate(a, b)
    print()
    print(f"Matrix-product circuit (Theorem 4.9, d=2) on {m}x{m} matrices:")
    print(f"  gates={matmul.circuit.size}, depth={matmul.circuit.depth}")
    print("  A @ B computed by the circuit matches numpy:", (product == a @ b).all())

    # ------------------------------------------------------------------ step 4
    engine = default_engine()
    graphs = [erdos_renyi_adjacency(n, 0.5, rng) for _ in range(32)]
    answers = trace_circuit.evaluate_batch(graphs)
    info = engine.cache_info()
    print()
    print(f"Execution engine: 32 graphs in one batch through the compile cache")
    print(
        f"  backend={engine.compile(trace_circuit.circuit).backend_name}, "
        f"cache hits={info.hits}, compiles={engine.compile_calls}, "
        f"positives={int(answers.sum())}/32"
    )
    trace = engine.spike_trace(
        trace_circuit.circuit,
        np.stack([trace_circuit.encoding.encode(g) for g in graphs], axis=1),
    )
    print("  spiking-mode energy trace (mean spikes per layer):")
    print(format_table(trace.as_rows()))


if __name__ == "__main__":
    main()
