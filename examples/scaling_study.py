#!/usr/bin/env python
"""Scaling study: gate counts versus N and d, and the crossover against N^3.

Reproduces, from the command line, the quantitative story of the paper's
Theorems 4.1 / 4.4 / 4.5 / 4.9 (see EXPERIMENTS.md for the full discussion):

* exact gate counts of the constructed circuits at small N,
* the predicted exponent ``omega + c * gamma^d`` as a function of d,
* the analytic large-N sweep and the crossover point against the naive
  Theta(N^3) baseline.

Run with ``python examples/scaling_study.py``.
"""

import math

from repro.analysis import (
    analytic_size_sweep,
    crossover_size,
    exact_size_sweep,
    exponent_summary,
    format_table,
)
from repro.core import naive_triangle_gate_count, predicted_exponent
from repro.fastmm import available_algorithms, get_algorithm, sparsity_parameters


def main() -> None:
    # ------------------------------------------------------------- exponents
    rows = []
    for d in range(1, 9):
        rows.append(
            {
                "d": d,
                "trace depth bound 2d+5": 2 * d + 5,
                "matmul depth bound 4d+1": 4 * d + 1,
                "exponent omega + c*gamma^d": round(predicted_exponent(None, d), 4),
            }
        )
    print("Predicted gate-count exponents for Strassen (omega ~ 2.807):")
    print(format_table(rows))

    # ------------------------------------------------- exact counts (small N)
    exact_rows = exact_size_sweep([4, 8, 16], depth_parameter=3, kind="trace", bit_width=1)
    table = [
        {
            "N": r.n,
            "subcubic trace gates": int(r.size),
            "naive C(N,3)+1": naive_triangle_gate_count(r.n),
            "depth": r.depth,
        }
        for r in exact_rows
    ]
    print("\nExact dry-run gate counts (trace circuit, d=3, 1-bit entries):")
    print(format_table(table))
    print("Fitted/predicted exponents on this small-N window:")
    print(format_table([exponent_summary(exact_rows)]))

    # ------------------------------------------------ analytic sweep (large N)
    sweep = analytic_size_sweep([2 ** k for k in range(20, 41, 5)], depth_parameter=4, kind="matmul")
    print("\nAnalytic model (counting lemmas, exact rationals), matmul circuit, d=4:")
    print(
        format_table(
            [
                {
                    "N": f"2^{int(math.log2(r.n))}",
                    "model gates": f"{r.size:.3e}",
                    "N^3": f"{r.baseline:.3e}",
                    "model/N^3": f"{r.size / r.baseline:.3f}",
                    "depth": r.depth,
                }
                for r in sweep
            ]
        )
    )

    # ------------------------------------------------------------- crossover
    rows = []
    for d in (3, 4, 5, 6, 8):
        n = crossover_size(d, kind="trace")
        rows.append(
            {
                "d": d,
                "exponent": round(predicted_exponent(None, d), 4),
                "crossover N vs C(N,3)+1": "none below 2^512" if n is None else f"2^{int(math.log2(n))}",
            }
        )
    print("\nWhere the analytic model first beats the naive triangle circuit:")
    print(format_table(rows))

    # -------------------------------------------------- algorithm comparison
    rows = []
    for name in available_algorithms():
        params = sparsity_parameters(get_algorithm(name))
        rows.append(
            {
                "algorithm": name,
                "omega": round(params.omega, 3),
                "s": params.s,
                "gamma": round(params.side_A.gamma, 3),
                "exponent at d=4": round(params.omega + params.side_A.c * params.side_A.gamma ** 4, 3),
            }
        )
    print("\nHow the base algorithm's sparsity drives the constant-depth exponent:")
    print(format_table(rows))


if __name__ == "__main__":
    main()
