#!/usr/bin/env python
"""Social-network triangle counting with threshold circuits (paper Section 5).

Scenario: an analyst wants to know whether a graph has enough triangles to
indicate community structure.  Following the paper, the threshold ``tau`` is
derived from the wedge count and a target global clustering coefficient, and
the question "does G have at least tau triangles?" is answered by a
constant-depth threshold circuit — the subcubic construction of Theorem 4.5,
cross-checked against the naive depth-2 circuit of Section 1.

Run with ``python examples/triangle_counting.py``.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import build_naive_triangle_circuit, naive_triangle_gate_count
from repro.triangles import (
    block_two_level_adjacency,
    build_triangle_query,
    erdos_renyi_adjacency,
    global_clustering_coefficient,
    tau_from_wedges,
    triangle_count,
    wedge_count,
)


def main() -> None:
    rng = np.random.default_rng(2018)
    n = 7  # padded to 8 inside the circuit (Strassen needs a power of 2)
    target_clustering = 0.3

    graphs = {
        "BTER-like (communities)": block_two_level_adjacency(
            n, block_size=3, p_within=0.9, p_between=0.1, rng=rng
        ),
        "Erdos-Renyi (control)": erdos_renyi_adjacency(n, 0.35, rng),
    }

    rows = []
    for name, adjacency in graphs.items():
        tau = tau_from_wedges(adjacency, target_clustering)
        query = build_triangle_query(n, tau_triangles=tau, depth_parameter=3)
        naive = build_naive_triangle_circuit(n, tau)
        circuit_answer = query.evaluate(adjacency)
        naive_answer = naive.evaluate(adjacency)
        exact = triangle_count(adjacency)
        rows.append(
            {
                "graph": name,
                "wedges": wedge_count(adjacency),
                "triangles": exact,
                "clustering": round(global_clustering_coefficient(adjacency), 3),
                "tau": tau,
                "subcubic answer": circuit_answer,
                "naive answer": naive_answer,
                "exact answer": exact >= tau,
                "subcubic gates": query.trace_circuit.circuit.size,
                "naive gates": naive.circuit.size,
            }
        )
        assert circuit_answer == naive_answer == (exact >= tau)

    print(f"Triangle-threshold queries (target clustering coefficient {target_clustering}):")
    print(format_table(rows))
    print()
    print(
        "Note: at these toy sizes the naive circuit (C(N,3)+1 = "
        f"{naive_triangle_gate_count(8)} gates at N=8) is smaller; the subcubic "
        "construction wins asymptotically — see EXPERIMENTS.md (E7/E8) for the "
        "scaling and crossover analysis."
    )


if __name__ == "__main__":
    main()
