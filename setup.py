"""Build script; the version is sourced from ``src/repro/_version.py``."""
import os
import re

from setuptools import find_packages, setup


def _read_version() -> str:
    path = os.path.join(os.path.dirname(__file__), "src", "repro", "_version.py")
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError(f"no __version__ in {path}")
    return match.group(1)


setup(
    name="repro",
    version=_read_version(),
    package_dir={"": "src"},
    packages=find_packages("src"),
)
