"""Reproduction of "Constant-Depth and Subcubic-Size Threshold Circuits for
Matrix Multiplication" (Parekh, Phillips, James, Aimone - SPAA 2018).

The package is organized by substrate:

* :mod:`repro.circuits` - threshold-gate circuit model, simulator, analysis;
* :mod:`repro.arithmetic` - the basic TC0 arithmetic circuits of Section 3;
* :mod:`repro.fastmm` - bilinear (Strassen-like) fast matrix multiplication
  algorithms and their sparsity parameters (Section 2.1, Definition 2.1);
* :mod:`repro.core` - the paper's constructions: the trees of Figure 2,
  level schedules, and the trace / matrix-product circuits of Section 4;
* :mod:`repro.triangles`, :mod:`repro.convolution` - the motivating
  applications of Section 5;
* :mod:`repro.analysis` - gate-count models, crossover and energy analyses.

The most commonly used entry points are re-exported lazily at the top level
(PEP 562), so ``import repro`` stays cheap and subpackages can be used
independently.
"""

from importlib import import_module
from typing import Dict

from repro._version import __version__

#: Map of lazily re-exported name -> defining submodule.
_LAZY_EXPORTS: Dict[str, str] = {
    # circuit substrate
    "ThresholdCircuit": "repro.circuits",
    "CircuitBuilder": "repro.circuits",
    "CompiledCircuit": "repro.circuits",
    "simulate": "repro.circuits",
    # execution engine
    "Engine": "repro.engine",
    "EngineConfig": "repro.engine",
    "default_engine": "repro.engine",
    "SpikeTrace": "repro.engine",
    # observability
    "MetricsRegistry": "repro.obs",
    "get_registry": "repro.obs",
    "enable_telemetry": "repro.obs",
    # fast matrix multiplication substrate
    "BilinearAlgorithm": "repro.fastmm",
    "strassen_2x2": "repro.fastmm",
    "winograd_2x2": "repro.fastmm",
    "naive_algorithm": "repro.fastmm",
    "get_algorithm": "repro.fastmm",
    "sparsity_parameters": "repro.fastmm",
    "fast_matmul": "repro.fastmm",
    # core constructions
    "LevelSchedule": "repro.core",
    "loglog_schedule": "repro.core",
    "constant_depth_schedule": "repro.core",
    "build_trace_circuit": "repro.core",
    "build_matmul_circuit": "repro.core",
    "build_naive_triangle_circuit": "repro.core",
    "build_naive_matmul_circuit": "repro.core",
    "TraceCircuit": "repro.core",
    "MatmulCircuit": "repro.core",
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module = import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
