"""Single source of the package version.

Read by ``setup.py`` (build metadata), ``repro.__init__`` (``__version__``),
the CLI (``repro --version``) and telemetry snapshots (build identity), so
every surface reports the same build.
"""

__version__ = "1.1.0"
