"""Cost-model sweeps, crossover, energy and fan-in analyses."""

from repro.analysis.cost_model import (
    ScalingRow,
    exact_size_sweep,
    analytic_size_sweep,
    exponent_summary,
    depth_tradeoff_table,
)
from repro.analysis.crossover import (
    exponent_crossover_depth,
    subcubic_exponent,
    crossover_size,
)
from repro.analysis.energy import EnergyReport, measure_circuit_energy
from repro.analysis.fanin import FanInReport, fan_in_report, split_for_fan_in, split_overhead
from repro.analysis.report import format_table, print_table

__all__ = [
    "ScalingRow",
    "exact_size_sweep",
    "analytic_size_sweep",
    "exponent_summary",
    "depth_tradeoff_table",
    "exponent_crossover_depth",
    "subcubic_exponent",
    "crossover_size",
    "EnergyReport",
    "measure_circuit_energy",
    "FanInReport",
    "fan_in_report",
    "split_for_fan_in",
    "split_overhead",
    "format_table",
    "print_table",
]
