"""Gate-count sweeps over N and d: the data behind EXPERIMENTS.md.

The functions here orchestrate the two counting modes of
:mod:`repro.core.gate_count_model` into the tables the experiments report:

* exact dry-run counts for explicitly enumerable sizes,
* analytic estimates (the paper's counting lemmas with unit constants) for
  the asymptotic regime,
* fitted scaling exponents compared against the predicted
  ``omega + c * gamma^d`` and against the cubic baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.gate_count_model import (
    analytic_cost,
    count_matmul_circuit,
    count_trace_circuit,
    naive_exponent_fit,
    naive_triangle_gate_count,
    predicted_exponent,
)
from repro.core.schedule import constant_depth_schedule, loglog_schedule
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2

__all__ = [
    "ScalingRow",
    "exact_size_sweep",
    "analytic_size_sweep",
    "exponent_summary",
    "depth_tradeoff_table",
]


@dataclass(frozen=True)
class ScalingRow:
    """One (N, d) point of a gate-count sweep."""

    n: int
    depth_parameter: Optional[int]
    kind: str
    size: float
    depth: Optional[int]
    baseline: float

    @property
    def speedup_vs_baseline(self) -> float:
        """Baseline gate count divided by this construction's gate count."""
        return self.baseline / self.size if self.size else math.inf

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for tabular output."""
        return {
            "N": self.n,
            "d": self.depth_parameter,
            "kind": self.kind,
            "gates": self.size,
            "depth": self.depth,
            "baseline_gates": self.baseline,
            "baseline/gates": self.speedup_vs_baseline,
        }


def exact_size_sweep(
    sizes: Sequence[int],
    depth_parameter: Optional[int] = 3,
    kind: str = "trace",
    bit_width: int = 1,
    algorithm: Optional[BilinearAlgorithm] = None,
) -> List[ScalingRow]:
    """Exact dry-run gate counts for each N in ``sizes`` (same construction as built circuits)."""
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    rows: List[ScalingRow] = []
    for n in sizes:
        if kind == "trace":
            cost = count_trace_circuit(
                n, bit_width=bit_width, algorithm=algorithm, depth_parameter=depth_parameter
            )
            baseline = float(naive_triangle_gate_count(n))
        elif kind == "matmul":
            cost = count_matmul_circuit(
                n, bit_width=bit_width, algorithm=algorithm, depth_parameter=depth_parameter
            )
            baseline = float(n) ** 3
        else:
            raise ValueError(f"kind must be 'trace' or 'matmul', got {kind!r}")
        rows.append(
            ScalingRow(
                n=n,
                depth_parameter=depth_parameter,
                kind=kind,
                size=float(cost.size),
                depth=cost.depth,
                baseline=baseline,
            )
        )
    return rows


def analytic_size_sweep(
    sizes: Sequence[int],
    depth_parameter: Optional[int] = 3,
    kind: str = "matmul",
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
) -> List[ScalingRow]:
    """Analytic (counting-lemma) estimates for large N where enumeration is impossible."""
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    rows: List[ScalingRow] = []
    for n in sizes:
        estimate = analytic_cost(
            n,
            bit_width=bit_width,
            algorithm=algorithm,
            depth_parameter=depth_parameter,
            kind=kind,
        )
        if depth_parameter is None:
            schedule = loglog_schedule(algorithm, n)
        else:
            schedule = constant_depth_schedule(algorithm, n, depth_parameter)
        depth = 2 * schedule.t_steps + 2 if kind == "trace" else 4 * schedule.t_steps + 1
        baseline = float(naive_triangle_gate_count(n)) if kind == "trace" else float(n) ** 3
        rows.append(
            ScalingRow(
                n=n,
                depth_parameter=depth_parameter,
                kind=kind,
                size=float(estimate["total"]),
                depth=depth,
                baseline=baseline,
            )
        )
    return rows


def exponent_summary(rows: Sequence[ScalingRow], algorithm: Optional[BilinearAlgorithm] = None) -> Dict[str, float]:
    """Fit the measured scaling exponent of a sweep and compare with theory."""
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    counts = {row.n: int(row.size) for row in rows}
    depth_parameter = rows[0].depth_parameter if rows else None
    return {
        "fitted_exponent": naive_exponent_fit(counts),
        "predicted_exponent": predicted_exponent(algorithm, depth_parameter),
        "omega": algorithm.omega,
        "cubic": 3.0,
    }


def depth_tradeoff_table(
    n: int,
    depth_parameters: Iterable[int],
    kind: str = "trace",
    bit_width: int = 1,
    algorithm: Optional[BilinearAlgorithm] = None,
    exact: bool = True,
) -> List[Dict[str, object]]:
    """Gate count and circuit depth as a function of the paper's ``d`` for fixed N."""
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    rows: List[Dict[str, object]] = []
    for d in depth_parameters:
        if exact:
            sweep = exact_size_sweep([n], d, kind=kind, bit_width=bit_width, algorithm=algorithm)
        else:
            sweep = analytic_size_sweep([n], d, kind=kind, bit_width=bit_width, algorithm=algorithm)
        row = sweep[0].as_dict()
        row["depth_bound"] = 2 * d + 5 if kind == "trace" else 4 * d + 1
        row["predicted_exponent"] = predicted_exponent(algorithm, d)
        rows.append(row)
    return rows
