"""Where does the subcubic circuit beat the Theta(N^3) baseline?

The paper's claim is asymptotic: for depth parameter ``d > 3`` (Strassen)
the exponent ``omega + c * gamma^d`` drops below 3, so for large enough N
the constant-depth circuit has fewer gates than the naive one.  The
functions here locate that crossover point under the analytic cost model —
both in N for a fixed d and in d for a fixed N — giving the "who wins and
where" summary of experiments E7/E8.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.gate_count_model import analytic_cost, naive_triangle_gate_count, predicted_exponent
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.sparsity import sparsity_parameters
from repro.fastmm.strassen import strassen_2x2

__all__ = [
    "exponent_crossover_depth",
    "subcubic_exponent",
    "crossover_size",
]


def subcubic_exponent(algorithm: Optional[BilinearAlgorithm] = None, depth_parameter: int = 4) -> float:
    """The Theorem 4.5/4.9 exponent ``omega + c * gamma^d``."""
    return predicted_exponent(algorithm if algorithm is not None else strassen_2x2(), depth_parameter)


def exponent_crossover_depth(algorithm: Optional[BilinearAlgorithm] = None) -> int:
    """Smallest ``d`` for which the predicted exponent drops below 3.

    For Strassen the paper states this is ``d > 3``, i.e. the function
    returns 4.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    if algorithm.omega >= 3.0:
        raise ValueError("the base algorithm is not subcubic; no depth achieves exponent < 3")
    d = 1
    while predicted_exponent(algorithm, d) >= 3.0:
        d += 1
        if d > 64:
            raise AssertionError("crossover depth not found below d=64 (unexpected)")
    return d


def crossover_size(
    depth_parameter: int,
    algorithm: Optional[BilinearAlgorithm] = None,
    kind: str = "trace",
    bit_width: int = 1,
    max_exponent: int = 512,
) -> Optional[int]:
    """Smallest power-of-T matrix size where the analytic model beats the baseline.

    All arithmetic is exact (Python integers / rationals), so the search can
    honestly report crossovers at astronomically large N — which is where
    they land once the polylogarithmic factors hidden in the paper's O~ are
    accounted for.  Returns ``None`` when no crossover occurs below
    ``T**max_exponent``.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    t = algorithm.t
    for exponent in range(1, max_exponent + 1):
        n = t ** exponent
        estimate = analytic_cost(
            n, bit_width=bit_width, algorithm=algorithm, depth_parameter=depth_parameter, kind=kind
        )["total"]
        baseline = naive_triangle_gate_count(n) if kind == "trace" else n ** 3
        if estimate < baseline:
            return n
    return None
