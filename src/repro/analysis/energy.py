"""Firing-energy measurements (paper Section 6, open problems).

The paper suggests charging a gate one unit of energy if and only if it
fires (Uchizawa, Douglas, Maass).  The simulator already reports the number
of firing gates per evaluation; this module aggregates that measure over
input ensembles so the energy of the subcubic circuits can be compared with
the naive baselines (experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit

__all__ = ["EnergyReport", "measure_circuit_energy"]


@dataclass(frozen=True)
class EnergyReport:
    """Summary statistics of firing energy over an input ensemble."""

    circuit_size: int
    samples: int
    mean_energy: float
    max_energy: int
    min_energy: int

    @property
    def mean_fraction_firing(self) -> float:
        """Average fraction of gates that fire per evaluation."""
        return self.mean_energy / self.circuit_size if self.circuit_size else 0.0

    def as_dict(self) -> dict:
        """Flat dict for reports."""
        return {
            "circuit_size": self.circuit_size,
            "samples": self.samples,
            "mean_energy": self.mean_energy,
            "max_energy": self.max_energy,
            "min_energy": self.min_energy,
            "mean_fraction_firing": self.mean_fraction_firing,
        }


def measure_circuit_energy(
    circuit: ThresholdCircuit,
    input_batches: Sequence[np.ndarray],
    compiled: Optional[CompiledCircuit] = None,
    engine=None,
) -> EnergyReport:
    """Evaluate the circuit on each input vector and summarize firing energy.

    Evaluation routes through the execution engine (the process default, or
    ``engine`` if given), so the compile cache is shared with other callers.
    Passing an explicit ``compiled`` circuit bypasses the engine entirely —
    kept for callers that manage their own compilation.
    """
    if not input_batches:
        raise ValueError("need at least one input assignment to measure energy")
    batch = np.stack([np.asarray(vec) for vec in input_batches], axis=1)
    if compiled is not None:
        result = compiled.evaluate(batch)
    else:
        from repro.engine import default_engine

        eng = engine if engine is not None else default_engine()
        result = eng.evaluate(circuit, batch)
    energy = np.atleast_1d(result.energy)
    return EnergyReport(
        circuit_size=circuit.size,
        samples=int(energy.shape[0]),
        mean_energy=float(energy.mean()),
        max_energy=int(energy.max()),
        min_energy=int(energy.min()),
    )
