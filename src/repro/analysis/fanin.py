"""Bounded fan-in analysis (end of paper Section 5).

The circuits use unbounded fan-in; real neuromorphic hardware supports some
maximum fan-in ``x``.  The paper argues this is not a practical obstacle for
the convolutional-network use case: the product can be split into
independent pieces with at most ``x^(1/omega)`` rows of the first matrix
each, run in parallel at the same depth.  This module quantifies that
argument: the fan-in profile of a constructed circuit, the number of pieces
a GEMM must be split into for a given fan-in budget, and the resulting gate
overhead under the analytic model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuits.circuit import ThresholdCircuit
from repro.core.gate_count_model import analytic_cost
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2

__all__ = ["FanInReport", "fan_in_report", "split_for_fan_in", "split_overhead"]


@dataclass(frozen=True)
class FanInReport:
    """Fan-in profile of a circuit."""

    max_fan_in: int
    mean_fan_in: float
    gates_over_budget: int
    budget: Optional[int]

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for reports."""
        return {
            "max_fan_in": self.max_fan_in,
            "mean_fan_in": self.mean_fan_in,
            "gates_over_budget": self.gates_over_budget,
            "budget": self.budget,
        }


def fan_in_report(circuit: ThresholdCircuit, budget: Optional[int] = None) -> FanInReport:
    """Summarize the fan-in distribution of a circuit against an optional budget."""
    fan_ins = [gate.fan_in for gate in circuit.gates]
    if not fan_ins:
        return FanInReport(0, 0.0, 0, budget)
    over = sum(1 for f in fan_ins if budget is not None and f > budget)
    return FanInReport(
        max_fan_in=max(fan_ins),
        mean_fan_in=sum(fan_ins) / len(fan_ins),
        gates_over_budget=over,
        budget=budget,
    )


def split_for_fan_in(
    rows: int,
    fan_in_budget: int,
    algorithm: Optional[BilinearAlgorithm] = None,
) -> int:
    """Number of row-pieces needed so each piece's circuit respects the budget.

    Following Section 5: a piece with ``x^(1/omega)`` rows keeps the largest
    gate fan-in (which grows like the piece's gate count, O(rows^omega))
    within ``x``.
    """
    if rows < 1:
        raise ValueError(f"rows must be positive, got {rows}")
    if fan_in_budget < 2:
        raise ValueError(f"fan-in budget must be at least 2, got {fan_in_budget}")
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    rows_per_piece = max(1, int(math.floor(fan_in_budget ** (1.0 / algorithm.omega))))
    return math.ceil(rows / rows_per_piece)


def split_overhead(
    n: int,
    fan_in_budget: int,
    algorithm: Optional[BilinearAlgorithm] = None,
    depth_parameter: int = 4,
    bit_width: Optional[int] = None,
) -> Dict[str, float]:
    """Analytic gate overhead of splitting an N x N product for a fan-in budget.

    Returns the single-circuit estimate, the per-piece estimate times the
    number of pieces, and their ratio.  Depth is unchanged by the split
    (pieces run in parallel), which is the paper's point.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    pieces = split_for_fan_in(n, fan_in_budget, algorithm)
    whole = analytic_cost(
        n, bit_width=bit_width, algorithm=algorithm, depth_parameter=depth_parameter, kind="matmul"
    )["total"]
    piece_rows = max(1, math.ceil(n / pieces))
    # Round the piece dimension up to a power of T so the model applies.
    t = algorithm.t
    padded = t ** max(1, math.ceil(math.log(piece_rows, t)))
    per_piece = analytic_cost(
        padded, bit_width=bit_width, algorithm=algorithm, depth_parameter=depth_parameter, kind="matmul"
    )["total"]
    total_split = per_piece * pieces
    return {
        "pieces": float(pieces),
        "whole_circuit_gates": whole,
        "split_total_gates": total_split,
        "overhead_ratio": total_split / whole if whole else math.inf,
    }
