"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print the rows each experiment regenerates; keeping
the formatting in one place makes their output uniform and easy to diff
against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "print_table"]


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render dict-rows as an aligned text table (markdown-ish)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            if value == 0 or (1e-3 <= abs(value) < 1e7):
                return f"{value:,.4g}"
            return f"{value:.3e}"
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table)) for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = [" | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table]
    return "\n".join([header, separator] + body)


def print_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None, title: str = "") -> None:
    """Print a table with an optional title (used by the benchmark harness)."""
    if title:
        print(f"\n== {title} ==")
    print(format_table(rows, columns))
