"""Basic TC0 arithmetic circuits (paper Section 3).

Everything the matrix circuits need reduces to three primitives:

* bit extraction from integer-weighted sums of bits (Lemma 3.1),
* depth-2 computation of all bits of a weighted sum (Lemma 3.2) and its
  staged depth-2j generalization (used by Theorem 4.1),
* depth-1 product *representations* (Lemma 3.3),

plus the signed-number conventions of the "Negative numbers" paragraph and a
single-gate comparator for the final threshold decision.
"""

from repro.arithmetic.signed import (
    Rep,
    SignedValue,
    BinaryNumber,
    SignedBinaryNumber,
    RepBank,
    SignedValueBank,
)
from repro.arithmetic.bit_extract import (
    build_kth_msb,
    BitPlan,
    ExtractionPlan,
    plan_full_extraction,
    build_full_extraction,
    count_full_extraction,
)
from repro.arithmetic.weighted_sum import (
    flatten_terms,
    split_signed_terms,
    build_unsigned_sum,
    build_signed_sum,
    build_signed_sum_banks,
    build_signed_sums_cellwise,
    count_unsigned_sum,
    count_signed_sum,
)
from repro.arithmetic.staged_sum import (
    staged_chunk_sizes,
    build_staged_extraction,
    count_staged_extraction,
)
from repro.arithmetic.product import (
    build_unsigned_product_rep,
    build_signed_product,
    build_signed_product_banks,
    count_unsigned_product_rep,
    count_signed_product,
)
from repro.arithmetic.comparator import (
    build_ge_comparison,
    build_ge_comparison_banks,
    build_range_membership,
)

__all__ = [
    "Rep",
    "SignedValue",
    "BinaryNumber",
    "SignedBinaryNumber",
    "RepBank",
    "SignedValueBank",
    "build_kth_msb",
    "BitPlan",
    "ExtractionPlan",
    "plan_full_extraction",
    "build_full_extraction",
    "count_full_extraction",
    "flatten_terms",
    "split_signed_terms",
    "build_unsigned_sum",
    "build_signed_sum",
    "build_signed_sum_banks",
    "build_signed_sums_cellwise",
    "count_unsigned_sum",
    "count_signed_sum",
    "staged_chunk_sizes",
    "build_staged_extraction",
    "count_staged_extraction",
    "build_unsigned_product_rep",
    "build_signed_product",
    "build_signed_product_banks",
    "count_unsigned_product_rep",
    "count_signed_product",
    "build_ge_comparison",
    "build_ge_comparison_banks",
    "build_range_membership",
]
