"""Lemma 3.1: extracting bits of a weighted sum of bits with a depth-2 circuit.

Given an integer-weighted sum of binary variables ``s = sum_i w_i x_i`` with
``s`` guaranteed to lie in ``[0, 2**l)``, the k-th *most significant* bit of
``s`` (viewing ``s`` as an ``l``-bit number) is 1 exactly when ``s`` falls in
an interval ``[i * 2**(l-k), (i+1) * 2**(l-k))`` for some odd ``i < 2**k``.
The circuit therefore has a first layer of ``2**k`` *interval gates*
``y_i = [s >= i * 2**(l-k)]`` and a single output gate
``[sum_{i odd}(y_i - y_{i+1}) >= 1]`` — ``2**k + 1`` gates in depth 2
(Muroga 1959 / Siu et al. 1991, as cited by the paper).

This module provides:

* :func:`build_kth_msb` — the construction exactly as stated in Lemma 3.1;
* :func:`plan_full_extraction` / :func:`build_full_extraction` — the
  "workhorse" used by Lemma 3.2: extract *all* bits of a weighted sum of
  bits.  For each output bit ``j`` (LSB-first, 1-indexed) only the terms
  whose weight is not divisible by ``2**j`` matter modulo ``2**j``, which is
  the generalization of the truncation argument in the paper's proof of
  Lemma 3.2 to arbitrary term weights.  The planner is shared by the circuit
  builder and by the dry-run gate-count model, so predicted and constructed
  gate counts agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.builder import CircuitBuilder
from repro.circuits.gate import canonical_parts
from repro.util.bits import bits

__all__ = [
    "build_kth_msb",
    "BitPlan",
    "ExtractionPlan",
    "plan_full_extraction",
    "build_full_extraction",
    "count_full_extraction",
]

Term = Tuple[int, int]  # (node_id, positive weight)


def build_kth_msb(
    builder: CircuitBuilder,
    terms: Sequence[Term],
    l: int,
    k: int,
    tag: str = "lemma3.1",
) -> int:
    """Build the Lemma 3.1 circuit for the k-th most significant bit.

    Parameters
    ----------
    builder:
        Circuit builder to emit gates into.
    terms:
        The weighted sum ``s`` as ``(node, weight)`` pairs.  Weights may be
        any integers as long as ``s`` is guaranteed nonnegative.
    l:
        Guaranteed bound ``s < 2**l``.
    k:
        Which most-significant bit to extract, ``1 <= k <= l``.

    Returns
    -------
    int
        Node id of the output gate (depth 2 above the deepest source).
    """
    if l <= 0:
        raise ValueError(f"l must be positive, got {l}")
    if not (1 <= k <= l):
        raise ValueError(f"k must satisfy 1 <= k <= l, got k={k}, l={l}")
    step = 1 << (l - k)
    m = 1 << k
    if getattr(builder, "counts_only", False) and (
        getattr(builder, "stamper", None) is not None
        or getattr(builder, "prefers_bulk", False)
    ):
        # Dry-run shortcut (vectorized counting only): the bank's shape is
        # known in closed form — m interval gates over the merged source row
        # plus one select gate — so neither wires, weights nor thresholds
        # are ever materialized.  ``np.unique`` mirrors the canonical
        # duplicate-source merge of the real builder.
        if terms:
            unique = np.unique(
                np.fromiter((n for n, _ in terms), dtype=np.int64, count=len(terms))
            )
            fan = int(unique.size)
            depth = int(builder.node_depths_of(unique).max())
        else:
            fan = 0
            depth = 0
        fan_ins = np.full(m + 1, fan, dtype=np.int64)
        fan_ins[m] = m
        depths = np.full(m + 1, depth + 1, dtype=np.int64)
        depths[m] = depth + 2
        node_ids = builder.add_gate_rows(
            fan_ins,
            depths,
            tag_counts={f"{tag}/interval": m, f"{tag}/select": 1},
        )
        return int(node_ids[-1])
    sources = [n for n, _ in terms]
    weights = [w for _, w in terms]
    if (
        getattr(builder, "stamper", None) is not None
        or getattr(builder, "prefers_bulk", False)
    ) and l < 62:
        # Bulk emission: the whole interval bank shares one source/weight row
        # (canonicalized once, exactly like the per-gate Gate constructor),
        # so the m interval gates plus the select gate land in a single
        # add_gates call with the select gate referencing its bank in-batch.
        # Template recorders (``prefers_bulk``) take the same path, so
        # *recording* a wide gadget is array work too.  Thresholds up to
        # 2**l must fit int64, hence the l < 62 guard; a row whose
        # individual weights leave int64 falls through to the per-gate path
        # below (exact Python-int storage).
        row_sources, row_weights = canonical_parts(sources, weights)
        try:
            weights_row = np.asarray(row_weights, dtype=np.int64)
        except OverflowError:
            weights_row = None
    else:
        weights_row = None
    if weights_row is not None:
        fan = len(row_sources)
        base = builder.n_nodes
        # The bank's depths are closed-form: the m interval gates sit one
        # level above the deepest source, the select gate one above them —
        # no need for the generic batch layering passes.  (On a template
        # recorder, node_depths_of is parameter-relative, so these are the
        # correct relative depths too.)
        if fan:
            source_depth = int(
                builder.node_depths_of(np.asarray(row_sources, dtype=np.int64)).max()
            )
        else:
            source_depth = 0
        bank_depths = np.full(m + 1, source_depth + 1, dtype=np.int64)
        bank_depths[m] = source_depth + 2
        all_sources = np.empty(m * fan + m, dtype=np.int64)
        all_weights = np.empty(m * fan + m, dtype=np.int64)
        if fan:
            all_sources[: m * fan] = np.tile(
                np.asarray(row_sources, dtype=np.int64), m
            )
            all_weights[: m * fan] = np.tile(weights_row, m)
        all_sources[m * fan :] = np.arange(base, base + m, dtype=np.int64)
        select_weights = np.ones(m, dtype=np.int64)
        select_weights[1::2] = -1
        all_weights[m * fan :] = select_weights
        offsets = np.empty(m + 2, dtype=np.int64)
        offsets[: m + 1] = np.arange(m + 1, dtype=np.int64) * fan
        offsets[m + 1] = m * fan + m
        thresholds = np.empty(m + 1, dtype=np.int64)
        thresholds[:m] = np.arange(1, m + 1, dtype=np.int64) * step
        thresholds[m] = 1
        interval_tag = f"{tag}/interval"
        select_tag = f"{tag}/select"
        # Pre-interned int32 codes: one dict lookup per *tag*, not per gate
        # (the interval banks dominate the constructed circuits' gate count).
        intern = builder.intern_tag
        tag_codes = np.full(m + 1, intern(interval_tag), dtype=np.int32)
        tag_codes[m] = intern(select_tag)
        node_ids = builder.add_gates(
            all_sources,
            offsets,
            all_weights,
            thresholds,
            tag=tag_codes,
            canonicalize=False,
            depths=bank_depths,
            tag_counts={interval_tag: m, select_tag: 1},
        )
        return int(node_ids[-1])
    interval_gates: List[int] = []
    for i in range(1, m + 1):
        interval_gates.append(
            builder.add_gate(sources, weights, i * step, tag=f"{tag}/interval")
        )
    out_weights = [1 if i % 2 == 1 else -1 for i in range(1, m + 1)]
    return builder.add_gate(interval_gates, out_weights, 1, tag=f"{tag}/select")


# --------------------------------------------------------------------------- #
# Full extraction of every bit of a positively-weighted sum of bits.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BitPlan:
    """Plan for extracting output bit ``position`` (0-indexed, LSB = 0)."""

    position: int
    kept_indices: Tuple[int, ...]
    bound: int  # sum of kept weights; the truncated sum s_j lies in [0, bound]
    l: int  # bits(bound)
    k: int  # which MSB of the truncated sum equals this output bit
    n_gates: int  # 2**k + 1, or 0 when the bit is identically zero

    @property
    def is_zero(self) -> bool:
        """True when this output bit is identically 0 (no gates emitted)."""
        return self.n_gates == 0


@dataclass(frozen=True)
class ExtractionPlan:
    """Full plan: one :class:`BitPlan` per output bit plus totals."""

    bit_plans: Tuple[BitPlan, ...]
    total_bound: int

    @property
    def n_bits(self) -> int:
        """Number of output bit positions covered by the plan."""
        return len(self.bit_plans)

    @property
    def total_gates(self) -> int:
        """Exact number of gates the builder will emit for this plan."""
        return sum(p.n_gates for p in self.bit_plans)


def plan_full_extraction(
    weights: Sequence[int],
    n_bits: Optional[int] = None,
) -> ExtractionPlan:
    """Plan the extraction of the bits of ``s = sum_i w_i x_i`` (``w_i > 0``).

    Parameters
    ----------
    weights:
        Positive term weights.  (Node ids are irrelevant to the plan.)
    n_bits:
        How many low-order bits to extract; defaults to all
        ``bits(sum(weights))`` bits, i.e. the full value.

    The plan is a pure function of the weight signature, and constructions
    re-emit the same signatures over and over (every cell of a tree level,
    every deferred template instance), so results are memoized.
    """
    return _plan_full_extraction_cached(
        tuple(int(w) for w in weights), n_bits
    )


@lru_cache(maxsize=4096)
def _plan_full_extraction_cached(
    weights: Tuple[int, ...],
    n_bits: Optional[int],
) -> ExtractionPlan:
    for w in weights:
        if w <= 0:
            raise ValueError(f"plan_full_extraction requires positive weights, got {w}")
    total = sum(weights)
    width = bits(total)
    if n_bits is None:
        n_bits = width
    if n_bits < 0:
        raise ValueError(f"n_bits must be nonnegative, got {n_bits}")

    plans: List[BitPlan] = []
    for position in range(n_bits):
        j = position + 1  # 1-indexed LSB position, as in the paper's proof
        modulus = 1 << j
        kept = tuple(i for i, w in enumerate(weights) if w % modulus != 0)
        bound = sum(weights[i] for i in kept)
        l = bits(bound)
        if l < j:
            # The truncated sum is always below 2**(j-1): bit j of s is 0.
            plans.append(BitPlan(position, kept, bound, l, 0, 0))
            continue
        k = l - j + 1
        plans.append(BitPlan(position, kept, bound, l, k, (1 << k) + 1))
    return ExtractionPlan(tuple(plans), total)


def count_full_extraction(weights: Sequence[int], n_bits: Optional[int] = None) -> int:
    """Exact gate count of :func:`build_full_extraction` without building it."""
    return plan_full_extraction(weights, n_bits).total_gates


def build_full_extraction(
    builder: CircuitBuilder,
    terms: Sequence[Term],
    n_bits: Optional[int] = None,
    tag: str = "lemma3.2",
) -> List[Optional[int]]:
    """Emit a depth-2 circuit computing the bits of ``s = sum_i w_i x_i``.

    ``terms`` must have positive weights (signed sums are split by the caller
    into the two nonnegative halves, per Section 3 of the paper).  Returns a
    list of node ids, LSB first, with ``None`` for bits that are identically
    zero (those produce no gates and are simply omitted downstream).
    """
    terms = [(int(n), int(w)) for n, w in terms]
    plan = plan_full_extraction([w for _, w in terms], n_bits)
    if getattr(builder, "counts_only", False) and (
        getattr(builder, "stamper", None) is not None
        or getattr(builder, "prefers_bulk", False)
    ):
        return _count_full_extraction_rows(builder, terms, plan, tag)
    outputs: List[Optional[int]] = []
    for bit_plan in plan.bit_plans:
        if bit_plan.is_zero:
            outputs.append(None)
            continue
        kept_terms = [terms[i] for i in bit_plan.kept_indices]
        node = build_kth_msb(
            builder,
            kept_terms,
            bit_plan.l,
            bit_plan.k,
            tag=f"{tag}/bit{bit_plan.position}",
        )
        outputs.append(node)
    return outputs


def _count_full_extraction_rows(builder, terms, plan, tag) -> List[Optional[int]]:
    """Dry-run fast lane for a whole extraction: terms are touched once.

    Every bit's bank shape is closed-form (``2**k`` interval gates over the
    kept terms plus a select gate), so the per-bit work reduces to a fan-in
    lookup; the term array, its depths and its duplicate check are computed
    once for the whole extraction instead of per bit.
    """
    n_terms = len(terms)
    if n_terms:
        src = np.fromiter((n for n, _ in terms), dtype=np.int64, count=n_terms)
        term_depths = builder.node_depths_of(src)
        distinct = len(np.unique(src)) == n_terms
        depth_lo = int(term_depths.min())
        depth_hi = int(term_depths.max())
        uniform_depth = depth_lo == depth_hi
    else:
        src = np.empty(0, dtype=np.int64)
        term_depths = src
        distinct = True
        depth_hi = 0
        uniform_depth = True
    base = builder.n_nodes
    offset = 0
    outputs: List[Optional[int]] = []
    fan_parts: List[np.ndarray] = []
    depth_parts: List[np.ndarray] = []
    tag_counts: dict = {}
    for bit_plan in plan.bit_plans:
        if bit_plan.is_zero:
            outputs.append(None)
            continue
        m = 1 << bit_plan.k
        kept = bit_plan.kept_indices
        if distinct and uniform_depth:
            fan = len(kept)
            depth = depth_hi if kept else 0
        else:
            kept_idx = np.asarray(kept, dtype=np.int64)
            sub = src[kept_idx]
            fan = int(np.unique(sub).size) if not distinct else len(kept)
            depth = int(term_depths[kept_idx].max()) if len(kept) else 0
        fan_ins = np.full(m + 1, fan, dtype=np.int64)
        fan_ins[m] = m
        depths = np.full(m + 1, depth + 1, dtype=np.int64)
        depths[m] = depth + 2
        fan_parts.append(fan_ins)
        depth_parts.append(depths)
        bit_tag = f"{tag}/bit{bit_plan.position}"
        tag_counts[f"{bit_tag}/interval"] = m
        tag_counts[f"{bit_tag}/select"] = 1
        outputs.append(base + offset + m)
        offset += m + 1
    if fan_parts:
        builder.add_gate_rows(
            np.concatenate(fan_parts), np.concatenate(depth_parts), tag_counts
        )
    return outputs
