"""Threshold comparison of a signed value against an integer constant.

This is the final output gate of the trace circuit (Section 4.3): a single
threshold gate over the terms of a signed representation decides
``value >= tau``.  Because representations are weighted sums of gate
outputs, the comparison needs exactly one gate and one extra layer — no bits
of the value need to be materialized first.

The output gate of a constructed trace circuit reads *every* leaf-product
term, so its fan-in is of the order of the whole circuit; the comparison is
therefore emitted through the bulk array path when the builder supports it,
avoiding a million-element Python tuple canonicalization pass.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List

import numpy as np

from repro.arithmetic.signed import Rep, SignedValue, SignedValueBank
from repro.circuits.builder import CircuitBuilder

__all__ = [
    "build_ge_comparison",
    "build_ge_comparison_banks",
    "build_range_membership",
]


def build_ge_comparison(
    builder: CircuitBuilder,
    value: SignedValue,
    threshold: int,
    tag: str = "compare",
) -> int:
    """Single gate deciding whether a signed representation is ``>= threshold``."""
    pos = value.pos.terms
    neg = value.neg.terms
    if getattr(builder, "counts_only", False) and (pos or neg):
        # Dry-run shortcut: one gate whose fan-in and depth are closed-form;
        # the weight values never matter for counting.
        fan = len(pos) + len(neg)
        sources = np.fromiter(
            itertools.chain((n for n, _ in pos), (n for n, _ in neg)),
            dtype=np.int64,
            count=fan,
        )
        depth = int(builder.node_depths_of(sources).max()) + 1
        node_ids = builder.add_gate_rows(
            np.asarray([fan], dtype=np.int64),
            np.asarray([depth], dtype=np.int64),
            tag_counts={tag: 1},
        )
        return int(node_ids[0])
    if getattr(builder, "stamper", None) is not None and (pos or neg):
        fan = len(pos) + len(neg)
        try:
            sources = np.fromiter(
                itertools.chain(
                    (n for n, _ in pos), (n for n, _ in neg)
                ),
                dtype=np.int64,
                count=fan,
            )
            weights = np.fromiter(
                itertools.chain(
                    (w for _, w in pos), (-w for _, w in neg)
                ),
                dtype=np.int64,
                count=fan,
            )
            thresholds = np.asarray([int(threshold)], dtype=np.int64)
        except OverflowError:
            sources = None  # weights/threshold beyond int64: exact path below
        if sources is not None:
            node_ids = builder.add_gates(
                sources,
                np.asarray([0, fan], dtype=np.int64),
                weights,
                thresholds,
                tag=tag,
            )
            return int(node_ids[0])
    gate_sources = [n for n, _ in pos] + [n for n, _ in neg]
    gate_weights = [w for _, w in pos] + [-w for _, w in neg]
    return builder.add_gate(gate_sources, gate_weights, int(threshold), tag=tag)


def build_ge_comparison_banks(
    builder,
    values: Iterable[SignedValueBank],
    threshold: int,
    tag: str = "compare",
) -> int:
    """Single comparison gate over the summed terms of many banked values.

    ``values`` are single-row bank views in emission order (the trace
    circuit's leaf products); their positive and negative terms are
    concatenated by arrays instead of materializing one giant ``Rep``.  The
    legacy path sorts and merges the combined terms (``Rep.from_terms``);
    stamped banks emit their gates in ascending id order, so the
    concatenation is already sorted — this is verified, and any violation
    (or an override row) falls back to the exact scalar assembly.
    """
    values = list(values)
    pos_nodes: List[np.ndarray] = []
    pos_weights: List[np.ndarray] = []
    neg_nodes: List[np.ndarray] = []
    neg_weights: List[np.ndarray] = []
    clean = True
    for value in values:
        if not isinstance(value, SignedValueBank) or value.overrides is not None:
            clean = False
            break
        if value.pos.n_terms:
            pos_nodes.append(value.pos.nodes[0])
            pos_weights.append(value.pos.weights_array())
        if value.neg.n_terms:
            neg_nodes.append(value.neg.nodes[0])
            neg_weights.append(value.neg.weights_array())
    if clean:
        pos_cat = (
            np.concatenate(pos_nodes) if pos_nodes else np.empty(0, dtype=np.int64)
        )
        neg_cat = (
            np.concatenate(neg_nodes) if neg_nodes else np.empty(0, dtype=np.int64)
        )
        if bool((np.diff(pos_cat) > 0).all()) and bool((np.diff(neg_cat) > 0).all()):
            fan = len(pos_cat) + len(neg_cat)
            if fan == 0:
                return build_ge_comparison(
                    builder, SignedValue(), int(threshold), tag=tag
                )
            sources = np.concatenate([pos_cat, neg_cat])
            if getattr(builder, "counts_only", False):
                depth = int(builder.node_depths_of(sources).max()) + 1
                node_ids = builder.add_gate_rows(
                    np.asarray([fan], dtype=np.int64),
                    np.asarray([depth], dtype=np.int64),
                    tag_counts={tag: 1},
                )
                return int(node_ids[0])
            weights = np.concatenate(pos_weights + [-w for w in neg_weights])
            try:
                thresholds = np.asarray([int(threshold)], dtype=np.int64)
            except OverflowError:
                thresholds = np.empty(1, dtype=object)
                thresholds[0] = int(threshold)
            node_ids = builder.add_gates(
                sources,
                np.asarray([0, fan], dtype=np.int64),
                weights,
                thresholds,
                tag=tag,
            )
            return int(node_ids[0])
    # Exact fallback: materialize and merge like the legacy assembly.
    pos_terms: List = []
    neg_terms: List = []
    for value in values:
        scalar = value.signed_value(0) if isinstance(value, SignedValueBank) else value
        pos_terms.extend(scalar.pos.terms)
        neg_terms.extend(scalar.neg.terms)
    total = SignedValue(Rep.from_terms(pos_terms), Rep.from_terms(neg_terms))
    return build_ge_comparison(builder, total, int(threshold), tag=tag)


def build_range_membership(
    builder: CircuitBuilder,
    value: SignedValue,
    low: int,
    high: int,
    tag: str = "range",
) -> int:
    """Depth-2 circuit deciding ``low <= value < high``.

    Built from two comparison gates and one combining gate; provided as a
    convenience for applications that ask windowed questions (e.g. "does the
    graph have between low and high triangles?").
    """
    if high <= low:
        raise ValueError(f"empty range [{low}, {high})")
    at_least_low = build_ge_comparison(builder, value, low, tag=f"{tag}/low")
    at_least_high = build_ge_comparison(builder, value, high, tag=f"{tag}/high")
    return builder.add_gate(
        [at_least_low, at_least_high], [1, -1], 1, tag=f"{tag}/combine"
    )
