"""Threshold comparison of a signed value against an integer constant.

This is the final output gate of the trace circuit (Section 4.3): a single
threshold gate over the terms of a signed representation decides
``value >= tau``.  Because representations are weighted sums of gate
outputs, the comparison needs exactly one gate and one extra layer — no bits
of the value need to be materialized first.
"""

from __future__ import annotations

from repro.arithmetic.signed import SignedValue
from repro.circuits.builder import CircuitBuilder

__all__ = ["build_ge_comparison", "build_range_membership"]


def build_ge_comparison(
    builder: CircuitBuilder,
    value: SignedValue,
    threshold: int,
    tag: str = "compare",
) -> int:
    """Single gate deciding whether a signed representation is ``>= threshold``."""
    sources = [n for n, _ in value.pos.terms] + [n for n, _ in value.neg.terms]
    weights = [w for _, w in value.pos.terms] + [-w for _, w in value.neg.terms]
    return builder.add_gate(sources, weights, int(threshold), tag=tag)


def build_range_membership(
    builder: CircuitBuilder,
    value: SignedValue,
    low: int,
    high: int,
    tag: str = "range",
) -> int:
    """Depth-2 circuit deciding ``low <= value < high``.

    Built from two comparison gates and one combining gate; provided as a
    convenience for applications that ask windowed questions (e.g. "does the
    graph have between low and high triangles?").
    """
    if high <= low:
        raise ValueError(f"empty range [{low}, {high})")
    at_least_low = build_ge_comparison(builder, value, low, tag=f"{tag}/low")
    at_least_high = build_ge_comparison(builder, value, high, tag=f"{tag}/high")
    return builder.add_gate(
        [at_least_low, at_least_high], [1, -1], 1, tag=f"{tag}/combine"
    )
