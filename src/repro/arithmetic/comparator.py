"""Threshold comparison of a signed value against an integer constant.

This is the final output gate of the trace circuit (Section 4.3): a single
threshold gate over the terms of a signed representation decides
``value >= tau``.  Because representations are weighted sums of gate
outputs, the comparison needs exactly one gate and one extra layer — no bits
of the value need to be materialized first.

The output gate of a constructed trace circuit reads *every* leaf-product
term, so its fan-in is of the order of the whole circuit; the comparison is
therefore emitted through the bulk array path when the builder supports it,
avoiding a million-element Python tuple canonicalization pass.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.arithmetic.signed import SignedValue
from repro.circuits.builder import CircuitBuilder

__all__ = ["build_ge_comparison", "build_range_membership"]


def build_ge_comparison(
    builder: CircuitBuilder,
    value: SignedValue,
    threshold: int,
    tag: str = "compare",
) -> int:
    """Single gate deciding whether a signed representation is ``>= threshold``."""
    pos = value.pos.terms
    neg = value.neg.terms
    if getattr(builder, "stamper", None) is not None and (pos or neg):
        fan = len(pos) + len(neg)
        try:
            sources = np.fromiter(
                itertools.chain(
                    (n for n, _ in pos), (n for n, _ in neg)
                ),
                dtype=np.int64,
                count=fan,
            )
            weights = np.fromiter(
                itertools.chain(
                    (w for _, w in pos), (-w for _, w in neg)
                ),
                dtype=np.int64,
                count=fan,
            )
            thresholds = np.asarray([int(threshold)], dtype=np.int64)
        except OverflowError:
            sources = None  # weights/threshold beyond int64: exact path below
        if sources is not None:
            node_ids = builder.add_gates(
                sources,
                np.asarray([0, fan], dtype=np.int64),
                weights,
                thresholds,
                tag=tag,
            )
            return int(node_ids[0])
    gate_sources = [n for n, _ in pos] + [n for n, _ in neg]
    gate_weights = [w for _, w in pos] + [-w for _, w in neg]
    return builder.add_gate(gate_sources, gate_weights, int(threshold), tag=tag)


def build_range_membership(
    builder: CircuitBuilder,
    value: SignedValue,
    low: int,
    high: int,
    tag: str = "range",
) -> int:
    """Depth-2 circuit deciding ``low <= value < high``.

    Built from two comparison gates and one combining gate; provided as a
    convenience for applications that ask windowed questions (e.g. "does the
    graph have between low and high triangles?").
    """
    if high <= low:
        raise ValueError(f"empty range [{low}, {high})")
    at_least_low = build_ge_comparison(builder, value, low, tag=f"{tag}/low")
    at_least_high = build_ge_comparison(builder, value, high, tag=f"{tag}/high")
    return builder.add_gate(
        [at_least_low, at_least_high], [1, -1], 1, tag=f"{tag}/combine"
    )
