"""Lemma 3.3: depth-1 circuits producing *representations* of products.

The product of a few small integers given in binary is computed as a
representation (an integer-weighted sum of gate outputs) rather than in
binary: for factors ``x = sum_i 2^i x_i``, ``y = sum_j 2^j y_j``,
``z = sum_k 2^k z_k`` the product expands to
``sum_{i,j,k} 2^(i+j+k) x_i y_j z_k``, and each conjunction ``x_i y_j z_k``
is a single threshold gate ``[x_i + y_j + z_k >= 3]``.  The representation is
consumed directly by later weighted-sum gates, so no carry propagation is
ever needed — this is why the construction stays depth 1 (Lemma 3.3 of the
paper, stated there for three factors; the two-factor case used for the
matrix product is identical with ``m**2`` gates).

Signed factors are expanded over sign combinations exactly as described in
the paper's "Negative numbers" paragraph (a constant-factor ``2**f`` blow-up
for ``f`` factors, i.e. 8x for the trace circuit's triple products).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

import numpy as np

from repro.arithmetic.signed import (
    BinaryNumber,
    Rep,
    SignedBinaryNumber,
    SignedValue,
    SignedValueBank,
)
from repro.circuits.builder import CircuitBuilder

__all__ = [
    "build_unsigned_product_rep",
    "build_signed_product",
    "build_signed_products",
    "build_signed_product_banks",
    "count_unsigned_product_rep",
    "count_signed_product",
]


def build_unsigned_product_rep(
    builder: CircuitBuilder,
    factors: Sequence[BinaryNumber],
    tag: str = "lemma3.3",
) -> Rep:
    """Representation of the product of nonnegative binary numbers.

    With a single factor no gates are needed (its own bits already form a
    representation).  With ``f >= 2`` factors, one gate is emitted per
    combination of one potentially-nonzero bit from each factor.
    """
    if not factors:
        raise ValueError("a product needs at least one factor")
    if any(f.n_bits == 0 for f in factors):
        return Rep.zero()
    if len(factors) == 1:
        return factors[0].to_rep()

    terms: List[Tuple[int, int]] = []
    bit_lists = [list(zip(f.bit_positions, f.bit_nodes)) for f in factors]
    arity = len(factors)
    for combo in itertools.product(*bit_lists):
        weight = 1 << sum(pos for pos, _ in combo)
        nodes = [node for _, node in combo]
        gate = builder.add_gate(nodes, [1] * arity, arity, tag=f"{tag}/and")
        terms.append((gate, weight))
    return Rep.from_terms(terms)


def count_unsigned_product_rep(factor_bit_counts: Sequence[int]) -> int:
    """Exact gate count of :func:`build_unsigned_product_rep`."""
    if not factor_bit_counts:
        raise ValueError("a product needs at least one factor")
    if any(c == 0 for c in factor_bit_counts):
        return 0
    if len(factor_bit_counts) == 1:
        return 0
    count = 1
    for c in factor_bit_counts:
        count *= c
    return count


def build_signed_product(
    builder: CircuitBuilder,
    factors: Sequence[SignedBinaryNumber],
    tag: str = "lemma3.3",
) -> SignedValue:
    """Representation of a product of signed binary numbers.

    Expands ``prod_i (x_i^+ - x_i^-)`` over all sign combinations; each
    combination is an unsigned product contributing to the positive or
    negative part of the result according to the parity of minus signs.

    On a vectorizing builder the gadget is emitted via template stamping
    (:func:`build_signed_products` with a single instance); otherwise the
    classic per-gate path runs.
    """
    return build_signed_products(builder, [factors], tag=tag)[0]


def build_signed_products(
    builder: CircuitBuilder,
    factors_list: Sequence[Sequence[SignedBinaryNumber]],
    tag: str = "lemma3.3",
) -> List[SignedValue]:
    """Emit many signed products, template-stamping identical bit layouts.

    A product's gate stream depends only on the *bit positions* present in
    each factor's two parts; the bit nodes enter positionally.  Consecutive
    instances sharing that layout are stamped from one recorded template.
    Instances are emitted in list order, so the circuit is wire-for-wire
    identical to calling :func:`build_signed_product` in a loop.
    """
    for factors in factors_list:
        if not factors:
            raise ValueError("a product needs at least one factor")
    stamper = getattr(builder, "stamper", None)
    if stamper is None:
        return [
            _build_signed_product_direct(builder, factors, tag)
            for factors in factors_list
        ]
    layouts = [
        tuple((f.pos.bit_positions, f.neg.bit_positions) for f in factors)
        for factors in factors_list
    ]
    results: List[SignedValue] = []
    start = 0
    while start < len(factors_list):
        layout = layouts[start]
        end = start + 1
        while end < len(factors_list) and layouts[end] == layout:
            end += 1
        group = factors_list[start:end]
        key = ("signed_product", layout, tag)
        n_params = sum(len(p) + len(q) for p, q in layout)
        params_list = [
            [
                node
                for factor in factors
                for part in (factor.pos, factor.neg)
                for node in part.bit_nodes
            ]
            for factors in group
        ]

        emit_template = _product_template_emitter(layout, tag)

        def emit_legacy(i, group=group):
            return _build_signed_product_direct(builder, group[i], tag)

        results.extend(
            stamper.stamp_all(key, n_params, params_list, emit_template, emit_legacy)
        )
        start = end
    return results


def _product_template_emitter(layout, tag):
    """Template recorder for a signed product with the given bit layout.

    Shared by the scalar grouping path and the banked path, so both record
    byte-identical templates under the same key.
    """

    def emit_template(recorder, layout=layout):
        local = 0
        local_factors = []
        for pos_positions, neg_positions in layout:
            pos_nodes = tuple(range(local, local + len(pos_positions)))
            local += len(pos_positions)
            neg_nodes = tuple(range(local, local + len(neg_positions)))
            local += len(neg_positions)
            local_factors.append(
                SignedBinaryNumber(
                    BinaryNumber(
                        pos_positions,
                        pos_nodes,
                        max(pos_positions) + 1 if pos_positions else 0,
                    ),
                    BinaryNumber(
                        neg_positions,
                        neg_nodes,
                        max(neg_positions) + 1 if neg_positions else 0,
                    ),
                )
            )
        return _build_signed_product_direct(recorder, local_factors, tag)

    return emit_template


def build_signed_product_banks(
    builder,
    factor_banks: Sequence[SignedValueBank],
    tag: str = "lemma3.3",
) -> SignedValueBank:
    """Banked signed products: instance ``i`` multiplies row ``i`` of every
    factor bank.

    All factor banks must carry binary layouts and agree on the batch size;
    the shared layouts mean the whole batch is one template key, so the gate
    stream equals :func:`build_signed_products` on the materialized factor
    lists (duplicate-node rows drop to the legacy emitter in place and come
    back as bank overrides, since a merged product has a different term
    layout).
    """
    if not factor_banks:
        raise ValueError("a product needs at least one factor")
    k = factor_banks[0].k
    if k == 0:
        raise ValueError("cannot emit an empty product batch")
    for bank in factor_banks:
        if bank.k != k:
            raise ValueError("factor banks disagree on the batch size")
    if any(bank.overrides for bank in factor_banks):
        factors_list = [
            [bank.signed_binary(i) for bank in factor_banks] for i in range(k)
        ]
        return SignedValueBank.from_scalars(
            build_signed_products(builder, factors_list, tag=tag)
        )
    layout = tuple((f.pos.positions, f.neg.positions) for f in factor_banks)
    key = ("signed_product", layout, tag)
    n_params = sum(f.pos.n_terms + f.neg.n_terms for f in factor_banks)
    columns = [
        part.nodes for f in factor_banks for part in (f.pos, f.neg) if part.n_terms
    ]
    if columns:
        params = np.concatenate(columns, axis=1)
        if not params.flags.c_contiguous:
            params = np.ascontiguousarray(params)
    else:
        params = np.empty((k, 0), dtype=np.int64)
    emit_template = _product_template_emitter(layout, tag)

    def emit_legacy(i):
        return _build_signed_product_direct(
            builder, [bank.signed_binary(i) for bank in factor_banks], tag
        )

    template, mapped, overrides = builder.stamper.stamp_all_mapped(
        key, n_params, params, emit_template, emit_legacy
    )
    if template is None:
        # Not templated (unrelocatable or recording deferred): `mapped` holds
        # the directly emitted scalar results, already in stream order.
        return SignedValueBank.from_scalars(mapped)
    bank = SignedValueBank.from_template(template, mapped)
    if overrides:
        bank = SignedValueBank(bank.pos, bank.neg, overrides)
    return bank


def _build_signed_product_direct(
    builder,
    factors: Sequence[SignedBinaryNumber],
    tag: str,
) -> SignedValue:
    """The classic emission of one signed product."""
    pos_terms: List[Tuple[int, int]] = []
    neg_terms: List[Tuple[int, int]] = []
    choices = [((f.pos, +1), (f.neg, -1)) for f in factors]
    for combo in itertools.product(*choices):
        parts = [part for part, _ in combo]
        sign = 1
        for _, s in combo:
            sign *= s
        if any(p.n_bits == 0 for p in parts):
            continue
        rep = build_unsigned_product_rep(builder, parts, tag=tag)
        target = pos_terms if sign > 0 else neg_terms
        target.extend(rep.terms)
    return SignedValue(Rep.from_terms(pos_terms), Rep.from_terms(neg_terms))


def count_signed_product(factors: Sequence[SignedBinaryNumber]) -> int:
    """Exact gate count of :func:`build_signed_product` (dry run)."""
    if not factors:
        raise ValueError("a product needs at least one factor")
    total = 0
    choices = [(f.pos.n_bits, f.neg.n_bits) for f in factors]
    for combo in itertools.product(*[(0, 1)] * len(factors)):
        counts = [choices[i][pick] for i, pick in enumerate(combo)]
        if any(c == 0 for c in counts):
            continue
        total += count_unsigned_product_rep(counts)
    return total
