"""Wire-level number representations used by the arithmetic circuits.

The paper manipulates integers inside the circuit in two forms:

* a **binary number**: an explicit base-2 representation, one circuit node
  per bit (the output format of the Lemma 3.2 addition circuits);
* a **representation** (paper Section 3, before Lemma 3.3): an
  integer-weighted sum of binary circuit nodes ``x = sum_i w_i * x_i`` that
  is *not* required to be a base-2 expansion — the output format of the
  Lemma 3.3 product circuits.  Representations are only ever consumed as
  inputs to later threshold gates, which is exactly how the paper uses them.

Signed quantities are carried as a pair of nonnegative parts
``x = x_plus - x_minus`` (Section 3, "Negative numbers").

These classes are plain descriptions of wires + weights; they emit no gates
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Rep",
    "SignedValue",
    "BinaryNumber",
    "SignedBinaryNumber",
    "RepBank",
    "SignedValueBank",
]


@dataclass(frozen=True)
class Rep:
    """A nonnegative integer as a positively-weighted sum of 0/1 nodes.

    ``terms`` is a tuple of ``(node_id, weight)`` with strictly positive
    integer weights.  The represented value is ``sum(weight * value(node))``,
    which lies in ``[0, max_value]``.
    """

    terms: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for node, weight in self.terms:
            if weight <= 0:
                raise ValueError(
                    f"Rep weights must be positive integers, got {weight} on node {node}"
                )

    @staticmethod
    def from_terms(terms: Iterable[Tuple[int, int]]) -> "Rep":
        """Build a Rep, dropping zero-weight terms and merging duplicates."""
        merged = {}
        for node, weight in terms:
            if weight == 0:
                continue
            merged[node] = merged.get(node, 0) + int(weight)
        return Rep(tuple(sorted((n, w) for n, w in merged.items() if w != 0)))

    @staticmethod
    def zero() -> "Rep":
        """The empty representation (value 0)."""
        return Rep(())

    @property
    def max_value(self) -> int:
        """Upper bound on the represented value (all nodes equal to 1)."""
        return sum(w for _, w in self.terms)

    @property
    def is_zero(self) -> bool:
        """True when the representation is identically zero."""
        return not self.terms

    def scaled(self, factor: int) -> "Rep":
        """Multiply the represented value by a positive integer constant."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Rep(tuple((n, w * factor) for n, w in self.terms))

    def value(self, node_values) -> int:
        """Evaluate the representation against concrete node values."""
        return sum(w * int(node_values[n]) for n, w in self.terms)


@dataclass(frozen=True)
class SignedValue:
    """A signed integer carried as a pair of representations ``pos - neg``."""

    pos: Rep = Rep()
    neg: Rep = Rep()

    @staticmethod
    def zero() -> "SignedValue":
        """The signed value 0."""
        return SignedValue(Rep.zero(), Rep.zero())

    @property
    def max_abs(self) -> int:
        """Upper bound on the absolute value."""
        return max(self.pos.max_value, self.neg.max_value)

    @property
    def is_zero(self) -> bool:
        """True when both parts are identically zero."""
        return self.pos.is_zero and self.neg.is_zero

    def negated(self) -> "SignedValue":
        """The signed value ``-x`` (swap the two parts; no gates needed)."""
        return SignedValue(self.neg, self.pos)

    def scaled(self, factor: int) -> "SignedValue":
        """Multiply by an integer constant (sign handled by swapping parts)."""
        if factor == 0:
            return SignedValue.zero()
        if factor > 0:
            return SignedValue(self.pos.scaled(factor), self.neg.scaled(factor))
        return SignedValue(self.neg.scaled(-factor), self.pos.scaled(-factor))

    def value(self, node_values) -> int:
        """Evaluate ``pos - neg`` against concrete node values."""
        return self.pos.value(node_values) - self.neg.value(node_values)


def _rep_unchecked(terms: Tuple[Tuple[int, int], ...]) -> "Rep":
    """Construct a Rep from known-canonical terms, skipping validation."""
    rep = object.__new__(Rep)
    object.__setattr__(rep, "terms", terms)
    return rep


def _binary_unchecked(
    positions: Tuple[int, ...], nodes: Tuple[int, ...], width: int
) -> "BinaryNumber":
    """Construct a BinaryNumber from known-valid parts, skipping validation."""
    number = object.__new__(BinaryNumber)
    object.__setattr__(number, "bit_positions", positions)
    object.__setattr__(number, "bit_nodes", nodes)
    object.__setattr__(number, "width", width)
    return number


@dataclass(frozen=True)
class BinaryNumber:
    """A nonnegative integer as an explicit binary expansion over nodes.

    ``bit_nodes[i]`` holds the node carrying the bit of weight
    ``2**bit_positions[i]``.  Bits that are known to be identically zero are
    simply omitted, so the two tuples only list *potentially nonzero* bits.
    ``width`` is the nominal bit-width (1 + highest position that could be
    present), recorded for bookkeeping.
    """

    bit_positions: Tuple[int, ...] = ()
    bit_nodes: Tuple[int, ...] = ()
    width: int = 0

    def __post_init__(self) -> None:
        if len(self.bit_positions) != len(self.bit_nodes):
            raise ValueError("bit_positions and bit_nodes must be aligned")
        if len(set(self.bit_positions)) != len(self.bit_positions):
            raise ValueError("duplicate bit positions in BinaryNumber")

    @staticmethod
    def zero() -> "BinaryNumber":
        """The number 0 (no bits)."""
        return BinaryNumber((), (), 0)

    @staticmethod
    def from_bits(bit_nodes: Sequence[int]) -> "BinaryNumber":
        """Binary number whose i-th listed node is the bit of weight 2**i."""
        nodes = tuple(int(n) for n in bit_nodes)
        return BinaryNumber(tuple(range(len(nodes))), nodes, len(nodes))

    @property
    def n_bits(self) -> int:
        """Number of potentially nonzero bits."""
        return len(self.bit_nodes)

    @property
    def max_value(self) -> int:
        """Upper bound on the value."""
        return sum(1 << p for p in self.bit_positions)

    def to_rep(self) -> Rep:
        """View the binary number as a representation (weights = powers of 2)."""
        return Rep.from_terms(
            (node, 1 << pos) for pos, node in zip(self.bit_positions, self.bit_nodes)
        )

    def value(self, node_values) -> int:
        """Evaluate against concrete node values."""
        return sum(
            (1 << pos) * int(node_values[node])
            for pos, node in zip(self.bit_positions, self.bit_nodes)
        )


@dataclass(frozen=True)
class SignedBinaryNumber:
    """A signed integer as a pair of binary numbers ``pos - neg``."""

    pos: BinaryNumber = BinaryNumber.zero()
    neg: BinaryNumber = BinaryNumber.zero()

    @staticmethod
    def zero() -> "SignedBinaryNumber":
        """The signed value 0."""
        return SignedBinaryNumber(BinaryNumber.zero(), BinaryNumber.zero())

    @staticmethod
    def from_input_bits(pos_bits: Sequence[int], neg_bits: Sequence[int]) -> "SignedBinaryNumber":
        """Wrap input wires carrying the two magnitude encodings."""
        return SignedBinaryNumber(
            BinaryNumber.from_bits(pos_bits), BinaryNumber.from_bits(neg_bits)
        )

    @property
    def max_abs(self) -> int:
        """Upper bound on the absolute value."""
        return max(self.pos.max_value, self.neg.max_value)

    def to_signed_value(self) -> SignedValue:
        """View as a :class:`SignedValue` (representation form)."""
        return SignedValue(self.pos.to_rep(), self.neg.to_rep())

    def negated(self) -> "SignedBinaryNumber":
        """The signed value ``-x``."""
        return SignedBinaryNumber(self.neg, self.pos)

    def value(self, node_values) -> int:
        """Evaluate ``pos - neg`` against concrete node values."""
        return self.pos.value(node_values) - self.neg.value(node_values)


# --------------------------------------------------------------------------- #
# Value banks: whole vectors of same-layout values as node-id matrices.
# --------------------------------------------------------------------------- #


class RepBank:
    """A batch of same-layout representations as one ``(k, m)`` node matrix.

    Row ``i`` holds the ``m`` node ids of value ``i``; the per-column weights
    are *shared* across the batch (that is what makes a bank: the values were
    produced by stamping one gadget template, or wrap one uniform input
    layout).  When the representations are binary expansions, ``positions``
    records the shared bit positions (then ``weights[j] == 2**positions[j]``)
    and ``width`` the nominal bit-width, so scalar views can materialize as
    :class:`BinaryNumber` parts.

    Invariant relied on by the banked emitters: each row's node ids are
    strictly increasing, so the scalar :class:`Rep` view ``tuple(zip(row,
    weights))`` is already canonical (sorted, duplicate-free) — exactly what
    ``Rep.from_terms`` would have produced.
    """

    __slots__ = ("nodes", "weights", "positions", "width", "_weights_arr")

    def __init__(
        self,
        nodes: np.ndarray,
        weights: Tuple[int, ...],
        positions: Optional[Tuple[int, ...]] = None,
        width: int = 0,
    ) -> None:
        self.nodes = nodes
        self.weights = tuple(weights)
        self.positions = tuple(positions) if positions is not None else None
        self.width = int(width)
        self._weights_arr: Optional[np.ndarray] = None

    @property
    def k(self) -> int:
        """Number of values in the bank."""
        return self.nodes.shape[0]

    @property
    def n_terms(self) -> int:
        """Number of terms (columns) per value."""
        return self.nodes.shape[1]

    @property
    def max_value(self) -> int:
        """Shared upper bound on every value in the bank."""
        return sum(self.weights)

    def weights_array(self) -> np.ndarray:
        """The shared weights as an array (int64, object beyond its range)."""
        if self._weights_arr is None:
            try:
                self._weights_arr = np.asarray(self.weights, dtype=np.int64)
            except OverflowError:
                arr = np.empty(len(self.weights), dtype=object)
                arr[:] = self.weights
                self._weights_arr = arr
        return self._weights_arr

    def rep(self, i: int) -> Rep:
        """Scalar :class:`Rep` view of row ``i``."""
        return _rep_unchecked(tuple(zip(self.nodes[i].tolist(), self.weights)))

    def binary(self, i: int) -> BinaryNumber:
        """Scalar :class:`BinaryNumber` view of row ``i`` (binary banks only)."""
        if self.positions is None:
            raise TypeError("bank does not carry a binary expansion layout")
        return _binary_unchecked(
            self.positions, tuple(self.nodes[i].tolist()), self.width
        )

    def gather(self, rows) -> "RepBank":
        """Bank over the selected rows (shared layout, gathered nodes)."""
        out = RepBank(self.nodes[rows], self.weights, self.positions, self.width)
        out._weights_arr = self._weights_arr
        return out

    def row_view(self, i: int) -> "RepBank":
        """Single-row bank sharing the underlying storage (no copy)."""
        out = RepBank(
            self.nodes[i : i + 1], self.weights, self.positions, self.width
        )
        out._weights_arr = self._weights_arr
        return out


class SignedValueBank:
    """A batch of signed values: one :class:`RepBank` per sign part.

    ``overrides`` maps row indices to scalar values (``SignedValue`` or
    ``SignedBinaryNumber``) for the rare rows that the template stamper had
    to emit through the legacy path with a *different* layout (duplicated
    parameters merge gates); those rows' entries in the node matrices are
    meaningless.  Consumers either go through :meth:`signed_value` /
    :meth:`signed_binary` (override-aware) or require a clean bank.
    """

    __slots__ = ("pos", "neg", "overrides")

    def __init__(
        self,
        pos: RepBank,
        neg: RepBank,
        overrides: Optional[Dict[int, object]] = None,
    ) -> None:
        self.pos = pos
        self.neg = neg
        self.overrides = overrides or None

    @property
    def k(self) -> int:
        """Number of values in the bank."""
        return self.pos.k

    @property
    def is_binary(self) -> bool:
        """True when both parts carry binary-expansion layouts."""
        return self.pos.positions is not None and self.neg.positions is not None

    @property
    def max_abs(self) -> int:
        """Shared upper bound on the absolute value of every entry."""
        return max(self.pos.max_value, self.neg.max_value)

    def signed_value(self, i: int) -> SignedValue:
        """Scalar :class:`SignedValue` view of row ``i`` (override-aware)."""
        if self.overrides is not None:
            value = self.overrides.get(i)
            if value is not None:
                if isinstance(value, SignedBinaryNumber):
                    return value.to_signed_value()
                return value
        value = object.__new__(SignedValue)
        object.__setattr__(value, "pos", self.pos.rep(i))
        object.__setattr__(value, "neg", self.neg.rep(i))
        return value

    def signed_binary(self, i: int) -> SignedBinaryNumber:
        """Scalar :class:`SignedBinaryNumber` view of row ``i``."""
        if self.overrides is not None:
            value = self.overrides.get(i)
            if value is not None:
                if not isinstance(value, SignedBinaryNumber):
                    raise TypeError("override row does not hold a binary value")
                return value
        number = object.__new__(SignedBinaryNumber)
        object.__setattr__(number, "pos", self.pos.binary(i))
        object.__setattr__(number, "neg", self.neg.binary(i))
        return number

    def gather(self, rows) -> "SignedValueBank":
        """Bank over the selected rows; refuses to gather override rows."""
        if self.overrides is not None:
            rows_arr = np.asarray(rows)
            for i in self.overrides:
                if bool((rows_arr == i).any()):
                    raise ValueError(
                        "cannot gather override rows into a uniform bank"
                    )
        return SignedValueBank(self.pos.gather(rows), self.neg.gather(rows))

    def row(self, i: int) -> "SignedValueBank":
        """Single-row bank view (no copy); refuses override rows."""
        if self.overrides is not None and i in self.overrides:
            raise ValueError("cannot take a uniform view of an override row")
        return SignedValueBank(self.pos.row_view(i), self.neg.row_view(i))

    def row_any(self, i: int) -> "SignedValueBank":
        """Single-row view that carries an override along when present."""
        if self.overrides is not None and i in self.overrides:
            return SignedValueBank(
                self.pos.row_view(i),
                self.neg.row_view(i),
                {0: self.overrides[i]},
            )
        return SignedValueBank(self.pos.row_view(i), self.neg.row_view(i))

    @staticmethod
    def from_template(template, mapped: np.ndarray) -> "SignedValueBank":
        """Wrap a stamped template's remapped result ids as a bank.

        Like :meth:`from_template_result`, but the derived shared layout is
        cached on the template (``template.bank_meta``), so hot paths that
        stamp the same template thousands of times never rebuild the weights
        and positions tuples.
        """
        meta = template.bank_meta
        if meta is None:
            bank = SignedValueBank.from_template_result(template.result, mapped)
            template.bank_meta = (
                (bank.pos.weights, bank.pos.positions, bank.pos.width),
                (bank.neg.weights, bank.neg.positions, bank.neg.width),
            )
            return bank
        (pos_w, pos_p, pos_width), (neg_w, neg_p, neg_width) = meta
        n_pos = len(pos_w)
        return SignedValueBank(
            RepBank(mapped[:, :n_pos], pos_w, pos_p, pos_width),
            RepBank(mapped[:, n_pos:], neg_w, neg_p, neg_width),
        )

    @staticmethod
    def from_template_result(result, mapped: np.ndarray) -> "SignedValueBank":
        """Wrap a stamped template's remapped result ids as a bank.

        ``mapped`` is the ``(k, n_result_ids)`` matrix from the stamper; its
        column order follows the template result walk (positive part's nodes
        first, then the negative part's), which is exactly how the recorded
        ``SignedBinaryNumber`` / ``SignedValue`` results are laid out.
        """
        if isinstance(result, SignedBinaryNumber):
            n_pos = len(result.pos.bit_nodes)
            pos = RepBank(
                mapped[:, :n_pos],
                tuple(1 << p for p in result.pos.bit_positions),
                result.pos.bit_positions,
                result.pos.width,
            )
            neg = RepBank(
                mapped[:, n_pos:],
                tuple(1 << p for p in result.neg.bit_positions),
                result.neg.bit_positions,
                result.neg.width,
            )
            return SignedValueBank(pos, neg)
        if isinstance(result, SignedValue):
            n_pos = len(result.pos.terms)
            pos = RepBank(
                mapped[:, :n_pos], tuple(w for _, w in result.pos.terms)
            )
            neg = RepBank(
                mapped[:, n_pos:], tuple(w for _, w in result.neg.terms)
            )
            return SignedValueBank(pos, neg)
        raise TypeError(f"cannot bank a template result of type {type(result)!r}")

    @staticmethod
    def from_scalars(values: Sequence[object]) -> "SignedValueBank":
        """Bank a list of scalar values emitted by the legacy path.

        Rows whose layout matches the first value's are packed into the node
        matrices; any non-conforming row becomes an override.  Supports
        homogeneous lists of :class:`SignedBinaryNumber` (binary layout kept)
        or :class:`SignedValue`.
        """
        if not values:
            raise ValueError("cannot bank an empty value list")
        first = values[0]
        overrides: Dict[int, object] = {}
        k = len(values)
        if isinstance(first, SignedBinaryNumber):
            pos_layout = (first.pos.bit_positions, first.pos.width)
            neg_layout = (first.neg.bit_positions, first.neg.width)
            pos_nodes = np.zeros((k, len(first.pos.bit_nodes)), dtype=np.int64)
            neg_nodes = np.zeros((k, len(first.neg.bit_nodes)), dtype=np.int64)
            for i, value in enumerate(values):
                if (
                    isinstance(value, SignedBinaryNumber)
                    and (value.pos.bit_positions, value.pos.width) == pos_layout
                    and (value.neg.bit_positions, value.neg.width) == neg_layout
                ):
                    pos_nodes[i] = value.pos.bit_nodes
                    neg_nodes[i] = value.neg.bit_nodes
                else:
                    overrides[i] = value
            pos = RepBank(
                pos_nodes,
                tuple(1 << p for p in first.pos.bit_positions),
                first.pos.bit_positions,
                first.pos.width,
            )
            neg = RepBank(
                neg_nodes,
                tuple(1 << p for p in first.neg.bit_positions),
                first.neg.bit_positions,
                first.neg.width,
            )
            return SignedValueBank(pos, neg, overrides)
        if isinstance(first, SignedValue):
            pos_weights = tuple(w for _, w in first.pos.terms)
            neg_weights = tuple(w for _, w in first.neg.terms)
            pos_nodes = np.zeros((k, len(pos_weights)), dtype=np.int64)
            neg_nodes = np.zeros((k, len(neg_weights)), dtype=np.int64)
            for i, value in enumerate(values):
                if (
                    isinstance(value, SignedValue)
                    and tuple(w for _, w in value.pos.terms) == pos_weights
                    and tuple(w for _, w in value.neg.terms) == neg_weights
                ):
                    if pos_weights:
                        pos_nodes[i] = [n for n, _ in value.pos.terms]
                    if neg_weights:
                        neg_nodes[i] = [n for n, _ in value.neg.terms]
                else:
                    overrides[i] = value
            return SignedValueBank(
                RepBank(pos_nodes, pos_weights),
                RepBank(neg_nodes, neg_weights),
                overrides,
            )
        raise TypeError(f"cannot bank scalar values of type {type(first)!r}")
