"""Wire-level number representations used by the arithmetic circuits.

The paper manipulates integers inside the circuit in two forms:

* a **binary number**: an explicit base-2 representation, one circuit node
  per bit (the output format of the Lemma 3.2 addition circuits);
* a **representation** (paper Section 3, before Lemma 3.3): an
  integer-weighted sum of binary circuit nodes ``x = sum_i w_i * x_i`` that
  is *not* required to be a base-2 expansion — the output format of the
  Lemma 3.3 product circuits.  Representations are only ever consumed as
  inputs to later threshold gates, which is exactly how the paper uses them.

Signed quantities are carried as a pair of nonnegative parts
``x = x_plus - x_minus`` (Section 3, "Negative numbers").

These classes are plain descriptions of wires + weights; they emit no gates
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Rep", "SignedValue", "BinaryNumber", "SignedBinaryNumber"]


@dataclass(frozen=True)
class Rep:
    """A nonnegative integer as a positively-weighted sum of 0/1 nodes.

    ``terms`` is a tuple of ``(node_id, weight)`` with strictly positive
    integer weights.  The represented value is ``sum(weight * value(node))``,
    which lies in ``[0, max_value]``.
    """

    terms: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for node, weight in self.terms:
            if weight <= 0:
                raise ValueError(
                    f"Rep weights must be positive integers, got {weight} on node {node}"
                )

    @staticmethod
    def from_terms(terms: Iterable[Tuple[int, int]]) -> "Rep":
        """Build a Rep, dropping zero-weight terms and merging duplicates."""
        merged = {}
        for node, weight in terms:
            if weight == 0:
                continue
            merged[node] = merged.get(node, 0) + int(weight)
        return Rep(tuple(sorted((n, w) for n, w in merged.items() if w != 0)))

    @staticmethod
    def zero() -> "Rep":
        """The empty representation (value 0)."""
        return Rep(())

    @property
    def max_value(self) -> int:
        """Upper bound on the represented value (all nodes equal to 1)."""
        return sum(w for _, w in self.terms)

    @property
    def is_zero(self) -> bool:
        """True when the representation is identically zero."""
        return not self.terms

    def scaled(self, factor: int) -> "Rep":
        """Multiply the represented value by a positive integer constant."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Rep(tuple((n, w * factor) for n, w in self.terms))

    def value(self, node_values) -> int:
        """Evaluate the representation against concrete node values."""
        return sum(w * int(node_values[n]) for n, w in self.terms)


@dataclass(frozen=True)
class SignedValue:
    """A signed integer carried as a pair of representations ``pos - neg``."""

    pos: Rep = Rep()
    neg: Rep = Rep()

    @staticmethod
    def zero() -> "SignedValue":
        """The signed value 0."""
        return SignedValue(Rep.zero(), Rep.zero())

    @property
    def max_abs(self) -> int:
        """Upper bound on the absolute value."""
        return max(self.pos.max_value, self.neg.max_value)

    @property
    def is_zero(self) -> bool:
        """True when both parts are identically zero."""
        return self.pos.is_zero and self.neg.is_zero

    def negated(self) -> "SignedValue":
        """The signed value ``-x`` (swap the two parts; no gates needed)."""
        return SignedValue(self.neg, self.pos)

    def scaled(self, factor: int) -> "SignedValue":
        """Multiply by an integer constant (sign handled by swapping parts)."""
        if factor == 0:
            return SignedValue.zero()
        if factor > 0:
            return SignedValue(self.pos.scaled(factor), self.neg.scaled(factor))
        return SignedValue(self.neg.scaled(-factor), self.pos.scaled(-factor))

    def value(self, node_values) -> int:
        """Evaluate ``pos - neg`` against concrete node values."""
        return self.pos.value(node_values) - self.neg.value(node_values)


@dataclass(frozen=True)
class BinaryNumber:
    """A nonnegative integer as an explicit binary expansion over nodes.

    ``bit_nodes[i]`` holds the node carrying the bit of weight
    ``2**bit_positions[i]``.  Bits that are known to be identically zero are
    simply omitted, so the two tuples only list *potentially nonzero* bits.
    ``width`` is the nominal bit-width (1 + highest position that could be
    present), recorded for bookkeeping.
    """

    bit_positions: Tuple[int, ...] = ()
    bit_nodes: Tuple[int, ...] = ()
    width: int = 0

    def __post_init__(self) -> None:
        if len(self.bit_positions) != len(self.bit_nodes):
            raise ValueError("bit_positions and bit_nodes must be aligned")
        if len(set(self.bit_positions)) != len(self.bit_positions):
            raise ValueError("duplicate bit positions in BinaryNumber")

    @staticmethod
    def zero() -> "BinaryNumber":
        """The number 0 (no bits)."""
        return BinaryNumber((), (), 0)

    @staticmethod
    def from_bits(bit_nodes: Sequence[int]) -> "BinaryNumber":
        """Binary number whose i-th listed node is the bit of weight 2**i."""
        nodes = tuple(int(n) for n in bit_nodes)
        return BinaryNumber(tuple(range(len(nodes))), nodes, len(nodes))

    @property
    def n_bits(self) -> int:
        """Number of potentially nonzero bits."""
        return len(self.bit_nodes)

    @property
    def max_value(self) -> int:
        """Upper bound on the value."""
        return sum(1 << p for p in self.bit_positions)

    def to_rep(self) -> Rep:
        """View the binary number as a representation (weights = powers of 2)."""
        return Rep.from_terms(
            (node, 1 << pos) for pos, node in zip(self.bit_positions, self.bit_nodes)
        )

    def value(self, node_values) -> int:
        """Evaluate against concrete node values."""
        return sum(
            (1 << pos) * int(node_values[node])
            for pos, node in zip(self.bit_positions, self.bit_nodes)
        )


@dataclass(frozen=True)
class SignedBinaryNumber:
    """A signed integer as a pair of binary numbers ``pos - neg``."""

    pos: BinaryNumber = BinaryNumber.zero()
    neg: BinaryNumber = BinaryNumber.zero()

    @staticmethod
    def zero() -> "SignedBinaryNumber":
        """The signed value 0."""
        return SignedBinaryNumber(BinaryNumber.zero(), BinaryNumber.zero())

    @staticmethod
    def from_input_bits(pos_bits: Sequence[int], neg_bits: Sequence[int]) -> "SignedBinaryNumber":
        """Wrap input wires carrying the two magnitude encodings."""
        return SignedBinaryNumber(
            BinaryNumber.from_bits(pos_bits), BinaryNumber.from_bits(neg_bits)
        )

    @property
    def max_abs(self) -> int:
        """Upper bound on the absolute value."""
        return max(self.pos.max_value, self.neg.max_value)

    def to_signed_value(self) -> SignedValue:
        """View as a :class:`SignedValue` (representation form)."""
        return SignedValue(self.pos.to_rep(), self.neg.to_rep())

    def negated(self) -> "SignedBinaryNumber":
        """The signed value ``-x``."""
        return SignedBinaryNumber(self.neg, self.pos)

    def value(self, node_values) -> int:
        """Evaluate ``pos - neg`` against concrete node values."""
        return self.pos.value(node_values) - self.neg.value(node_values)
