"""Staged (depth-2j) bit extraction: the depth/size trade-off of Theorem 4.1.

The paper's Theorem 4.1 relies on addition circuits with depth greater than 2
(citing Siu et al., Corollary 2) that compute a weighted sum of bits in depth
``O(d)`` with roughly ``O(d * 2**(l/d))`` gates, where ``l`` is the bit-width
of the sum — compared with ``O(2**l)`` interval gates for the single-shot
depth-2 construction of Lemma 3.1 applied to every bit.

The construction here is successive approximation, MSB-chunk first:

* split the ``l`` output bit positions into ``j`` contiguous chunks;
* round 1 extracts the top chunk of bits of ``s`` with Lemma 3.1 circuits;
* round ``m`` extracts the top chunk of the *residue*
  ``s' = s - (already-known high bits)``, which is again an integer-weighted
  sum of binary variables (the known bits enter with negative power-of-two
  weights), so Lemma 3.1 applies directly with a bound of ``2**(remaining
  width)``.

Each round costs ``sum_{k=1..chunk} (2**k + 1)`` gates and two layers, giving
depth ``2j`` and ``O(j * 2**(l/j))`` gates in total.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arithmetic.bit_extract import build_kth_msb
from repro.circuits.builder import CircuitBuilder
from repro.util.bits import bits

__all__ = [
    "staged_chunk_sizes",
    "build_staged_extraction",
    "count_staged_extraction",
]

Term = Tuple[int, int]


def staged_chunk_sizes(width: int, stages: int) -> List[int]:
    """Split ``width`` bit positions into ``stages`` chunks, largest first.

    The number of chunks actually returned is ``min(stages, width)`` (empty
    chunks are pointless).
    """
    if width < 0:
        raise ValueError(f"width must be nonnegative, got {width}")
    if stages < 1:
        raise ValueError(f"stages must be at least 1, got {stages}")
    stages = min(stages, width) if width > 0 else 0
    if stages == 0:
        return []
    base, extra = divmod(width, stages)
    return [base + (1 if i < extra else 0) for i in range(stages)]


def build_staged_extraction(
    builder: CircuitBuilder,
    terms: Sequence[Term],
    stages: int,
    n_bits: Optional[int] = None,
    tag: str = "staged",
) -> List[Optional[int]]:
    """Emit a depth-``2*stages`` circuit for the bits of ``s = sum w_i x_i``.

    ``terms`` must have positive weights.  Returns bit nodes LSB-first over
    the full width of the sum (``None`` entries never occur here; the list
    may be truncated to ``n_bits`` if requested).
    """
    terms = [(int(n), int(w)) for n, w in terms]
    for _, w in terms:
        if w <= 0:
            raise ValueError(f"staged extraction requires positive weights, got {w}")
    total = sum(w for _, w in terms)
    width = bits(total)
    chunks = staged_chunk_sizes(width, stages)

    bit_nodes: List[Optional[int]] = [None] * width
    known: List[Tuple[int, int]] = []  # (position, node) of already-extracted bits
    remaining_width = width
    for round_index, chunk in enumerate(chunks):
        # Residue s' = s - sum over known bits of 2**position * bit.
        residue_terms = list(terms) + [(node, -(1 << pos)) for pos, node in known]
        for k in range(1, chunk + 1):
            position = remaining_width - k  # 0-indexed bit position
            node = build_kth_msb(
                builder,
                residue_terms,
                remaining_width,
                k,
                tag=f"{tag}/round{round_index}/bit{position}",
            )
            bit_nodes[position] = node
        for k in range(1, chunk + 1):
            position = remaining_width - k
            known.append((position, bit_nodes[position]))
        remaining_width -= chunk

    if n_bits is not None:
        return bit_nodes[:n_bits]
    return bit_nodes


def count_staged_extraction(
    weights: Sequence[int],
    stages: int,
    n_bits: Optional[int] = None,
) -> int:
    """Exact gate count of :func:`build_staged_extraction`.

    Note that unlike the depth-2 path the staged builder always materializes
    every bit of the sum, so ``n_bits`` does not reduce the count (it only
    truncates the returned list); the count therefore ignores it.
    """
    weights = [int(w) for w in weights if w != 0]
    total = sum(weights)
    width = bits(total)
    chunks = staged_chunk_sizes(width, stages)
    gates = 0
    for chunk in chunks:
        for k in range(1, chunk + 1):
            gates += (1 << k) + 1
    return gates
