"""Lemma 3.2: depth-2 circuits for integer-weighted sums.

``build_unsigned_sum`` computes the binary expansion of a positively
weighted sum of representations, and ``build_signed_sum`` wraps it for
signed operands following the paper's ``x = x+ - x-`` convention: the
positive and the negative half of the sum are each a nonnegative weighted
sum and are extracted by two independent depth-2 circuits built in parallel
(no extra depth).

The depth-2 path is the paper's Lemma 3.2; passing ``stages > 1`` switches
to the staged extraction of :mod:`repro.arithmetic.staged_sum` (depth
``2 * stages``), which trades depth for gates and underlies Theorem 4.1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arithmetic.bit_extract import (
    build_full_extraction,
    count_full_extraction,
)
from repro.arithmetic.signed import (
    BinaryNumber,
    Rep,
    SignedBinaryNumber,
    SignedValue,
    SignedValueBank,
)
from repro.arithmetic.staged_sum import (
    build_staged_extraction,
    count_staged_extraction,
)
from repro.circuits.builder import CircuitBuilder

__all__ = [
    "flatten_terms",
    "split_signed_terms",
    "build_unsigned_sum",
    "build_signed_sum",
    "build_signed_sums",
    "build_signed_sum_banks",
    "build_signed_sums_cellwise",
    "count_unsigned_sum",
    "count_signed_sum",
]


def flatten_terms(items: Sequence[Tuple[Rep, int]]) -> List[Tuple[int, int]]:
    """Flatten ``sum_i weight_i * rep_i`` into (node, positive weight) terms.

    All ``weight_i`` must be positive; representation weights are positive by
    construction, so the result is a positively weighted sum of bits.
    """
    flat: List[Tuple[int, int]] = []
    for rep, weight in items:
        if weight <= 0:
            raise ValueError(f"flatten_terms requires positive weights, got {weight}")
        for node, w in rep.terms:
            flat.append((node, w * weight))
    return flat


def split_signed_terms(
    items: Sequence[Tuple[SignedValue, int]],
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """Split ``sum_i w_i x_i`` over signed values into the s+ and s- halves.

    Follows Section 3 of the paper exactly: with ``x_i = x_i^+ - x_i^-`` and
    ``W+ = {i : w_i > 0}``, ``W- = {i : w_i < 0}``,

        s+ = sum_{W+} w_i x_i^+ + sum_{W-} (-w_i) x_i^-
        s- = sum_{W+} w_i x_i^- + sum_{W-} (-w_i) x_i^+

    so that ``s = s+ - s-`` with both halves nonnegative.
    """
    positive: List[Tuple[Rep, int]] = []
    negative: List[Tuple[Rep, int]] = []
    for value, weight in items:
        if weight == 0:
            continue
        if weight > 0:
            positive.append((value.pos, weight))
            negative.append((value.neg, weight))
        else:
            positive.append((value.neg, -weight))
            negative.append((value.pos, -weight))
    return flatten_terms(positive), flatten_terms(negative)


def _bits_to_binary_number(nodes: Sequence[Optional[int]]) -> BinaryNumber:
    positions = tuple(i for i, n in enumerate(nodes) if n is not None)
    bit_nodes = tuple(n for n in nodes if n is not None)
    return BinaryNumber(positions, bit_nodes, len(nodes))


def build_unsigned_sum(
    builder: CircuitBuilder,
    terms: Sequence[Tuple[int, int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> BinaryNumber:
    """Binary expansion of a positively weighted sum of bits.

    ``stages=1`` gives the paper's depth-2 Lemma 3.2 circuit; ``stages=j``
    gives the depth-2j staged circuit (fewer gates for wide sums).
    """
    terms = [(n, w) for n, w in terms if w != 0]
    if not terms:
        return BinaryNumber.zero()
    if stages <= 1:
        nodes = build_full_extraction(builder, terms, n_bits=n_bits, tag=tag)
    else:
        nodes = build_staged_extraction(builder, terms, stages, n_bits=n_bits, tag=tag)
    return _bits_to_binary_number(nodes)


def count_unsigned_sum(
    weights: Sequence[int],
    n_bits: Optional[int] = None,
    stages: int = 1,
) -> int:
    """Exact gate count of :func:`build_unsigned_sum` for given term weights."""
    weights = [w for w in weights if w != 0]
    if not weights:
        return 0
    if stages <= 1:
        return count_full_extraction(weights, n_bits)
    return count_staged_extraction(weights, stages, n_bits)


def build_signed_sum(
    builder: CircuitBuilder,
    items: Sequence[Tuple[SignedValue, int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> SignedBinaryNumber:
    """Signed weighted sum ``sum_i w_i x_i`` with binary output parts.

    The two halves are independent and therefore sit in the same two (or
    ``2 * stages``) layers of the circuit; the construction adds no depth for
    sign handling, exactly as argued in Section 3.

    On a vectorizing builder the gadget is emitted via template stamping
    (:func:`build_signed_sums` with a single instance); otherwise the classic
    per-gate path runs.
    """
    return build_signed_sums(builder, [items], n_bits=n_bits, stages=stages, tag=tag)[0]


def build_signed_sums(
    builder: CircuitBuilder,
    items_list: Sequence[Sequence[Tuple[SignedValue, int]]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> List[SignedBinaryNumber]:
    """Emit many signed weighted sums, template-stamping identical shapes.

    The gate stream of one sum depends only on the *weights* of its
    flattened halves (the extraction plans are pure functions of them), not
    on which nodes carry the bits — so consecutive instances with identical
    weight signatures are stamped from one recorded template in a single
    bulk emission.  Instances are emitted strictly in list order, so the
    resulting circuit is wire-for-wire identical to calling
    :func:`build_signed_sum` in a loop.
    """
    split = [split_signed_terms(items) for items in items_list]
    stamper = getattr(builder, "stamper", None)
    if stamper is None:
        return [
            _build_signed_sum_direct(builder, pos, neg, n_bits, stages, tag)
            for pos, neg in split
        ]
    results: List[SignedBinaryNumber] = []
    start = 0
    while start < len(split):
        pos_w = tuple(w for _, w in split[start][0])
        neg_w = tuple(w for _, w in split[start][1])
        end = start + 1
        while (
            end < len(split)
            and tuple(w for _, w in split[end][0]) == pos_w
            and tuple(w for _, w in split[end][1]) == neg_w
        ):
            end += 1
        group = split[start:end]
        key = ("signed_sum", pos_w, neg_w, n_bits, stages, tag)
        n_params = len(pos_w) + len(neg_w)
        params_list = [
            [n for n, _ in pos] + [n for n, _ in neg] for pos, neg in group
        ]

        emit_template = _signed_sum_template_emitter(pos_w, neg_w, n_bits, stages, tag)

        def emit_legacy(i, group=group):
            pos, neg = group[i]
            return _build_signed_sum_direct(builder, pos, neg, n_bits, stages, tag)

        results.extend(
            stamper.stamp_all(key, n_params, params_list, emit_template, emit_legacy)
        )
        start = end
    return results


def _build_signed_sum_direct(
    builder,
    pos_terms: Sequence[Tuple[int, int]],
    neg_terms: Sequence[Tuple[int, int]],
    n_bits: Optional[int],
    stages: int,
    tag: str,
) -> SignedBinaryNumber:
    """The classic emission of one signed sum from its split halves."""
    pos = build_unsigned_sum(builder, pos_terms, n_bits=n_bits, stages=stages, tag=f"{tag}/pos")
    neg = build_unsigned_sum(builder, neg_terms, n_bits=n_bits, stages=stages, tag=f"{tag}/neg")
    return SignedBinaryNumber(pos, neg)


def _signed_sum_template_emitter(pos_w, neg_w, n_bits, stages, tag):
    """Template recorder for a signed sum with the given weight signature.

    Shared by the scalar grouping path and the banked path, so both record
    byte-identical templates under the same key.
    """

    def emit_template(recorder, pos_w=pos_w, neg_w=neg_w):
        pos_terms = list(zip(range(len(pos_w)), pos_w))
        neg_terms = list(zip(range(len(pos_w), len(pos_w) + len(neg_w)), neg_w))
        return _build_signed_sum_direct(
            recorder, pos_terms, neg_terms, n_bits, stages, tag
        )

    return emit_template


def _stamp_signed_sums(
    builder,
    pos_nodes: np.ndarray,
    neg_nodes: np.ndarray,
    pos_w: Tuple[int, ...],
    neg_w: Tuple[int, ...],
    n_bits: Optional[int],
    stages: int,
    tag: str,
) -> SignedValueBank:
    """Banked core: emit ``k`` same-signature sums from node matrices.

    ``pos_nodes``/``neg_nodes`` hold the flattened half terms per instance
    (columns aligned with ``pos_w``/``neg_w``).  The emitted gate stream is
    wire-for-wire identical to :func:`build_signed_sums` on the materialized
    items: clean runs stamp from the same template key, duplicate-node rows
    drop to the legacy emitter in place, and non-templatable signatures emit
    every instance directly.
    """
    k = pos_nodes.shape[0]
    if k == 0:
        raise ValueError("cannot emit an empty sum batch")
    key = ("signed_sum", pos_w, neg_w, n_bits, stages, tag)
    n_params = len(pos_w) + len(neg_w)
    params = np.concatenate([pos_nodes, neg_nodes], axis=1)
    if not params.flags.c_contiguous:
        params = np.ascontiguousarray(params)
    emit_template = _signed_sum_template_emitter(pos_w, neg_w, n_bits, stages, tag)
    n_pos = len(pos_w)

    def emit_legacy(i):
        row = params[i].tolist()
        return _build_signed_sum_direct(
            builder,
            list(zip(row[:n_pos], pos_w)),
            list(zip(row[n_pos:], neg_w)),
            n_bits,
            stages,
            tag,
        )

    template, mapped, overrides = builder.stamper.stamp_all_mapped(
        key, n_params, params, emit_template, emit_legacy
    )
    if template is None:
        # Not templated (unrelocatable or recording deferred): `mapped` holds
        # the directly emitted scalar results, already in stream order.
        return SignedValueBank.from_scalars(mapped)
    bank = SignedValueBank.from_template(template, mapped)
    if overrides:
        # A duplicate-parameter row merges interval-gate sources, but the
        # extraction plan (hence the bit layout) depends only on the weight
        # signature — identical — so the legacy row slots into the bank.
        for i, number in overrides.items():
            bank.pos.nodes[i] = number.pos.bit_nodes
            bank.neg.nodes[i] = number.neg.bit_nodes
    return bank


def build_signed_sum_banks(
    builder,
    terms: Sequence[Tuple[SignedValueBank, Optional[np.ndarray], int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
    count: Optional[int] = None,
) -> SignedValueBank:
    """Banked signed sums: every instance sums the same term signature.

    ``terms`` is a sequence of ``(bank, rows, coeff)``: instance ``i`` of the
    result sums ``coeff * bank[rows[i]]`` over the terms (``rows=None``
    selects every bank row in order).  A two-dimensional ``rows`` of shape
    ``(k, t)`` *spreads* into ``t`` consecutive terms per instance — the
    array form of listing ``t`` separate single-row terms (e.g. the ``n``
    inner products feeding one naive-matmul entry) without a Python loop.
    This mirrors ``items_list[i] = [(bank.signed_value(rows[i]), coeff),
    ...]`` fed to :func:`build_signed_sums` — same circuit, no per-term
    objects.  ``count`` supplies the batch size when every term cancelled (a
    functional whose coefficients all dropped to zero still yields
    zero-value results).
    """
    live = [(bank, rows, coeff) for bank, rows, coeff in terms if coeff != 0]
    k = None
    for bank, rows, _ in live:
        if rows is None:
            size = bank.k
        elif rows.ndim == 2:
            size = rows.shape[0]
        else:
            size = len(rows)
        if k is None:
            k = size
        elif k != size:
            raise ValueError("term row selections disagree on the batch size")
    if k is None:
        k = count
    if k is None or k == 0:
        raise ValueError("cannot emit an empty sum batch")
    if any(bank.overrides for bank, _, _ in live):
        # Override rows have per-row layouts: materialize and take the
        # scalar grouping path (identical stream, just slower).
        items_list = [
            [
                (bank.signed_value(int(r)), coeff)
                for bank, rows, coeff in live
                for r in (
                    [i]
                    if rows is None
                    else (rows[i] if rows.ndim == 2 else [rows[i]])
                )
            ]
            for i in range(k)
        ]
        return SignedValueBank.from_scalars(
            build_signed_sums(builder, items_list, n_bits=n_bits, stages=stages, tag=tag)
        )

    pos_w: List[int] = []
    neg_w: List[int] = []
    pos_parts: List[Tuple[object, Optional[np.ndarray]]] = []
    neg_parts: List[Tuple[object, Optional[np.ndarray]]] = []
    for bank, rows, coeff in live:
        if coeff > 0:
            p_part, n_part, factor = bank.pos, bank.neg, coeff
        else:
            p_part, n_part, factor = bank.neg, bank.pos, -coeff
        pos_parts.append((p_part, rows))
        neg_parts.append((n_part, rows))
        spread = rows.shape[1] if rows is not None and rows.ndim == 2 else 1
        if factor == 1:
            pos_w.extend(p_part.weights * spread)
            neg_w.extend(n_part.weights * spread)
        else:
            pos_w.extend(tuple(w * factor for w in p_part.weights) * spread)
            neg_w.extend(tuple(w * factor for w in n_part.weights) * spread)
    pos_nodes = _gather_half(pos_parts, k)
    neg_nodes = _gather_half(neg_parts, k)
    return _stamp_signed_sums(
        builder, pos_nodes, neg_nodes, tuple(pos_w), tuple(neg_w), n_bits, stages, tag
    )


def _gather_half(parts, k: int) -> np.ndarray:
    """Assemble one half's ``(k, total_terms)`` node matrix, in term order.

    Consecutive terms drawing from the same underlying node matrix are
    gathered with a single fancy index (``nodes[R]`` with one column per
    term), which is what collapses e.g. the n inner-product terms of a naive
    matmul entry into one numpy call.
    """
    blocks: List[np.ndarray] = []
    i = 0
    n_parts = len(parts)
    while i < n_parts:
        part, rows = parts[i]
        if rows is not None and rows.ndim == 2:
            # Spread term: each row column is one term, already rectangular.
            block = part.nodes[rows].reshape(k, -1)
            i += 1
        else:
            j = i + 1
            while j < n_parts and parts[j][0].nodes is part.nodes and (
                parts[j][1] is None or parts[j][1].ndim == 1
            ):
                j += 1
            if j - i == 1:
                block = part.nodes if rows is None else part.nodes[rows]
            else:
                stacked = np.stack(
                    [
                        np.arange(p.nodes.shape[0], dtype=np.int64)
                        if r is None
                        else r
                        for p, r in parts[i:j]
                    ],
                    axis=1,
                )
                block = part.nodes[stacked].reshape(k, -1)
            i = j
        if block.shape[1]:
            blocks.append(block)
    if not blocks:
        return np.empty((k, 0), dtype=np.int64)
    if len(blocks) == 1:
        return blocks[0]
    return np.concatenate(blocks, axis=1)


def build_signed_sums_cellwise(
    builder,
    items_list: Sequence[Sequence[Tuple[SignedValueBank, int]]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> List[SignedValueBank]:
    """Banked sums over per-instance term lists of single-row bank views.

    The bottom-up recombination assembles parent matrices from blocks with
    *different* layouts, so its cells cannot live in one uniform bank; here
    each instance lists its own ``(1-row bank, coeff)`` terms.  Consecutive
    instances with the same layout signature are stacked and emitted through
    the banked core; the result is one single-row bank view per instance.
    """
    k_total = len(items_list)
    results: List[Optional[SignedValueBank]] = [None] * k_total

    def signature(items):
        # Layout identity (shared weights tuples) is enough: content-equal
        # layouts with different identities merely split a run, and split
        # runs stamp the same gate stream.  Override rows are kept out of
        # clean runs so the whole run can take one branch.
        return tuple(
            (id(bank.pos.weights), id(bank.neg.weights), coeff, bank.overrides is None)
            for bank, coeff in items
        )

    start = 0
    while start < k_total:
        sig = signature(items_list[start])
        end = start + 1
        while end < k_total and signature(items_list[end]) == sig:
            end += 1
        run = items_list[start:end]
        k = end - start
        first = run[0]
        if any(bank.overrides for bank, _ in first):
            scalars = build_signed_sums(
                builder,
                [
                    [(bank.signed_value(0), coeff) for bank, coeff in items]
                    for items in run
                ],
                n_bits=n_bits,
                stages=stages,
                tag=tag,
            )
            bank = SignedValueBank.from_scalars(scalars)
        else:
            pos_w: List[int] = []
            neg_w: List[int] = []
            pos_blocks: List[np.ndarray] = []
            neg_blocks: List[np.ndarray] = []
            for t, (_, coeff) in enumerate(first):
                if coeff == 0:
                    continue
                factor = coeff if coeff > 0 else -coeff
                pos_rows = [
                    (items[t][0].pos if coeff > 0 else items[t][0].neg).nodes
                    for items in run
                ]
                neg_rows = [
                    (items[t][0].neg if coeff > 0 else items[t][0].pos).nodes
                    for items in run
                ]
                if pos_rows[0].shape[1]:
                    pos_blocks.append(np.concatenate(pos_rows, axis=0))
                if neg_rows[0].shape[1]:
                    neg_blocks.append(np.concatenate(neg_rows, axis=0))
                p_part = first[t][0].pos if coeff > 0 else first[t][0].neg
                n_part = first[t][0].neg if coeff > 0 else first[t][0].pos
                pos_w.extend(w * factor for w in p_part.weights)
                neg_w.extend(w * factor for w in n_part.weights)
            pos_nodes = (
                np.concatenate(pos_blocks, axis=1)
                if pos_blocks
                else np.empty((k, 0), dtype=np.int64)
            )
            neg_nodes = (
                np.concatenate(neg_blocks, axis=1)
                if neg_blocks
                else np.empty((k, 0), dtype=np.int64)
            )
            bank = _stamp_signed_sums(
                builder,
                pos_nodes,
                neg_nodes,
                tuple(pos_w),
                tuple(neg_w),
                n_bits,
                stages,
                tag,
            )
        for j in range(k):
            results[start + j] = bank.row_any(j)
        start = end
    return results


def count_signed_sum(
    items: Sequence[Tuple[SignedValue, int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
) -> int:
    """Exact gate count of :func:`build_signed_sum` (dry run, no gates built)."""
    pos_terms, neg_terms = split_signed_terms(items)
    return count_unsigned_sum(
        [w for _, w in pos_terms], n_bits, stages
    ) + count_unsigned_sum([w for _, w in neg_terms], n_bits, stages)
