"""Lemma 3.2: depth-2 circuits for integer-weighted sums.

``build_unsigned_sum`` computes the binary expansion of a positively
weighted sum of representations, and ``build_signed_sum`` wraps it for
signed operands following the paper's ``x = x+ - x-`` convention: the
positive and the negative half of the sum are each a nonnegative weighted
sum and are extracted by two independent depth-2 circuits built in parallel
(no extra depth).

The depth-2 path is the paper's Lemma 3.2; passing ``stages > 1`` switches
to the staged extraction of :mod:`repro.arithmetic.staged_sum` (depth
``2 * stages``), which trades depth for gates and underlies Theorem 4.1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arithmetic.bit_extract import (
    build_full_extraction,
    count_full_extraction,
)
from repro.arithmetic.signed import (
    BinaryNumber,
    Rep,
    SignedBinaryNumber,
    SignedValue,
)
from repro.arithmetic.staged_sum import (
    build_staged_extraction,
    count_staged_extraction,
)
from repro.circuits.builder import CircuitBuilder

__all__ = [
    "flatten_terms",
    "split_signed_terms",
    "build_unsigned_sum",
    "build_signed_sum",
    "build_signed_sums",
    "count_unsigned_sum",
    "count_signed_sum",
]


def flatten_terms(items: Sequence[Tuple[Rep, int]]) -> List[Tuple[int, int]]:
    """Flatten ``sum_i weight_i * rep_i`` into (node, positive weight) terms.

    All ``weight_i`` must be positive; representation weights are positive by
    construction, so the result is a positively weighted sum of bits.
    """
    flat: List[Tuple[int, int]] = []
    for rep, weight in items:
        if weight <= 0:
            raise ValueError(f"flatten_terms requires positive weights, got {weight}")
        for node, w in rep.terms:
            flat.append((node, w * weight))
    return flat


def split_signed_terms(
    items: Sequence[Tuple[SignedValue, int]],
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """Split ``sum_i w_i x_i`` over signed values into the s+ and s- halves.

    Follows Section 3 of the paper exactly: with ``x_i = x_i^+ - x_i^-`` and
    ``W+ = {i : w_i > 0}``, ``W- = {i : w_i < 0}``,

        s+ = sum_{W+} w_i x_i^+ + sum_{W-} (-w_i) x_i^-
        s- = sum_{W+} w_i x_i^- + sum_{W-} (-w_i) x_i^+

    so that ``s = s+ - s-`` with both halves nonnegative.
    """
    positive: List[Tuple[Rep, int]] = []
    negative: List[Tuple[Rep, int]] = []
    for value, weight in items:
        if weight == 0:
            continue
        if weight > 0:
            positive.append((value.pos, weight))
            negative.append((value.neg, weight))
        else:
            positive.append((value.neg, -weight))
            negative.append((value.pos, -weight))
    return flatten_terms(positive), flatten_terms(negative)


def _bits_to_binary_number(nodes: Sequence[Optional[int]]) -> BinaryNumber:
    positions = tuple(i for i, n in enumerate(nodes) if n is not None)
    bit_nodes = tuple(n for n in nodes if n is not None)
    return BinaryNumber(positions, bit_nodes, len(nodes))


def build_unsigned_sum(
    builder: CircuitBuilder,
    terms: Sequence[Tuple[int, int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> BinaryNumber:
    """Binary expansion of a positively weighted sum of bits.

    ``stages=1`` gives the paper's depth-2 Lemma 3.2 circuit; ``stages=j``
    gives the depth-2j staged circuit (fewer gates for wide sums).
    """
    terms = [(n, w) for n, w in terms if w != 0]
    if not terms:
        return BinaryNumber.zero()
    if stages <= 1:
        nodes = build_full_extraction(builder, terms, n_bits=n_bits, tag=tag)
    else:
        nodes = build_staged_extraction(builder, terms, stages, n_bits=n_bits, tag=tag)
    return _bits_to_binary_number(nodes)


def count_unsigned_sum(
    weights: Sequence[int],
    n_bits: Optional[int] = None,
    stages: int = 1,
) -> int:
    """Exact gate count of :func:`build_unsigned_sum` for given term weights."""
    weights = [w for w in weights if w != 0]
    if not weights:
        return 0
    if stages <= 1:
        return count_full_extraction(weights, n_bits)
    return count_staged_extraction(weights, stages, n_bits)


def build_signed_sum(
    builder: CircuitBuilder,
    items: Sequence[Tuple[SignedValue, int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> SignedBinaryNumber:
    """Signed weighted sum ``sum_i w_i x_i`` with binary output parts.

    The two halves are independent and therefore sit in the same two (or
    ``2 * stages``) layers of the circuit; the construction adds no depth for
    sign handling, exactly as argued in Section 3.

    On a vectorizing builder the gadget is emitted via template stamping
    (:func:`build_signed_sums` with a single instance); otherwise the classic
    per-gate path runs.
    """
    return build_signed_sums(builder, [items], n_bits=n_bits, stages=stages, tag=tag)[0]


def build_signed_sums(
    builder: CircuitBuilder,
    items_list: Sequence[Sequence[Tuple[SignedValue, int]]],
    n_bits: Optional[int] = None,
    stages: int = 1,
    tag: str = "sum",
) -> List[SignedBinaryNumber]:
    """Emit many signed weighted sums, template-stamping identical shapes.

    The gate stream of one sum depends only on the *weights* of its
    flattened halves (the extraction plans are pure functions of them), not
    on which nodes carry the bits — so consecutive instances with identical
    weight signatures are stamped from one recorded template in a single
    bulk emission.  Instances are emitted strictly in list order, so the
    resulting circuit is wire-for-wire identical to calling
    :func:`build_signed_sum` in a loop.
    """
    split = [split_signed_terms(items) for items in items_list]
    stamper = getattr(builder, "stamper", None)
    if stamper is None:
        return [
            _build_signed_sum_direct(builder, pos, neg, n_bits, stages, tag)
            for pos, neg in split
        ]
    results: List[SignedBinaryNumber] = []
    start = 0
    while start < len(split):
        pos_w = tuple(w for _, w in split[start][0])
        neg_w = tuple(w for _, w in split[start][1])
        end = start + 1
        while (
            end < len(split)
            and tuple(w for _, w in split[end][0]) == pos_w
            and tuple(w for _, w in split[end][1]) == neg_w
        ):
            end += 1
        group = split[start:end]
        key = ("signed_sum", pos_w, neg_w, n_bits, stages, tag)
        n_params = len(pos_w) + len(neg_w)
        params_list = [
            [n for n, _ in pos] + [n for n, _ in neg] for pos, neg in group
        ]

        def emit_template(recorder, pos_w=pos_w, neg_w=neg_w):
            pos_terms = list(zip(range(len(pos_w)), pos_w))
            neg_terms = list(
                zip(range(len(pos_w), len(pos_w) + len(neg_w)), neg_w)
            )
            return _build_signed_sum_direct(
                recorder, pos_terms, neg_terms, n_bits, stages, tag
            )

        def emit_legacy(i, group=group):
            pos, neg = group[i]
            return _build_signed_sum_direct(builder, pos, neg, n_bits, stages, tag)

        results.extend(
            stamper.stamp_all(key, n_params, params_list, emit_template, emit_legacy)
        )
        start = end
    return results


def _build_signed_sum_direct(
    builder,
    pos_terms: Sequence[Tuple[int, int]],
    neg_terms: Sequence[Tuple[int, int]],
    n_bits: Optional[int],
    stages: int,
    tag: str,
) -> SignedBinaryNumber:
    """The classic emission of one signed sum from its split halves."""
    pos = build_unsigned_sum(builder, pos_terms, n_bits=n_bits, stages=stages, tag=f"{tag}/pos")
    neg = build_unsigned_sum(builder, neg_terms, n_bits=n_bits, stages=stages, tag=f"{tag}/neg")
    return SignedBinaryNumber(pos, neg)


def count_signed_sum(
    items: Sequence[Tuple[SignedValue, int]],
    n_bits: Optional[int] = None,
    stages: int = 1,
) -> int:
    """Exact gate count of :func:`build_signed_sum` (dry run, no gates built)."""
    pos_terms, neg_terms = split_signed_terms(items)
    return count_unsigned_sum(
        [w for _, w in pos_terms], n_bits, stages
    ) + count_unsigned_sum([w for _, w in neg_terms], n_bits, stages)
