"""Threshold-circuit substrate.

This subpackage is the hardware-model layer of the reproduction: boolean
circuits of McCulloch–Pitts linear threshold gates with unbounded fan-in
(the TC0 model of the paper), together with an exact vectorized simulator,
structural validation, complexity analysis, optimization passes and JSON
serialization.
"""

from repro.circuits.gate import Gate, canonical_parts
from repro.circuits.circuit import ThresholdCircuit, CircuitStats, GateView
from repro.circuits.store import Columns, GateStore
from repro.circuits.builder import CircuitBuilder
from repro.circuits.counting import CountingBuilder
from repro.circuits.template import GadgetStamper, GadgetTemplate, TemplateBuilder
from repro.circuits.simulator import CompiledCircuit, SimulationResult, simulate
from repro.circuits.validate import ValidationReport, validate_circuit
from repro.circuits.analysis import (
    LayerProfile,
    layer_profile,
    fan_in_histogram,
    weight_magnitude_histogram,
    tag_breakdown,
    measure_energy,
)
from repro.circuits.optimize import deduplicate_gates, eliminate_dead_gates
from repro.circuits.serialize import (
    circuit_to_dict,
    circuit_from_dict,
    dump_circuit,
    load_circuit,
)

__all__ = [
    "Gate",
    "canonical_parts",
    "ThresholdCircuit",
    "CircuitStats",
    "GateView",
    "Columns",
    "GateStore",
    "CircuitBuilder",
    "CountingBuilder",
    "GadgetStamper",
    "GadgetTemplate",
    "TemplateBuilder",
    "CompiledCircuit",
    "SimulationResult",
    "simulate",
    "ValidationReport",
    "validate_circuit",
    "LayerProfile",
    "layer_profile",
    "fan_in_histogram",
    "weight_magnitude_histogram",
    "tag_breakdown",
    "measure_energy",
    "deduplicate_gates",
    "eliminate_dead_gates",
    "circuit_to_dict",
    "circuit_from_dict",
    "dump_circuit",
    "load_circuit",
]
