"""Complexity analysis of constructed circuits.

Beyond the headline measures (size, depth, edges, fan-in) exposed by
:class:`~repro.circuits.circuit.ThresholdCircuit`, this module produces the
finer-grained breakdowns used by the benchmark harness:

* gates per depth layer,
* fan-in and weight-magnitude histograms,
* gate counts grouped by construction tag (which lemma created each gate),
* the firing-energy measure of the paper's Section 6 open problem.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit

__all__ = [
    "LayerProfile",
    "layer_profile",
    "fan_in_histogram",
    "weight_magnitude_histogram",
    "tag_breakdown",
    "measure_energy",
]


@dataclass(frozen=True)
class LayerProfile:
    """Per-layer gate and wire counts."""

    layers: Dict[int, int]
    edges_per_layer: Dict[int, int]

    @property
    def depth(self) -> int:
        """Number of layers."""
        return max(self.layers, default=0)

    def as_rows(self) -> List[Dict[str, int]]:
        """Row-per-layer view for tabular reporting."""
        return [
            {
                "layer": layer,
                "gates": self.layers[layer],
                "edges": self.edges_per_layer.get(layer, 0),
            }
            for layer in sorted(self.layers)
        ]


def layer_profile(circuit: ThresholdCircuit) -> LayerProfile:
    """Count gates and incoming wires per depth layer."""
    gate_counts: Dict[int, int] = Counter()
    edge_counts: Dict[int, int] = Counter()
    for offset, gate in enumerate(circuit.gates):
        depth = circuit.node_depth(circuit.n_inputs + offset)
        gate_counts[depth] += 1
        edge_counts[depth] += gate.fan_in
    return LayerProfile(dict(gate_counts), dict(edge_counts))


def fan_in_histogram(circuit: ThresholdCircuit) -> Dict[int, int]:
    """Histogram of gate fan-ins."""
    return dict(Counter(gate.fan_in for gate in circuit.gates))


def weight_magnitude_histogram(circuit: ThresholdCircuit) -> Dict[int, int]:
    """Histogram of ``bits(max |weight|)`` per gate (0 for weightless gates)."""
    histogram: Dict[int, int] = Counter()
    for gate in circuit.gates:
        histogram[int(gate.max_abs_weight).bit_length()] += 1
    return dict(histogram)


def tag_breakdown(circuit: ThresholdCircuit) -> Dict[str, int]:
    """Gate counts grouped by the tag recorded at construction time."""
    return dict(Counter(gate.tag or "(untagged)" for gate in circuit.gates))


def measure_energy(
    circuit: ThresholdCircuit,
    inputs: np.ndarray,
    compiled: Optional[CompiledCircuit] = None,
) -> np.ndarray:
    """Number of firing gates for each input assignment in ``inputs``.

    This is the energy model suggested in the paper's open-problems section:
    a gate is charged one unit if and only if it fires.
    """
    compiled = compiled if compiled is not None else CompiledCircuit(circuit)
    result = compiled.evaluate(inputs)
    return np.atleast_1d(result.energy)
