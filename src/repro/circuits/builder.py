"""Incremental construction of threshold circuits.

:class:`CircuitBuilder` is the single entry point the arithmetic and
matrix-multiplication constructions use to emit gates.  It adds a few
conveniences on top of :class:`~repro.circuits.circuit.ThresholdCircuit`:

* named input allocation (blocks of wires for matrices, thresholds, ...),
* a bulk emission API (:meth:`CircuitBuilder.add_gates`) accepting CSR-style
  numpy arrays, and a :class:`~repro.circuits.template.GadgetStamper` that
  lets gadget constructors stamp many translated copies of a recorded
  template in one call — the vectorized construction path,
* optional *structural sharing*: when ``share_gates=True`` a gate that is
  structurally identical to an existing one (same sources, weights and
  threshold) is reused instead of duplicated.  The paper's constructions are
  described without sharing; sharing is exposed so its effect can be measured
  as an ablation.  Sharing keys are hashed byte rows of the columnar arrays,
  not per-gate tuples,
* per-tag gate counters, used to attribute gates to the lemma that created
  them (Lemma 3.1 interval gates, Lemma 3.3 product gates, output gates, ...).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import canonical_parts
from repro.circuits.store import accumulate_tag_counts

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Builds a :class:`ThresholdCircuit` incrementally."""

    def __init__(
        self,
        name: str = "",
        share_gates: bool = False,
        vectorize: bool = True,
        banked: bool = True,
    ) -> None:
        self._circuit = ThresholdCircuit(0, name=name)
        self._input_blocks: Dict[str, List[int]] = {}
        self._share_gates = bool(share_gates)
        self._gate_cache: Dict[tuple, int] = {}
        self._tag_counts: Dict[str, int] = {}
        self._constant_true: Optional[int] = None
        self._constant_false: Optional[int] = None
        self._inputs_frozen = False
        # The gadget stamper drives the template-stamping fast path.  It is
        # disabled under structural sharing (stamped copies would bypass the
        # share cache and change the built circuit) and under vectorize=False
        # (the explicit legacy per-gate path, kept for benchmarking).
        self.stamper = None
        if vectorize and not share_gates:
            from repro.circuits.template import GadgetStamper

            self.stamper = GadgetStamper(self)
        # Value banks ride on top of stamping: the construction stages pass
        # whole Rep/SignedValue batches as arrays instead of scalar objects.
        # ``banked=False`` keeps the stamped-but-scalar interface (the PR-2
        # intermediate, exposed as a benchmarking ablation).
        self.use_banks = bool(banked) and self.stamper is not None

    # --------------------------------------------------------------- protocol
    # Small duck-typed surface shared with CountingBuilder so the template
    # stamper and the bulk gadget emitters never reach into ``.circuit``.
    def intern_tag(self, tag: str) -> int:
        """Intern a tag string, returning its int32 code."""
        return self._circuit.store.intern_tag(tag)

    def tag_of_code(self, code: int) -> str:
        """Inverse of :meth:`intern_tag`."""
        return self._circuit.store.tag_of_code(code)

    def node_depths_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized node-id -> depth lookup (inputs are depth 0)."""
        return self._circuit.node_depths_of(nodes)

    def note_template_block(self, block) -> None:
        """Record one stamped run on the circuit under construction.

        Called by :meth:`~repro.circuits.template.GadgetTemplate.stamp`
        right after the block's gates land, so the execution engine can
        later compile the template once and tile it across the stamps
        (``ThresholdCircuit.template_blocks``).
        """
        self._circuit.template_blocks.append(block)

    # ----------------------------------------------------------------- inputs
    def allocate_inputs(self, count: int, label: str = "") -> List[int]:
        """Reserve ``count`` fresh input wires and return their node ids.

        All inputs must be allocated before the first gate is added so that
        input ids form the contiguous prefix ``0 .. n_inputs - 1``.
        """
        if count < 0:
            raise ValueError(f"cannot allocate a negative number of inputs ({count})")
        if self._inputs_frozen:
            raise RuntimeError("inputs must be allocated before any gate is added")
        start = self._circuit.n_inputs
        self._circuit.n_inputs += count
        ids = list(range(start, start + count))
        if label:
            self._input_blocks.setdefault(label, []).extend(ids)
        return ids

    def input_block(self, label: str) -> List[int]:
        """Return the input wires previously allocated under ``label``."""
        if label not in self._input_blocks:
            raise KeyError(f"no input block named {label!r}")
        return list(self._input_blocks[label])

    @property
    def n_inputs(self) -> int:
        """Number of input wires allocated so far."""
        return self._circuit.n_inputs

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (inputs plus gates) emitted so far."""
        return self._circuit.n_nodes

    # ------------------------------------------------------------------ gates
    def add_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        """Add a threshold gate ``sum w_i y_i >= t`` and return its node id."""
        self._inputs_frozen = True
        if self._share_gates:
            # Sharing path: canonicalize once and key the cache on the
            # hashed byte row (tuple fallback for weights beyond int64).
            sources, weights = canonical_parts(sources, weights)
            try:
                key = (
                    np.asarray(sources, dtype=np.int64).tobytes(),
                    np.asarray(weights, dtype=np.int64).tobytes(),
                    int(threshold),
                )
            except OverflowError:
                key = (sources, weights, int(threshold))
            cached = self._gate_cache.get(key)
            if cached is not None:
                return cached
            node = self._circuit.add_gate_parts(
                sources, weights, threshold, tag, assume_canonical=True
            )
            self._gate_cache[key] = node
        else:
            # Non-sharing path: no cache-key construction, no Gate object —
            # the circuit canonicalizes and appends straight into the
            # columnar store.
            node = self._circuit.add_gate_parts(sources, weights, threshold, tag)
        if tag:
            self._tag_counts[tag] = self._tag_counts.get(tag, 0) + 1
        return node

    def add_gates(
        self,
        sources: np.ndarray,
        offsets: np.ndarray,
        weights: np.ndarray,
        thresholds: np.ndarray,
        tag: Union[str, Sequence[str]] = "",
        canonicalize: bool = True,
        validate: bool = True,
        depths: Optional[np.ndarray] = None,
        tag_counts: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Bulk-add gates from CSR-style arrays; returns their node ids.

        ``sources`` may reference earlier gates of the same batch by their
        prospective ids (``n_nodes + row``), so whole gadgets are emitted in
        one call.  ``tag`` is one tag for the batch or a per-gate sequence.
        ``tag_counts`` optionally supplies the per-tag increments (used by
        template stamping, which knows them without counting the batch).

        Under ``share_gates=True`` the batch degrades to a per-row loop so
        every row consults the sharing cache; bulk callers keep working, just
        without the vectorized fast path.
        """
        self._inputs_frozen = True
        if self._share_gates:
            return self._add_gates_shared(sources, offsets, weights, thresholds, tag)
        node_ids = self._circuit.add_gates(
            sources,
            offsets,
            weights,
            thresholds,
            tags=tag,
            canonicalize=canonicalize,
            validate=validate,
            depths=depths,
        )
        accumulate_tag_counts(
            self._tag_counts,
            tag,
            len(node_ids),
            tag_counts,
            self._circuit.store.tag_of_code,  # pre-interned codes
        )
        return node_ids

    def _add_gates_shared(self, sources, offsets, weights, thresholds, tag) -> np.ndarray:
        """Per-row fallback for bulk adds under structural sharing."""
        offsets = np.asarray(offsets, dtype=np.int64)
        sources = np.asarray(sources, dtype=np.int64).tolist()
        weights = list(weights.tolist() if isinstance(weights, np.ndarray) else weights)
        thresholds = list(
            thresholds.tolist() if isinstance(thresholds, np.ndarray) else thresholds
        )
        n_new = len(offsets) - 1
        if isinstance(tag, str):
            tags = [tag] * n_new
        elif isinstance(tag, np.ndarray) and tag.dtype == np.int32:
            # Pre-interned codes: translate back so the per-gate path (and
            # its tag bookkeeping) sees strings.
            decode = self._circuit.store.tag_of_code
            tags = [decode(int(code)) for code in tag]
        else:
            tags = list(tag)
        base = self._circuit.n_nodes
        # Intra-batch references assume contiguous ids; sharing may collapse
        # rows, so remap prospective ids to the ids actually assigned.
        assigned: List[int] = []
        node_ids = np.empty(n_new, dtype=np.int64)
        for i in range(n_new):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            row_sources = [
                s if s < base else assigned[s - base] for s in sources[lo:hi]
            ]
            node = self.add_gate(row_sources, weights[lo:hi], thresholds[i], tags[i])
            assigned.append(node)
            node_ids[i] = node
        return node_ids

    def constant_true(self) -> int:
        """Node that always outputs 1 (a gate with an empty sum and threshold 0)."""
        if self._constant_true is None:
            self._constant_true = self.add_gate([], [], 0, tag="constant/true")
        return self._constant_true

    def constant_false(self) -> int:
        """Node that always outputs 0 (a gate with an empty sum and threshold 1)."""
        if self._constant_false is None:
            self._constant_false = self.add_gate([], [], 1, tag="constant/false")
        return self._constant_false

    def copy_gate(self, node: int, tag: str = "copy") -> int:
        """Emit a gate computing the identity of an existing node's value."""
        return self.add_gate([node], [1], 1, tag=tag)

    # ---------------------------------------------------------------- outputs
    def set_outputs(self, nodes: Sequence[int], labels: Optional[Sequence[str]] = None) -> None:
        """Declare the circuit outputs."""
        self._circuit.set_outputs(nodes, labels)

    # ----------------------------------------------------------------- result
    @property
    def circuit(self) -> ThresholdCircuit:
        """The circuit under construction (also the final product)."""
        return self._circuit

    def build(self) -> ThresholdCircuit:
        """Finish construction and return the circuit."""
        return self._circuit

    @property
    def size(self) -> int:
        """Number of gates emitted so far."""
        return self._circuit.size

    def tag_counts(self) -> Dict[str, int]:
        """Gate counts grouped by the tag supplied at creation time."""
        return dict(self._tag_counts)
