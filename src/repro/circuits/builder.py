"""Incremental construction of threshold circuits.

:class:`CircuitBuilder` is the single entry point the arithmetic and
matrix-multiplication constructions use to emit gates.  It adds a few
conveniences on top of :class:`~repro.circuits.circuit.ThresholdCircuit`:

* named input allocation (blocks of wires for matrices, thresholds, ...),
* optional *structural sharing*: when ``share_gates=True`` a gate that is
  structurally identical to an existing one (same sources, weights and
  threshold) is reused instead of duplicated.  The paper's constructions are
  described without sharing; sharing is exposed so its effect can be measured
  as an ablation,
* per-tag gate counters, used to attribute gates to the lemma that created
  them (Lemma 3.1 interval gates, Lemma 3.3 product gates, output gates, ...).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import Gate

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Builds a :class:`ThresholdCircuit` incrementally."""

    def __init__(self, name: str = "", share_gates: bool = False) -> None:
        self._circuit = ThresholdCircuit(0, name=name)
        self._input_blocks: Dict[str, List[int]] = {}
        self._share_gates = bool(share_gates)
        self._gate_cache: Dict[tuple, int] = {}
        self._tag_counts: Dict[str, int] = {}
        self._constant_true: Optional[int] = None
        self._constant_false: Optional[int] = None
        self._inputs_frozen = False

    # ----------------------------------------------------------------- inputs
    def allocate_inputs(self, count: int, label: str = "") -> List[int]:
        """Reserve ``count`` fresh input wires and return their node ids.

        All inputs must be allocated before the first gate is added so that
        input ids form the contiguous prefix ``0 .. n_inputs - 1``.
        """
        if count < 0:
            raise ValueError(f"cannot allocate a negative number of inputs ({count})")
        if self._inputs_frozen:
            raise RuntimeError("inputs must be allocated before any gate is added")
        start = self._circuit.n_inputs
        self._circuit.n_inputs += count
        ids = list(range(start, start + count))
        if label:
            self._input_blocks.setdefault(label, []).extend(ids)
        return ids

    def input_block(self, label: str) -> List[int]:
        """Return the input wires previously allocated under ``label``."""
        if label not in self._input_blocks:
            raise KeyError(f"no input block named {label!r}")
        return list(self._input_blocks[label])

    @property
    def n_inputs(self) -> int:
        """Number of input wires allocated so far."""
        return self._circuit.n_inputs

    # ------------------------------------------------------------------ gates
    def add_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        """Add a threshold gate ``sum w_i y_i >= t`` and return its node id."""
        self._inputs_frozen = True
        gate = Gate(sources, weights, threshold, tag)
        if self._share_gates:
            key = gate.structural_key()
            cached = self._gate_cache.get(key)
            if cached is not None:
                return cached
            node = self._circuit.add_gate(gate)
            self._gate_cache[key] = node
        else:
            node = self._circuit.add_gate(gate)
        if tag:
            self._tag_counts[tag] = self._tag_counts.get(tag, 0) + 1
        return node

    def constant_true(self) -> int:
        """Node that always outputs 1 (a gate with an empty sum and threshold 0)."""
        if self._constant_true is None:
            self._constant_true = self.add_gate([], [], 0, tag="constant/true")
        return self._constant_true

    def constant_false(self) -> int:
        """Node that always outputs 0 (a gate with an empty sum and threshold 1)."""
        if self._constant_false is None:
            self._constant_false = self.add_gate([], [], 1, tag="constant/false")
        return self._constant_false

    def copy_gate(self, node: int, tag: str = "copy") -> int:
        """Emit a gate computing the identity of an existing node's value."""
        return self.add_gate([node], [1], 1, tag=tag)

    # ---------------------------------------------------------------- outputs
    def set_outputs(self, nodes: Sequence[int], labels: Optional[Sequence[str]] = None) -> None:
        """Declare the circuit outputs."""
        self._circuit.set_outputs(nodes, labels)

    # ----------------------------------------------------------------- result
    @property
    def circuit(self) -> ThresholdCircuit:
        """The circuit under construction (also the final product)."""
        return self._circuit

    def build(self) -> ThresholdCircuit:
        """Finish construction and return the circuit."""
        return self._circuit

    @property
    def size(self) -> int:
        """Number of gates emitted so far."""
        return self._circuit.size

    def tag_counts(self) -> Dict[str, int]:
        """Gate counts grouped by the tag supplied at creation time."""
        return dict(self._tag_counts)
