"""Threshold circuit container.

A :class:`ThresholdCircuit` is a directed acyclic graph of threshold gates
over a fixed set of binary inputs.  Node ids are integers:

* ``0 .. n_inputs - 1`` are the circuit inputs,
* ``n_inputs .. n_inputs + size - 1`` are the gates, in insertion
  order.  A gate may only reference nodes with smaller ids, which makes the
  graph acyclic by construction.

Storage is columnar (:mod:`repro.circuits.store`): the gate list lives in
CSR-style flat arrays (``sources``/``weights`` plus ``offsets``, one
``threshold``/``depth``/``tag`` per gate), so construction, hashing, stats
and layer lowering are array operations instead of per-gate Python loops.
``circuit.gates`` remains available as a lazy sequence of
:class:`~repro.circuits.gate.Gate` views for consumers that want the object
form (the optimizer, the validator, reference evaluation).

Gates are appended either one at a time (:meth:`ThresholdCircuit.add_gate`)
or in bulk (:meth:`ThresholdCircuit.add_gates`), which validates, depth-labels
and stores a whole batch with vectorized numpy passes.

The complexity measures studied in the paper (Section 1) — *size* (number of
gates), *depth* (longest input-to-output path), *edges* (number of wires) and
*fan-in* — are exposed as properties/:class:`CircuitStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.gate import Gate, canonical_parts
from repro.circuits.store import (
    Columns,
    GateStore,
    csr_dirty_rows,
    gather_ranges,
    group_by_depth,
    int_column,
    segment_max,
    validate_csr_sources,
)

__all__ = ["ThresholdCircuit", "CircuitStats", "GateView", "resolve_batch_depths"]


def _batch_depths_scan(sources, offsets, src_depth, base) -> np.ndarray:
    """Ordered per-gate depth scan (internal sources precede their row)."""
    n_new = len(offsets) - 1
    src_list = sources.tolist()
    ext_depth = src_depth.tolist()
    off_list = offsets.tolist()
    depths = [0] * n_new
    for i in range(n_new):
        best = 0
        for w in range(off_list[i], off_list[i + 1]):
            s = src_list[w]
            d = depths[s - base] if s >= base else ext_depth[w]
            if d > best:
                best = d
        depths[i] = best + 1
    return np.asarray(depths, dtype=np.int64)


def resolve_batch_depths(
    node_depths_of, sources, offsets, fan_ins, rows, base
) -> np.ndarray:
    """Depth of every gate of a CSR batch, resolved in vectorized passes.

    ``node_depths_of`` maps an array of *existing* node ids to their depths
    (inputs are 0); sources ``>= base`` are intra-batch references.  Shared by
    :class:`ThresholdCircuit` and the dry-run counting builder so both label
    bulk batches identically.
    """
    n_new = len(fan_ins)
    src_depth = np.zeros(len(sources), dtype=np.int64)
    external = sources < base
    if external.any():
        src_depth[external] = node_depths_of(sources[external])
    internal = ~external
    if not internal.any():
        return segment_max(src_depth, offsets) + 1
    # Level-synchronous resolution (Kahn over the batch subgraph): each
    # round finalizes the frontier of rows whose intra-batch sources are
    # all resolved, then walks only the wires *consuming* those rows.
    # Every wire is gathered exactly once, so a maximal-depth chain batch
    # stays O(E) instead of O(E * depth).
    if rows is None:
        rows = np.repeat(np.arange(n_new, dtype=np.int64), fan_ins)
    depths = np.zeros(n_new, dtype=np.int64)
    int_idx = np.nonzero(internal)[0]
    int_target = sources[int_idx] - base  # referenced batch row per wire
    int_rows = rows[int_idx]  # owning batch row per wire
    # Reverse adjacency: internal wire positions grouped by target row.
    by_target = np.argsort(int_target, kind="stable")
    sorted_targets = int_target[by_target]
    pending = np.bincount(int_rows, minlength=n_new)
    frontier = np.nonzero(pending == 0)[0]
    resolved_count = 0
    level = 0
    while frontier.size:
        level += 1
        if level > 512:
            # Per-level numpy overhead beats a plain scan on extremely
            # deep batches (a 10^5-level chain); finish gate by gate.
            return _batch_depths_scan(sources, offsets, src_depth, base)
        # Depths of the frontier rows: segment max over their own wires
        # (all resolved by construction of the frontier).
        lens = fan_ins[frontier]
        wire_idx = gather_ranges(offsets[frontier], lens)
        if wire_idx.size:
            seg_offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
            np.cumsum(lens, out=seg_offsets[1:])
            depths[frontier] = segment_max(src_depth[wire_idx], seg_offsets) + 1
        else:
            depths[frontier] = 1
        resolved_count += frontier.size
        pending[frontier] = -1  # mark resolved
        if resolved_count == n_new:
            return depths
        # Wires consuming the frontier: contiguous runs of the
        # target-sorted order, located by binary search.
        lo = np.searchsorted(sorted_targets, frontier, side="left")
        hi = np.searchsorted(sorted_targets, frontier, side="right")
        run_lens = hi - lo
        pos = gather_ranges(lo, run_lens)
        consumed = pos.size
        if not consumed:
            raise AssertionError("batch depth resolution stalled")
        wires = by_target[pos]  # positions within the internal-wire arrays
        src_depth[int_idx[wires]] = depths[int_target[wires]]
        consumer_rows = int_rows[wires]
        if consumed * 8 >= n_new:
            pending -= np.bincount(consumer_rows, minlength=n_new)
        else:
            # Touch only the consumed rows: a full-length bincount per
            # level would make deep chain batches quadratic again.
            np.subtract.at(pending, consumer_rows, 1)
        candidates = np.unique(consumer_rows)
        frontier = candidates[pending[candidates] == 0]
    raise AssertionError("cyclic batch dependency (validation bypassed?)")


@dataclass(frozen=True)
class CircuitStats:
    """Summary of the complexity measures of a circuit."""

    n_inputs: int
    size: int
    depth: int
    edges: int
    max_fan_in: int
    max_abs_weight: int
    n_outputs: int

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (useful for benchmark reporting)."""
        return {
            "n_inputs": self.n_inputs,
            "size": self.size,
            "depth": self.depth,
            "edges": self.edges,
            "max_fan_in": self.max_fan_in,
            "max_abs_weight": self.max_abs_weight,
            "n_outputs": self.n_outputs,
        }


class GateView(Sequence):
    """Lazy sequence of :class:`Gate` objects over the columnar store.

    Gates are materialized on access only; iterating the view allocates one
    short-lived ``Gate`` per step but never copies the arrays.
    """

    __slots__ = ("_store",)

    def __init__(self, store: GateStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.n_gates

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not (0 <= index < len(self)):
            raise IndexError(index)
        return Gate._from_canonical(*self._store.gate_parts(index))

    def __iter__(self) -> Iterator[Gate]:
        store = self._store
        if store.n_gates == 0:
            return
        cols = store.columns()
        sources = cols.sources.tolist()
        weights = cols.weights.tolist()
        offsets = cols.offsets.tolist()
        thresholds = cols.thresholds.tolist()
        codes = cols.tag_codes.tolist()
        for i in range(store.n_gates):
            lo, hi = offsets[i], offsets[i + 1]
            yield Gate._from_canonical(
                tuple(sources[lo:hi]),
                tuple(weights[lo:hi]),
                thresholds[i],
                store.tag_of_code(codes[i]),
            )


class ThresholdCircuit:
    """A layered boolean circuit of linear threshold gates."""

    def __init__(self, n_inputs: int, name: str = "") -> None:
        if n_inputs < 0:
            raise ValueError(f"number of inputs must be nonnegative, got {n_inputs}")
        self.n_inputs = int(n_inputs)
        self.name = name
        self._store = GateStore()
        self.outputs: List[int] = []
        self.output_labels: List[str] = []
        self.metadata: Dict[str, object] = {}
        # Construction provenance for the template-streaming compile path:
        # one :class:`~repro.circuits.template.TemplateBlock` per stamped run
        # (appended by the builder's ``note_template_block`` hook, in node-id
        # order).  Purely additive metadata — the columnar store stays the
        # single source of truth for structure, hashing and stats, and
        # circuits rebuilt without stamping (legacy path, deserialization,
        # the optimizer) simply leave this empty and compile via the CSR
        # path.
        self.template_blocks: List[object] = []
        self._structural_hash: Optional[str] = None  # cache, invalidated on mutation
        self._stats: Optional[CircuitStats] = None  # cache, same lifecycle

    # ------------------------------------------------------------------ nodes
    @property
    def gates(self) -> GateView:
        """Lazy ``Gate``-object view of the columnar gate store."""
        return GateView(self._store)

    @property
    def store(self) -> GateStore:
        """The underlying columnar storage (array consumers read this)."""
        return self._store

    def columnar(self) -> Columns:
        """Consolidated CSR arrays of all gates (see :class:`Columns`)."""
        return self._store.columns()

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (inputs plus gates)."""
        return self.n_inputs + self._store.n_gates

    @property
    def size(self) -> int:
        """Number of gates (the paper's *size* measure)."""
        return self._store.n_gates

    def is_input(self, node: int) -> bool:
        """True when the node id refers to a circuit input."""
        return 0 <= node < self.n_inputs

    def gate_of(self, node: int) -> Gate:
        """Return the gate object backing a gate node id."""
        if not (self.n_inputs <= node < self.n_nodes):
            raise IndexError(f"node {node} is not a gate of this circuit")
        return Gate._from_canonical(*self._store.gate_parts(node - self.n_inputs))

    def node_depth(self, node: int) -> int:
        """Depth of a node: 0 for inputs, 1 + max source depth for gates."""
        if self.is_input(node):
            return 0
        return self._store.depths[node - self.n_inputs]

    def gate_depths(self) -> np.ndarray:
        """Depth per gate as an int64 array (aligned with gate order)."""
        return self._store.depths.view()

    def node_depths_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_depth` over an arbitrary node-id array."""
        nodes = np.asarray(nodes, dtype=np.int64)
        depths = np.zeros(nodes.shape, dtype=np.int64)
        is_gate = nodes >= self.n_inputs
        if is_gate.any():
            depths[is_gate] = self._store.depths.view()[
                nodes[is_gate] - self.n_inputs
            ]
        return depths

    # ------------------------------------------------------------------ build
    def _invalidate(self) -> None:
        self._structural_hash = None
        self._stats = None

    def add_gate(self, gate: Gate) -> int:
        """Append a gate and return its node id.

        The gate must only reference existing nodes (inputs or earlier
        gates); this keeps the circuit acyclic and topologically ordered.
        """
        return self.add_gate_parts(gate.sources, gate.weights, gate.threshold, gate.tag)

    def add_gate_parts(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
        assume_canonical: bool = False,
    ) -> int:
        """Append one gate given as raw parts, without building a ``Gate``.

        Canonicalization (duplicate-source merging) matches the ``Gate``
        constructor exactly, so both entry points produce identical storage.
        ``assume_canonical=True`` skips it for callers that already ran
        :func:`~repro.circuits.gate.canonical_parts` (the sharing cache).
        """
        if not assume_canonical:
            sources, weights = canonical_parts(sources, weights)
        node_id = self.n_nodes
        depth = 0
        depths = self._store.depths
        n_inputs = self.n_inputs
        for s in sources:
            if s < 0 or s >= node_id:
                raise ValueError(
                    f"gate references node {s}, but only nodes < {node_id} exist"
                )
            d = 0 if s < n_inputs else depths[s - n_inputs]
            if d > depth:
                depth = d
        self._store.append(sources, weights, int(threshold), tag, depth + 1)
        self._invalidate()
        return node_id

    def add_threshold_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        """Convenience wrapper around :meth:`add_gate_parts`."""
        return self.add_gate_parts(sources, weights, threshold, tag)

    def add_gates(
        self,
        sources: np.ndarray,
        offsets: np.ndarray,
        weights: np.ndarray,
        thresholds: np.ndarray,
        tags: Union[str, Sequence[str]] = "",
        canonicalize: bool = True,
        validate: bool = True,
        depths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Append a batch of gates from CSR-style arrays; returns node ids.

        Parameters
        ----------
        sources, weights:
            Concatenated wires of the batch; gate ``i`` owns the slice
            ``offsets[i]:offsets[i+1]``.  Sources are *absolute* node ids and
            may reference earlier gates of the same batch (the id of batch row
            ``i`` is ``n_nodes + i``), which is what lets whole gadgets —
            interval banks plus their select gate — land in one call.
        offsets:
            ``len == n_new + 1`` monotone offsets into the wire arrays.
        thresholds:
            One integer threshold per gate.
        tags:
            A single tag for the whole batch or one tag per gate.
        canonicalize:
            When True (default), rows with duplicate sources are merged
            exactly like the ``Gate`` constructor would.  Callers that
            guarantee duplicate-free rows (template stamping over distinct
            parameters) pass False to skip the detection sort.
        validate:
            When False, the per-wire bounds checks are skipped.  Only for
            internal callers whose arrays are correct by construction
            (template stamping: a validated template translated by offsets).
        depths:
            Optional precomputed depth per gate (template stamping derives
            them from the copies' parameter depths); None computes them here.

        Validation and depth labeling are vectorized: bounds are checked with
        one comparison over all wires, and depths are resolved in
        ``O(batch depth)`` numpy passes rather than per gate.
        """
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        thresholds_arr, thr_ok = int_column(thresholds)
        weights_arr, wts_ok = int_column(weights)
        n_new = len(offsets) - 1
        if n_new < 0:
            raise ValueError("offsets must contain at least one entry")
        if n_new == 0:
            return np.empty(0, dtype=np.int64)
        if len(thresholds_arr) != n_new:
            raise ValueError(
                f"{n_new} gates but {len(thresholds_arr)} thresholds"
            )
        fan_ins = np.diff(offsets)
        if fan_ins.size and int(fan_ins.min()) < 0:
            raise ValueError("offsets must be nondecreasing")
        if int(offsets[0]) != 0 or int(offsets[-1]) != len(sources):
            raise ValueError("offsets do not cover the wire arrays")
        if len(weights_arr) != len(sources):
            raise ValueError(
                f"{len(sources)} sources but {len(weights_arr)} weights"
            )

        base = self.n_nodes
        rows: Optional[np.ndarray] = None
        if validate or canonicalize:
            rows = np.repeat(np.arange(n_new, dtype=np.int64), fan_ins)
        if validate:
            validate_csr_sources(sources, offsets, fan_ins, base, rows)

        if canonicalize:
            result = self._canonicalize_batch(
                sources, offsets, weights_arr, rows
            )
            if result is not None:
                sources, offsets, weights_arr, fan_ins, rows, merged_ok = result
                # int_column re-derived the verdict from the merged values:
                # merging can push weights out of int64 or back into it.
                wts_ok = merged_ok
                depths = None  # merged rows invalidate caller-supplied depths

        if depths is None:
            depths = self._batch_depths(sources, offsets, fan_ins, rows, base)

        if isinstance(tags, str):
            tag_codes = np.full(n_new, self._store.intern_tag(tags), dtype=np.int32)
        elif isinstance(tags, np.ndarray) and tags.dtype == np.int32:
            # Pre-interned codes (template stamping): trusted as-is.
            if len(tags) != n_new:
                raise ValueError(f"{n_new} gates but {len(tags)} tag codes")
            tag_codes = tags
        else:
            if len(tags) != n_new:
                raise ValueError(f"{n_new} gates but {len(tags)} tags")
            intern = self._store.intern_tag
            tag_codes = np.fromiter(
                (intern(t) for t in tags), dtype=np.int32, count=n_new
            )

        self._store.extend(
            sources,
            weights_arr,
            fan_ins,
            thresholds_arr,
            tag_codes,
            depths,
            int64_ok=wts_ok and thr_ok,
        )
        self._invalidate()
        return np.arange(base, base + n_new, dtype=np.int64)

    def _canonicalize_batch(self, sources, offsets, weights, rows):
        """Merge duplicate sources within batch rows, ``Gate``-style.

        Returns None when every row is already duplicate-free (the common
        case, detected with one sort over the batch wires).
        """
        if not sources.size:
            return None
        dirty_rows = csr_dirty_rows(sources, rows)
        if not dirty_rows.size:
            return None
        n_rows = len(offsets) - 1
        # Canonicalize only the dirty rows in Python; everything else is
        # moved by array copies below, so one duplicate-source gate in a
        # million-gate batch does not degrade the whole import to a per-wire
        # Python loop.
        canonical = {}
        for i in dirty_rows.tolist():
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            canonical[i] = canonical_parts(
                sources[lo:hi].tolist(), weights[lo:hi].tolist()
            )
        new_fan_ins = np.diff(offsets).copy()
        for i, (row_src, _) in canonical.items():
            new_fan_ins[i] = len(row_src)
        new_offsets = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(new_fan_ins, out=new_offsets[1:])
        total = int(new_offsets[-1])

        dirty_weight_arrays = {}
        assembly_ok = weights.dtype != object
        if assembly_ok:
            try:
                for i, (_, row_wts) in canonical.items():
                    dirty_weight_arrays[i] = np.asarray(row_wts, dtype=np.int64)
            except OverflowError:
                assembly_ok = False  # a merge left int64: exact rebuild below
        if assembly_ok:
            new_sources = np.empty(total, dtype=np.int64)
            new_weights = np.empty(total, dtype=np.int64)
            dirty_mask = np.zeros(n_rows, dtype=bool)
            dirty_mask[dirty_rows] = True
            clean_wire = ~dirty_mask[rows]
            src_pos = np.nonzero(clean_wire)[0]
            shift = new_offsets[:-1] - offsets[:-1]
            dst_pos = src_pos + shift[rows[src_pos]]
            new_sources[dst_pos] = sources[src_pos]
            new_weights[dst_pos] = weights[src_pos]
            for i, (row_src, _) in canonical.items():
                lo = int(new_offsets[i])
                new_sources[lo : lo + len(row_src)] = row_src
                new_weights[lo : lo + len(row_src)] = dirty_weight_arrays[i]
            weights_arr, weights_ok = new_weights, True
            sources = new_sources
        else:
            # Exact fallback: rebuild through Python ints so the int64
            # verdict is re-derived from the merged values.
            src_out: List[int] = []
            wts_out: List[int] = []
            src_list = sources.tolist()
            wts_list = weights.tolist()
            off_list = offsets.tolist()
            for i in range(n_rows):
                if i in canonical:
                    row_src, row_wts = canonical[i]
                else:
                    lo, hi = off_list[i], off_list[i + 1]
                    row_src = src_list[lo:hi]
                    row_wts = wts_list[lo:hi]
                src_out.extend(row_src)
                wts_out.extend(row_wts)
            sources = np.asarray(src_out, dtype=np.int64)
            weights_arr, weights_ok = int_column(wts_out)
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), new_fan_ins)
        return sources, new_offsets, weights_arr, new_fan_ins, rows, weights_ok

    def _batch_depths(self, sources, offsets, fan_ins, rows, base) -> np.ndarray:
        """Depth of every batch gate, resolved in vectorized passes."""
        return resolve_batch_depths(
            self.node_depths_of, sources, offsets, fan_ins, rows, base
        )

    def set_outputs(self, nodes: Sequence[int], labels: Optional[Sequence[str]] = None) -> None:
        """Declare the circuit outputs (any existing nodes, typically gates)."""
        nodes = [int(n) for n in nodes]
        n_nodes = self.n_nodes
        for n in nodes:
            if not (0 <= n < n_nodes):
                raise ValueError(f"output node {n} does not exist")
        if labels is not None and len(labels) != len(nodes):
            raise ValueError("labels must match outputs one-to-one")
        self.outputs = nodes
        self.output_labels = list(labels) if labels is not None else [""] * len(nodes)
        self._invalidate()

    # ------------------------------------------------------------------ stats
    @property
    def depth(self) -> int:
        """Length of the longest input-to-gate path (0 for a gate-free circuit)."""
        return self._store.max_depth

    @property
    def edges(self) -> int:
        """Total number of wires between nodes."""
        return self._store.n_edges

    @property
    def max_fan_in(self) -> int:
        """Largest fan-in over all gates."""
        return self._store.max_fan_in

    def stats(self) -> CircuitStats:
        """Return all complexity measures at once.

        The result is cached and invalidated alongside the structural hash,
        so repeated engine compiles stop rescanning every gate.
        """
        if self._stats is None:
            if self.size == 0:
                max_abs_weight = 0
            else:
                cols = self._store.columns()
                if cols.n_edges == 0:
                    max_abs_weight = 0
                elif cols.int64_ok and int(cols.weights.min()) != np.iinfo(np.int64).min:
                    # np.abs wraps on INT64_MIN, so that value goes exact.
                    max_abs_weight = int(np.abs(cols.weights).max())
                else:
                    max_abs_weight = max(abs(int(w)) for w in cols.weights)
            self._stats = CircuitStats(
                n_inputs=self.n_inputs,
                size=self.size,
                depth=self.depth,
                edges=self.edges,
                max_fan_in=self.max_fan_in,
                max_abs_weight=max_abs_weight,
                n_outputs=len(self.outputs),
            )
        return self._stats

    def structural_hash(self) -> str:
        """Content hash of the circuit structure (inputs, gates, outputs).

        Used by the execution engine as its compile-cache key: circuits with
        the same hash compile to the same backend program.  Labels, tags and
        metadata do not participate.  The hash is cached and invalidated by
        the mutation entry points; mutating ``outputs`` directly (unsupported)
        would leave it stale.
        """
        if self._structural_hash is None:
            from repro.circuits.serialize import structural_digest

            self._structural_hash = structural_digest(self)
        return self._structural_hash

    def gates_by_depth(self) -> Dict[int, List[int]]:
        """Group gate node ids by their depth layer (1-based layers)."""
        depths = self._store.depths.view()
        layers: Dict[int, List[int]] = {}
        if depths.size == 0:
            return layers
        order, sorted_depths, starts, ends = group_by_depth(depths)
        node_ids = order + self.n_inputs
        for start, end in zip(starts, ends):
            layers[int(sorted_depths[start])] = node_ids[start:end].tolist()
        return layers

    # -------------------------------------------------------------- reference
    def evaluate_slow(self, input_values: Sequence[int]) -> np.ndarray:
        """Gate-by-gate reference evaluation (exact, arbitrary precision).

        This is the semantic ground truth the vectorized simulator is tested
        against.  Returns the values of all nodes.
        """
        if len(input_values) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input values, got {len(input_values)}"
            )
        values: List[int] = [int(v) for v in input_values]
        for v in values:
            if v not in (0, 1):
                raise ValueError("circuit inputs must be 0/1")
        for gate in self.gates:
            values.append(gate.evaluate(values))
        return np.array(values, dtype=np.int8)

    def output_values(self, node_values: np.ndarray) -> np.ndarray:
        """Extract the declared outputs from a full node-value vector/batch."""
        if not self.outputs:
            raise ValueError("circuit has no declared outputs")
        return np.asarray(node_values)[self.outputs, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" '{self.name}'" if self.name else ""
        return (
            f"ThresholdCircuit({label} inputs={self.n_inputs}, gates={self.size}, "
            f"depth={self.depth}, outputs={len(self.outputs)})"
        )

