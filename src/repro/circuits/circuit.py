"""Threshold circuit container.

A :class:`ThresholdCircuit` is a directed acyclic graph of threshold gates
over a fixed set of binary inputs.  Node ids are integers:

* ``0 .. n_inputs - 1`` are the circuit inputs,
* ``n_inputs .. n_inputs + len(gates) - 1`` are the gates, in insertion
  order.  A gate may only reference nodes with smaller ids, which makes the
  graph acyclic by construction.

The complexity measures studied in the paper (Section 1) — *size* (number of
gates), *depth* (longest input-to-output path), *edges* (number of wires) and
*fan-in* — are exposed as properties/:class:`CircuitStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.gate import Gate

__all__ = ["ThresholdCircuit", "CircuitStats"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary of the complexity measures of a circuit."""

    n_inputs: int
    size: int
    depth: int
    edges: int
    max_fan_in: int
    max_abs_weight: int
    n_outputs: int

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (useful for benchmark reporting)."""
        return {
            "n_inputs": self.n_inputs,
            "size": self.size,
            "depth": self.depth,
            "edges": self.edges,
            "max_fan_in": self.max_fan_in,
            "max_abs_weight": self.max_abs_weight,
            "n_outputs": self.n_outputs,
        }


class ThresholdCircuit:
    """A layered boolean circuit of linear threshold gates."""

    def __init__(self, n_inputs: int, name: str = "") -> None:
        if n_inputs < 0:
            raise ValueError(f"number of inputs must be nonnegative, got {n_inputs}")
        self.n_inputs = int(n_inputs)
        self.name = name
        self.gates: List[Gate] = []
        self.outputs: List[int] = []
        self.output_labels: List[str] = []
        self._depths: List[int] = []  # depth per gate, aligned with self.gates
        self.metadata: Dict[str, object] = {}
        self._structural_hash: Optional[str] = None  # cache, invalidated on mutation

    # ------------------------------------------------------------------ nodes
    @property
    def n_nodes(self) -> int:
        """Total number of nodes (inputs plus gates)."""
        return self.n_inputs + len(self.gates)

    @property
    def size(self) -> int:
        """Number of gates (the paper's *size* measure)."""
        return len(self.gates)

    def is_input(self, node: int) -> bool:
        """True when the node id refers to a circuit input."""
        return 0 <= node < self.n_inputs

    def gate_of(self, node: int) -> Gate:
        """Return the gate object backing a gate node id."""
        if not (self.n_inputs <= node < self.n_nodes):
            raise IndexError(f"node {node} is not a gate of this circuit")
        return self.gates[node - self.n_inputs]

    def node_depth(self, node: int) -> int:
        """Depth of a node: 0 for inputs, 1 + max source depth for gates."""
        if self.is_input(node):
            return 0
        return self._depths[node - self.n_inputs]

    # ------------------------------------------------------------------ build
    def add_gate(self, gate: Gate) -> int:
        """Append a gate and return its node id.

        The gate must only reference existing nodes (inputs or earlier
        gates); this keeps the circuit acyclic and topologically ordered.
        """
        node_id = self.n_nodes
        depth = 0
        for s in gate.sources:
            if s < 0 or s >= node_id:
                raise ValueError(
                    f"gate references node {s}, but only nodes < {node_id} exist"
                )
            d = self.node_depth(s)
            if d > depth:
                depth = d
        self.gates.append(gate)
        self._depths.append(depth + 1)
        self._structural_hash = None
        return node_id

    def add_threshold_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        """Convenience wrapper around :meth:`add_gate`."""
        return self.add_gate(Gate(sources, weights, threshold, tag))

    def set_outputs(self, nodes: Sequence[int], labels: Optional[Sequence[str]] = None) -> None:
        """Declare the circuit outputs (any existing nodes, typically gates)."""
        nodes = [int(n) for n in nodes]
        for n in nodes:
            if not (0 <= n < self.n_nodes):
                raise ValueError(f"output node {n} does not exist")
        if labels is not None and len(labels) != len(nodes):
            raise ValueError("labels must match outputs one-to-one")
        self.outputs = nodes
        self.output_labels = list(labels) if labels is not None else [""] * len(nodes)
        self._structural_hash = None

    # ------------------------------------------------------------------ stats
    @property
    def depth(self) -> int:
        """Length of the longest input-to-gate path (0 for a gate-free circuit)."""
        return max(self._depths, default=0)

    @property
    def edges(self) -> int:
        """Total number of wires between nodes."""
        return sum(g.fan_in for g in self.gates)

    @property
    def max_fan_in(self) -> int:
        """Largest fan-in over all gates."""
        return max((g.fan_in for g in self.gates), default=0)

    def stats(self) -> CircuitStats:
        """Return all complexity measures at once."""
        return CircuitStats(
            n_inputs=self.n_inputs,
            size=self.size,
            depth=self.depth,
            edges=self.edges,
            max_fan_in=self.max_fan_in,
            max_abs_weight=max((g.max_abs_weight for g in self.gates), default=0),
            n_outputs=len(self.outputs),
        )

    def structural_hash(self) -> str:
        """Content hash of the circuit structure (inputs, gates, outputs).

        Used by the execution engine as its compile-cache key: circuits with
        the same hash compile to the same backend program.  Labels, tags and
        metadata do not participate.  The hash is cached and invalidated by
        :meth:`add_gate` / :meth:`set_outputs`; mutating ``gates`` or
        ``outputs`` directly (unsupported) would leave it stale.
        """
        if self._structural_hash is None:
            from repro.circuits.serialize import structural_digest

            self._structural_hash = structural_digest(self)
        return self._structural_hash

    def gates_by_depth(self) -> Dict[int, List[int]]:
        """Group gate node ids by their depth layer (1-based layers)."""
        layers: Dict[int, List[int]] = {}
        for idx, depth in enumerate(self._depths):
            layers.setdefault(depth, []).append(self.n_inputs + idx)
        return layers

    # -------------------------------------------------------------- reference
    def evaluate_slow(self, input_values: Sequence[int]) -> np.ndarray:
        """Gate-by-gate reference evaluation (exact, arbitrary precision).

        This is the semantic ground truth the vectorized simulator is tested
        against.  Returns the values of all nodes.
        """
        if len(input_values) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input values, got {len(input_values)}"
            )
        values: List[int] = [int(v) for v in input_values]
        for v in values:
            if v not in (0, 1):
                raise ValueError("circuit inputs must be 0/1")
        for gate in self.gates:
            values.append(gate.evaluate(values))
        return np.array(values, dtype=np.int8)

    def output_values(self, node_values: np.ndarray) -> np.ndarray:
        """Extract the declared outputs from a full node-value vector/batch."""
        if not self.outputs:
            raise ValueError("circuit has no declared outputs")
        return np.asarray(node_values)[self.outputs, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" '{self.name}'" if self.name else ""
        return (
            f"ThresholdCircuit({label} inputs={self.n_inputs}, gates={self.size}, "
            f"depth={self.depth}, outputs={len(self.outputs)})"
        )
