"""Dry-run builder that counts gates without materializing them.

:class:`CountingBuilder` implements the same interface the construction code
uses on :class:`~repro.circuits.builder.CircuitBuilder` (input allocation,
``add_gate``, bulk ``add_gates``, tag interning, constants) but stores only
per-node depths and aggregate counters.  Running an unchanged construction
against it yields the *exact* size, depth, edge count and fan-in of the
circuit it would have built, using far less memory — this is how the
gate-count model of :mod:`repro.core.gate_count_model` avoids any risk of
drifting from the real builders.

Because the counting builder speaks the full bulk protocol it also carries a
:class:`~repro.circuits.template.GadgetStamper`: a stamped gadget batch is
counted from the recorded template's gate/edge/fan-in/tag totals (times the
copy count) plus one vectorized depth broadcast, instead of re-walking every
stamped gate — the same sharded "count the shard once, multiply" idea the
batch evaluation scheduler uses for its independent column chunks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.circuits.circuit import resolve_batch_depths
from repro.circuits.store import (
    IntVector,
    TagTable,
    accumulate_tag_counts,
    csr_dirty_rows,
    validate_csr_sources,
)

__all__ = ["CountingBuilder"]


class CountingBuilder:
    """Counts the gates a construction would emit (same API as CircuitBuilder)."""

    def __init__(self, name: str = "", vectorize: bool = True) -> None:
        self.name = name
        self._depths = IntVector()  # depth per node (inputs are depth 0)
        self._n_inputs = 0
        self._size = 0
        self._edges = 0
        self._max_fan_in = 0
        self._max_depth = 0
        self._tag_counts: Dict[str, int] = {}
        self._input_blocks: Dict[str, List[int]] = {}
        self._constant_true: Optional[int] = None
        self._constant_false: Optional[int] = None
        self._outputs: List[int] = []
        self._last_sources: Optional[Sequence[int]] = None
        self._last_len: int = -1
        self._last_depth: int = 0
        self._last_fan: int = 0
        self._tags = TagTable()
        # Marks this builder as a pure counter: the template stamper skips
        # materializing translated source arrays and calls
        # :meth:`add_template_gates` with the template totals instead.
        self.counts_only = True
        # Same stamping/banking surface as CircuitBuilder, so constructions
        # take identical code paths on both builders.  ``vectorize=False``
        # keeps the per-gate legacy counting (benchmark baseline).
        self.stamper = None
        if vectorize:
            from repro.circuits.template import GadgetStamper

            self.stamper = GadgetStamper(self)
        self.use_banks = self.stamper is not None

    # ----------------------------------------------------------------- inputs
    def allocate_inputs(self, count: int, label: str = "") -> List[int]:
        """Reserve input wires (counted but never simulated)."""
        if count < 0:
            raise ValueError(f"cannot allocate a negative number of inputs ({count})")
        start = len(self._depths)
        ids = list(range(start, start + count))
        self._depths.extend(np.zeros(count, dtype=np.int64))
        self._n_inputs += count
        if label:
            self._input_blocks.setdefault(label, []).extend(ids)
        return ids

    def input_block(self, label: str) -> List[int]:
        """Wires previously allocated under ``label``."""
        return list(self._input_blocks[label])

    @property
    def n_inputs(self) -> int:
        """Number of allocated input wires."""
        return self._n_inputs

    @property
    def n_nodes(self) -> int:
        """Total number of (virtual) nodes: inputs plus counted gates."""
        return len(self._depths)

    # --------------------------------------------------------------- protocol
    def intern_tag(self, tag: str) -> int:
        """Intern a tag string, returning its int32 code (own table)."""
        return self._tags.intern(tag)

    def tag_of_code(self, code: int) -> str:
        """Inverse of :meth:`intern_tag`."""
        return self._tags.decode(code)

    def node_depths_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized node-id -> depth lookup over the counted nodes."""
        return self._depths.view()[np.asarray(nodes, dtype=np.int64)]

    # ------------------------------------------------------------------ gates
    def add_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        """Record a gate and return its (virtual) node id."""
        node_id = len(self._depths)
        # The arithmetic builders reuse one source list for whole banks of
        # interval gates (Lemma 3.1 emits 2^k gates over identical sources),
        # so memoize the max-depth computation on the list's identity *and*
        # length: identity alone returns a stale maximum when a caller
        # appends to a reused list between gates (the nodes already listed
        # cannot change depth, but newly appended ones can be deeper).
        if sources is self._last_sources and len(sources) == self._last_len:
            depth = self._last_depth
            fan_in = self._last_fan
        else:
            depth = 0
            depths = self._depths
            for s in sources:
                d = depths[s]
                if d > depth:
                    depth = d
            depth += 1
            fan_in = len(sources)
            if fan_in > 1:
                # The real builder canonicalizes duplicate sources into one
                # wire (Gate-style merge); count the merged fan-in so both
                # counting paths report what the built circuit would have.
                distinct = len(set(sources))
                if distinct != fan_in:
                    fan_in = distinct
            self._last_sources = sources
            self._last_len = len(sources)
            self._last_depth = depth
            self._last_fan = fan_in
        self._depths.append(depth)
        if depth > self._max_depth:
            self._max_depth = depth
        self._size += 1
        self._edges += fan_in
        if fan_in > self._max_fan_in:
            self._max_fan_in = fan_in
        if tag:
            self._tag_counts[tag] = self._tag_counts.get(tag, 0) + 1
        return node_id

    def add_gates(
        self,
        sources: np.ndarray,
        offsets: np.ndarray,
        weights: np.ndarray,
        thresholds: np.ndarray,
        tag: Union[str, Sequence[str], np.ndarray] = "",
        canonicalize: bool = True,
        validate: bool = True,
        depths: Optional[np.ndarray] = None,
        tag_counts: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Count a CSR batch of gates; same signature as the real builder.

        ``weights``/``thresholds`` only matter for signature compatibility
        (counting ignores the values); duplicate-source canonicalization is
        still honoured because it changes fan-ins and edge counts.
        """
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        n_new = len(offsets) - 1
        if n_new < 0:
            raise ValueError("offsets must contain at least one entry")
        if n_new == 0:
            return np.empty(0, dtype=np.int64)
        fan_ins = np.diff(offsets)
        if fan_ins.size and int(fan_ins.min()) < 0:
            raise ValueError("offsets must be nondecreasing")
        if int(offsets[0]) != 0 or int(offsets[-1]) != len(sources):
            raise ValueError("offsets do not cover the wire arrays")

        base = self.n_nodes
        rows: Optional[np.ndarray] = None
        if validate or canonicalize:
            rows = np.repeat(np.arange(n_new, dtype=np.int64), fan_ins)
        if validate:
            validate_csr_sources(sources, offsets, fan_ins, base, rows)

        counted_fan_ins = fan_ins
        if canonicalize and sources.size:
            # Merged duplicate sources shrink the fan-in exactly like the
            # ``Gate`` constructor; depth is untouched (max over a multiset).
            dirty = csr_dirty_rows(sources, rows)
            if dirty.size:
                counted_fan_ins = fan_ins.copy()
                for i in dirty.tolist():
                    lo, hi = int(offsets[i]), int(offsets[i + 1])
                    counted_fan_ins[i] = len(set(sources[lo:hi].tolist()))

        if depths is None:
            depths = resolve_batch_depths(
                self.node_depths_of, sources, offsets, fan_ins, rows, base
            )
        self._depths.extend(depths)
        if depths.size:
            batch_max = int(depths.max())
            if batch_max > self._max_depth:
                self._max_depth = batch_max
        self._size += n_new
        self._edges += int(counted_fan_ins.sum())
        if counted_fan_ins.size:
            batch_fan = int(counted_fan_ins.max())
            if batch_fan > self._max_fan_in:
                self._max_fan_in = batch_fan

        accumulate_tag_counts(
            self._tag_counts, tag, n_new, tag_counts, self._tags.decode
        )
        return np.arange(base, base + n_new, dtype=np.int64)

    def add_gate_rows(
        self,
        fan_ins: np.ndarray,
        depths: np.ndarray,
        tag_counts: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Count gates given only their fan-ins and depths (no wire arrays).

        The wire-free fast lane for gadgets whose shape is known in closed
        form (e.g. a Lemma 3.1 interval bank: ``m`` gates of one fan-in plus
        a select gate), so dry runs never materialize million-wire arrays.
        The caller is responsible for fan-ins reflecting canonicalized
        (duplicate-merged) rows.
        """
        base = self.n_nodes
        n_new = len(fan_ins)
        self._size += n_new
        self._edges += int(fan_ins.sum())
        if n_new:
            batch_fan = int(fan_ins.max())
            if batch_fan > self._max_fan_in:
                self._max_fan_in = batch_fan
        self._depths.extend(depths)
        if depths.size:
            batch_max = int(depths.max())
            if batch_max > self._max_depth:
                self._max_depth = batch_max
        if tag_counts is not None:
            accumulate_tag_counts(self._tag_counts, "", 0, tag_counts)
        return np.arange(base, base + n_new, dtype=np.int64)

    def add_template_gates(
        self, template, k: int, depths: np.ndarray
    ) -> None:
        """Count ``k`` stamped copies of a recorded gadget template.

        The template's gate/edge/fan-in/tag totals were computed once at
        record time; only the per-copy ``depths`` (already resolved by the
        stamper from the copies' parameter depths) vary.
        """
        n_gates = template.n_gates
        self._size += k * n_gates
        self._edges += k * template.n_edges
        if n_gates and template.fan_ins.size:
            template_fan = int(template.fan_ins.max())
            if template_fan > self._max_fan_in:
                self._max_fan_in = template_fan
        self._depths.extend(depths)
        if depths.size:
            batch_max = int(depths.max())
            if batch_max > self._max_depth:
                self._max_depth = batch_max
        for t, count in template.tag_counts.items():
            self._tag_counts[t] = self._tag_counts.get(t, 0) + count * k

    def constant_true(self) -> int:
        """Virtual always-true node (counted once)."""
        if self._constant_true is None:
            self._constant_true = self.add_gate([], [], 0, tag="constant/true")
        return self._constant_true

    def constant_false(self) -> int:
        """Virtual always-false node (counted once)."""
        if self._constant_false is None:
            self._constant_false = self.add_gate([], [], 1, tag="constant/false")
        return self._constant_false

    def copy_gate(self, node: int, tag: str = "copy") -> int:
        """Virtual identity gate."""
        return self.add_gate([node], [1], 1, tag=tag)

    # ---------------------------------------------------------------- outputs
    def set_outputs(self, nodes: Sequence[int], labels=None) -> None:
        """Record the declared outputs (counted only)."""
        self._outputs = [int(n) for n in nodes]

    # ------------------------------------------------------------------ stats
    @property
    def size(self) -> int:
        """Number of gates recorded."""
        return self._size

    @property
    def depth(self) -> int:
        """Depth of the deepest recorded gate."""
        return self._max_depth

    @property
    def edges(self) -> int:
        """Total number of wires."""
        return self._edges

    @property
    def max_fan_in(self) -> int:
        """Largest recorded fan-in."""
        return self._max_fan_in

    @property
    def n_outputs(self) -> int:
        """Number of declared outputs."""
        return len(self._outputs)

    def tag_counts(self) -> Dict[str, int]:
        """Gate counts grouped by construction tag."""
        return dict(self._tag_counts)
