"""Dry-run builder that counts gates without materializing them.

:class:`CountingBuilder` implements the same interface the construction code
uses on :class:`~repro.circuits.builder.CircuitBuilder` (input allocation,
``add_gate``, constants) but stores only per-node depths and aggregate
counters.  Running an unchanged construction against it yields the *exact*
size, depth, edge count and fan-in of the circuit it would have built, using
far less memory — this is how the gate-count model of
:mod:`repro.core.gate_count_model` avoids any risk of drifting from the real
builders.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["CountingBuilder"]


class CountingBuilder:
    """Counts the gates a construction would emit (same API as CircuitBuilder)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._depths: List[int] = []  # depth per node (inputs are depth 0)
        self._n_inputs = 0
        self._size = 0
        self._edges = 0
        self._max_fan_in = 0
        self._max_depth = 0
        self._tag_counts: Dict[str, int] = {}
        self._input_blocks: Dict[str, List[int]] = {}
        self._constant_true: Optional[int] = None
        self._constant_false: Optional[int] = None
        self._outputs: List[int] = []
        self._last_sources: Optional[Sequence[int]] = None
        self._last_depth: int = 0

    # ----------------------------------------------------------------- inputs
    def allocate_inputs(self, count: int, label: str = "") -> List[int]:
        """Reserve input wires (counted but never simulated)."""
        if count < 0:
            raise ValueError(f"cannot allocate a negative number of inputs ({count})")
        start = len(self._depths)
        ids = list(range(start, start + count))
        self._depths.extend([0] * count)
        self._n_inputs += count
        if label:
            self._input_blocks.setdefault(label, []).extend(ids)
        return ids

    def input_block(self, label: str) -> List[int]:
        """Wires previously allocated under ``label``."""
        return list(self._input_blocks[label])

    @property
    def n_inputs(self) -> int:
        """Number of allocated input wires."""
        return self._n_inputs

    # ------------------------------------------------------------------ gates
    def add_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        """Record a gate and return its (virtual) node id."""
        node_id = len(self._depths)
        # The arithmetic builders reuse one source list for whole banks of
        # interval gates (Lemma 3.1 emits 2^k gates over identical sources),
        # so memoize the max-depth computation on the list's identity.  The
        # cache is only valid while no new node could have entered the list,
        # which holds because source lists always refer to existing nodes.
        if sources is self._last_sources:
            depth = self._last_depth
        else:
            depth = 0
            depths = self._depths
            for s in sources:
                d = depths[s]
                if d > depth:
                    depth = d
            depth += 1
            self._last_sources = sources
            self._last_depth = depth
        self._depths.append(depth)
        if depth > self._max_depth:
            self._max_depth = depth
        fan_in = len(sources)
        self._size += 1
        self._edges += fan_in
        if fan_in > self._max_fan_in:
            self._max_fan_in = fan_in
        if tag:
            self._tag_counts[tag] = self._tag_counts.get(tag, 0) + 1
        return node_id

    def constant_true(self) -> int:
        """Virtual always-true node (counted once)."""
        if self._constant_true is None:
            self._constant_true = self.add_gate([], [], 0, tag="constant/true")
        return self._constant_true

    def constant_false(self) -> int:
        """Virtual always-false node (counted once)."""
        if self._constant_false is None:
            self._constant_false = self.add_gate([], [], 1, tag="constant/false")
        return self._constant_false

    def copy_gate(self, node: int, tag: str = "copy") -> int:
        """Virtual identity gate."""
        return self.add_gate([node], [1], 1, tag=tag)

    # ---------------------------------------------------------------- outputs
    def set_outputs(self, nodes: Sequence[int], labels=None) -> None:
        """Record the declared outputs (counted only)."""
        self._outputs = [int(n) for n in nodes]

    # ------------------------------------------------------------------ stats
    @property
    def size(self) -> int:
        """Number of gates recorded."""
        return self._size

    @property
    def depth(self) -> int:
        """Depth of the deepest recorded gate."""
        return self._max_depth

    @property
    def edges(self) -> int:
        """Total number of wires."""
        return self._edges

    @property
    def max_fan_in(self) -> int:
        """Largest recorded fan-in."""
        return self._max_fan_in

    @property
    def n_outputs(self) -> int:
        """Number of declared outputs."""
        return len(self._outputs)

    def tag_counts(self) -> Dict[str, int]:
        """Gate counts grouped by construction tag."""
        return dict(self._tag_counts)
