"""Threshold gate model.

A gate computes the linear threshold function

    output = 1  iff  sum_i w_i * y_i >= t

over the outputs ``y_i`` of its source nodes (circuit inputs or other gates),
with integer weights ``w_i`` and integer threshold ``t`` fixed at
construction time.  This is exactly the McCulloch–Pitts neuron model the
paper builds on (Section 1).

Gates are immutable and lightweight: large circuits contain hundreds of
thousands of them, so the class uses ``__slots__`` and stores the incoming
wires as parallel tuples.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["Gate", "canonical_parts"]


def canonical_parts(
    sources: Sequence[int], weights: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Canonical (sources, weights) of a gate, shared by every emission path.

    Duplicate sources are merged (weights summed) and the merged list is
    sorted by node id; a duplicate-free list keeps its original order.  The
    per-gate and bulk construction paths both route through this helper, so
    circuits built either way are wire-for-wire identical.
    """
    sources = tuple(int(s) for s in sources)
    weights = tuple(int(w) for w in weights)
    if len(sources) != len(weights):
        raise ValueError(
            f"gate has {len(sources)} sources but {len(weights)} weights"
        )
    if len(set(sources)) != len(sources):
        # Duplicate sources are merged so fan-in statistics are honest.
        merged = {}
        for s, w in zip(sources, weights):
            merged[s] = merged.get(s, 0) + w
        items = sorted(merged.items())
        sources = tuple(s for s, _ in items)
        weights = tuple(w for _, w in items)
    return sources, weights


class Gate:
    """A single linear threshold gate.

    Parameters
    ----------
    sources:
        Node ids of the inputs to this gate.  Node ids below the circuit's
        input count refer to circuit inputs; larger ids refer to earlier
        gates.
    weights:
        Integer weights, one per source.
    threshold:
        Integer threshold ``t``.
    tag:
        Optional short string describing the gate's role (used for analysis
        and debugging; e.g. ``"lemma3.1/interval"``).
    """

    __slots__ = ("sources", "weights", "threshold", "tag")

    def __init__(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> None:
        self.sources, self.weights = canonical_parts(sources, weights)
        self.threshold = int(threshold)
        self.tag = tag

    @classmethod
    def _from_canonical(
        cls,
        sources: Tuple[int, ...],
        weights: Tuple[int, ...],
        threshold: int,
        tag: str = "",
    ) -> "Gate":
        """Wrap already-canonical parts without re-running the merge pass.

        Used by the columnar gate view, whose stored rows are canonical by
        construction — re-validating them on every access would turn a lazy
        view into a per-gate scan.
        """
        gate = cls.__new__(cls)
        gate.sources = sources
        gate.weights = weights
        gate.threshold = threshold
        gate.tag = tag
        return gate

    @property
    def fan_in(self) -> int:
        """Number of incoming wires."""
        return len(self.sources)

    @property
    def max_abs_weight(self) -> int:
        """Largest absolute weight on an incoming wire (0 for a constant gate)."""
        return max((abs(w) for w in self.weights), default=0)

    def evaluate(self, values) -> int:
        """Evaluate the gate on a mapping/sequence of node values (0/1)."""
        total = 0
        for s, w in zip(self.sources, self.weights):
            total += w * int(values[s])
        return 1 if total >= self.threshold else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = ", ".join(f"{w}*n{s}" for s, w in zip(self.sources, self.weights))
        label = f" [{self.tag}]" if self.tag else ""
        return f"Gate({terms} >= {self.threshold}{label})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.sources == other.sources
            and self.weights == other.weights
            and self.threshold == other.threshold
        )

    def __hash__(self) -> int:
        return hash((self.sources, self.weights, self.threshold))

    def structural_key(self) -> Tuple:
        """Key identifying functionally identical gates (used by the optimizer)."""
        return (self.sources, self.weights, self.threshold)
