"""Post-construction circuit optimizations.

Two semantics-preserving transformations are provided:

* :func:`deduplicate_gates` — merge structurally identical gates (same
  sources, weights and threshold).  The paper notes (proof of Lemma 3.2)
  that the interval gates built for the most significant bits can be shared;
  dedicating an explicit pass keeps the primary constructions faithful to
  the paper's statement while letting the benchmark harness quantify how
  much sharing buys (ablation E13 companion data).
* :func:`eliminate_dead_gates` — drop gates that cannot reach any declared
  output.

Both return a *new* circuit plus a mapping from old node ids to new ones.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import Gate

__all__ = ["deduplicate_gates", "eliminate_dead_gates"]


def deduplicate_gates(circuit: ThresholdCircuit) -> Tuple[ThresholdCircuit, Dict[int, int]]:
    """Merge structurally identical gates, rewiring consumers.

    Returns ``(optimized_circuit, node_map)`` where ``node_map`` sends every
    node id of the original circuit to its representative in the optimized
    one.  Deduplication is applied iteratively in topological order, so gates
    that become identical only after their sources were merged are also
    merged.
    """
    new_circuit = ThresholdCircuit(circuit.n_inputs, name=circuit.name)
    new_circuit.metadata = dict(circuit.metadata)
    node_map: Dict[int, int] = {i: i for i in range(circuit.n_inputs)}
    seen: Dict[tuple, int] = {}

    for offset, gate in enumerate(circuit.gates):
        old_id = circuit.n_inputs + offset
        sources = [node_map[s] for s in gate.sources]
        candidate = Gate(sources, gate.weights, gate.threshold, gate.tag)
        key = candidate.structural_key()
        if key in seen:
            node_map[old_id] = seen[key]
        else:
            new_id = new_circuit.add_gate(candidate)
            seen[key] = new_id
            node_map[old_id] = new_id

    if circuit.outputs:
        new_circuit.set_outputs(
            [node_map[o] for o in circuit.outputs], circuit.output_labels
        )
    return new_circuit, node_map


def eliminate_dead_gates(circuit: ThresholdCircuit) -> Tuple[ThresholdCircuit, Dict[int, int]]:
    """Remove gates that no declared output depends on.

    Requires the circuit to declare outputs; inputs are always kept so the
    wire layout of encodings remains valid.
    """
    if not circuit.outputs:
        raise ValueError("dead-gate elimination requires declared outputs")

    needed = [False] * circuit.n_nodes
    for out in circuit.outputs:
        needed[out] = True
    # Walk gates in reverse topological order, propagating need to sources.
    for offset in range(len(circuit.gates) - 1, -1, -1):
        node_id = circuit.n_inputs + offset
        if not needed[node_id]:
            continue
        for s in circuit.gates[offset].sources:
            needed[s] = True

    new_circuit = ThresholdCircuit(circuit.n_inputs, name=circuit.name)
    new_circuit.metadata = dict(circuit.metadata)
    node_map: Dict[int, int] = {i: i for i in range(circuit.n_inputs)}
    for offset, gate in enumerate(circuit.gates):
        old_id = circuit.n_inputs + offset
        if not needed[old_id]:
            continue
        sources = [node_map[s] for s in gate.sources]
        node_map[old_id] = new_circuit.add_gate(
            Gate(sources, gate.weights, gate.threshold, gate.tag)
        )

    new_circuit.set_outputs(
        [node_map[o] for o in circuit.outputs], circuit.output_labels
    )
    return new_circuit, node_map
