"""Post-construction circuit optimizations.

Two semantics-preserving transformations are provided:

* :func:`deduplicate_gates` — merge structurally identical gates (same
  sources, weights and threshold).  The paper notes (proof of Lemma 3.2)
  that the interval gates built for the most significant bits can be shared;
  dedicating an explicit pass keeps the primary constructions faithful to
  the paper's statement while letting the benchmark harness quantify how
  much sharing buys (ablation E13 companion data).
* :func:`eliminate_dead_gates` — drop gates that cannot reach any declared
  output.

Both return a *new* circuit plus a mapping from old node ids to new ones.

Both passes operate directly on the columnar gate store and emit the
surviving gates through one bulk ``add_gates`` call — no per-gate ``Gate``
objects are materialized from the lazy view.  Dead-gate reachability walks
depth layers with array gathers; deduplication keeps its (inherently
sequential) first-seen keying but works on raw column slices.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import canonical_parts
from repro.circuits.store import gather_ranges, group_by_depth, int_column

__all__ = ["deduplicate_gates", "eliminate_dead_gates"]


def _emit_bulk(
    new_circuit: ThresholdCircuit,
    rows: List[Tuple[List[int], List[int], int]],
    tags: List[str],
) -> None:
    """Append pre-canonicalized gate rows through one bulk call."""
    if not rows:
        return
    fan_ins = np.asarray([len(srcs) for srcs, _, _ in rows], dtype=np.int64)
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(fan_ins, out=offsets[1:])
    sources = np.asarray(
        [s for srcs, _, _ in rows for s in srcs], dtype=np.int64
    )
    weights, _ = int_column([w for _, wts, _ in rows for w in wts])
    thresholds, _ = int_column([t for _, _, t in rows])
    new_circuit.add_gates(
        sources,
        offsets,
        weights,
        thresholds,
        tags=tags,
        canonicalize=False,
        validate=False,
    )


def deduplicate_gates(circuit: ThresholdCircuit) -> Tuple[ThresholdCircuit, Dict[int, int]]:
    """Merge structurally identical gates, rewiring consumers.

    Returns ``(optimized_circuit, node_map)`` where ``node_map`` sends every
    node id of the original circuit to its representative in the optimized
    one.  Deduplication is applied iteratively in topological order, so gates
    that become identical only after their sources were merged are also
    merged.
    """
    new_circuit = ThresholdCircuit(circuit.n_inputs, name=circuit.name)
    new_circuit.metadata = dict(circuit.metadata)
    n_inputs = circuit.n_inputs
    node_map: Dict[int, int] = {i: i for i in range(n_inputs)}
    if circuit.size == 0:
        if circuit.outputs:
            new_circuit.set_outputs(
                [node_map[o] for o in circuit.outputs], circuit.output_labels
            )
        return new_circuit, node_map

    cols = circuit.columnar()
    store = circuit.store
    src_list = cols.sources.tolist()
    wts_list = cols.weights.tolist()
    off_list = cols.offsets.tolist()
    thr_list = cols.thresholds.tolist()
    # new id per old node, inputs prefilled; gates resolved in id order (a
    # gate's sources precede it, so their entries are final when it is read).
    mapped: List[int] = list(range(n_inputs)) + [0] * cols.n_gates
    seen: Dict[tuple, int] = {}
    kept_rows: List[Tuple[List[int], List[int], int]] = []
    kept_tags: List[str] = []
    tag_codes = cols.tag_codes.tolist()
    for i in range(cols.n_gates):
        lo, hi = off_list[i], off_list[i + 1]
        srcs = [mapped[s] for s in src_list[lo:hi]]
        wts = wts_list[lo:hi]
        if len(set(srcs)) != len(srcs):
            # Sources merged by deduplication collapse within the row,
            # exactly like the Gate constructor would canonicalize them.
            srcs_t, wts_t = canonical_parts(srcs, wts)
            srcs, wts = list(srcs_t), list(wts_t)
        key = (tuple(srcs), tuple(wts), thr_list[i])
        new_id = seen.get(key)
        if new_id is None:
            new_id = n_inputs + len(kept_rows)
            seen[key] = new_id
            kept_rows.append((srcs, wts, thr_list[i]))
            kept_tags.append(store.tag_of_code(tag_codes[i]))
        mapped[n_inputs + i] = new_id

    _emit_bulk(new_circuit, kept_rows, kept_tags)
    node_map = dict(enumerate(mapped))
    if circuit.outputs:
        new_circuit.set_outputs(
            [node_map[o] for o in circuit.outputs], circuit.output_labels
        )
    return new_circuit, node_map


def eliminate_dead_gates(circuit: ThresholdCircuit) -> Tuple[ThresholdCircuit, Dict[int, int]]:
    """Remove gates that no declared output depends on.

    Requires the circuit to declare outputs; inputs are always kept so the
    wire layout of encodings remains valid.  Reachability is resolved layer
    by layer (deepest first) with array gathers over the columnar store.
    """
    if not circuit.outputs:
        raise ValueError("dead-gate elimination requires declared outputs")

    n_inputs = circuit.n_inputs
    new_circuit = ThresholdCircuit(n_inputs, name=circuit.name)
    new_circuit.metadata = dict(circuit.metadata)
    node_map: Dict[int, int] = {i: i for i in range(n_inputs)}
    if circuit.size == 0:
        new_circuit.set_outputs(
            [node_map[o] for o in circuit.outputs], circuit.output_labels
        )
        return new_circuit, node_map

    cols = circuit.columnar()
    fan_ins = cols.fan_ins()
    depths = circuit.gate_depths()
    needed = np.zeros(circuit.n_nodes, dtype=bool)
    needed[np.asarray(circuit.outputs, dtype=np.int64)] = True
    order, _, starts, ends = group_by_depth(depths)
    # Deepest layer first: a gate's sources always sit in strictly lower
    # layers, so one gather per layer propagates need all the way down.
    for layer_index in range(len(starts) - 1, -1, -1):
        layer = order[starts[layer_index] : ends[layer_index]]
        hot = layer[needed[layer + n_inputs]]
        if hot.size:
            wires = gather_ranges(cols.offsets[hot], fan_ins[hot])
            needed[cols.sources[wires]] = True

    kept = np.nonzero(needed[n_inputs:])[0]
    new_ids = np.empty(circuit.n_nodes, dtype=np.int64)
    new_ids[:n_inputs] = np.arange(n_inputs, dtype=np.int64)
    new_ids[n_inputs + kept] = n_inputs + np.arange(len(kept), dtype=np.int64)
    if kept.size:
        wires = gather_ranges(cols.offsets[kept], fan_ins[kept])
        new_offsets = np.zeros(len(kept) + 1, dtype=np.int64)
        np.cumsum(fan_ins[kept], out=new_offsets[1:])
        store = circuit.store
        tags = [store.tag_of_code(c) for c in cols.tag_codes[kept].tolist()]
        new_circuit.add_gates(
            new_ids[cols.sources[wires]],
            new_offsets,
            cols.weights[wires],
            cols.thresholds[kept],
            tags=tags,
            canonicalize=False,
            validate=False,
            # Dropping unreachable gates never changes a survivor's depth
            # (all of its sources survive), so the recorded depths transfer.
            depths=depths[kept],
        )
    for old_gate in kept.tolist():
        node_map[n_inputs + old_gate] = int(new_ids[n_inputs + old_gate])

    new_circuit.set_outputs(
        [node_map[o] for o in circuit.outputs], circuit.output_labels
    )
    return new_circuit, node_map
