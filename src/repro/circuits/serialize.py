"""JSON (de)serialization of threshold circuits.

The format is deliberately simple so circuits can be exported to other
toolchains (e.g. a neuromorphic compiler) or archived alongside experiment
results:

.. code-block:: json

    {
      "format": "repro-threshold-circuit",
      "version": 1,
      "name": "...",
      "n_inputs": 12,
      "gates": [[ [sources], [weights], threshold, "tag" ], ...],
      "outputs": [17, 18],
      "output_labels": ["C[0][0]+bit0", "..."],
      "metadata": {...}
    }
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.gate import Gate

__all__ = [
    "circuit_to_dict",
    "circuit_from_dict",
    "dump_circuit",
    "load_circuit",
    "structural_digest",
]

_FORMAT = "repro-threshold-circuit"
_VERSION = 1


def structural_digest(circuit: ThresholdCircuit) -> str:
    """Hex digest of the circuit's structure (the execution-engine cache key).

    Two circuits share a digest exactly when they compute the same function
    the same way: equal input count, gate list (sources, weights, thresholds)
    and declared outputs.  Presentation-only fields — ``name``, gate tags,
    output labels, ``metadata`` — are deliberately excluded, so re-building
    the same construction under a different label still hits the compile
    cache.
    """
    payload = {
        "format": _FORMAT,
        "n_inputs": circuit.n_inputs,
        "gates": [
            [list(g.sources), list(g.weights), g.threshold] for g in circuit.gates
        ],
        "outputs": list(circuit.outputs),
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def circuit_to_dict(circuit: ThresholdCircuit) -> dict:
    """Convert a circuit to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "name": circuit.name,
        "n_inputs": circuit.n_inputs,
        "gates": [
            [list(g.sources), list(g.weights), g.threshold, g.tag] for g in circuit.gates
        ],
        "outputs": list(circuit.outputs),
        "output_labels": list(circuit.output_labels),
        "metadata": dict(circuit.metadata),
    }


def circuit_from_dict(payload: dict) -> ThresholdCircuit:
    """Reconstruct a circuit from :func:`circuit_to_dict` output."""
    if payload.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} payload")
    if payload.get("version") != _VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    circuit = ThresholdCircuit(int(payload["n_inputs"]), name=payload.get("name", ""))
    for sources, weights, threshold, tag in payload["gates"]:
        circuit.add_gate(Gate(sources, weights, int(threshold), tag))
    if payload.get("outputs"):
        circuit.set_outputs(payload["outputs"], payload.get("output_labels") or None)
    circuit.metadata = dict(payload.get("metadata", {}))
    return circuit


def dump_circuit(circuit: ThresholdCircuit, path_or_file: Union[str, "object"]) -> None:
    """Serialize a circuit to a JSON file (path or open file object)."""
    payload = circuit_to_dict(circuit)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    else:
        json.dump(payload, path_or_file)


def load_circuit(path_or_file: Union[str, "object"]) -> ThresholdCircuit:
    """Load a circuit previously written by :func:`dump_circuit`."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(path_or_file)
    return circuit_from_dict(payload)
