"""JSON (de)serialization of threshold circuits.

The format is deliberately simple so circuits can be exported to other
toolchains (e.g. a neuromorphic compiler) or archived alongside experiment
results:

.. code-block:: json

    {
      "format": "repro-threshold-circuit",
      "version": 1,
      "name": "...",
      "n_inputs": 12,
      "gates": [[ [sources], [weights], threshold, "tag" ], ...],
      "outputs": [17, 18],
      "output_labels": ["C[0][0]+bit0", "..."],
      "metadata": {...}
    }

Both directions work on the circuit's columnar arrays: export slices plain
Python lists out of one consolidated snapshot (no ``Gate`` objects are
materialized), and import rebuilds the arrays and lands them with a single
bulk ``add_gates`` call.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from typing import List, Union

import numpy as np

from repro.circuits.circuit import ThresholdCircuit

__all__ = [
    "circuit_to_dict",
    "circuit_from_dict",
    "dump_circuit",
    "load_circuit",
    "structural_digest",
]

_FORMAT = "repro-threshold-circuit"
_VERSION = 1


def structural_digest(circuit: ThresholdCircuit) -> str:
    """Hex digest of the circuit's structure (the execution-engine cache key).

    Two circuits share a digest exactly when they compute the same function
    the same way: equal input count, gate list (sources, weights, thresholds)
    and declared outputs.  Presentation-only fields — ``name``, gate tags,
    output labels, ``metadata`` — are deliberately excluded, so re-building
    the same construction under a different label still hits the compile
    cache.

    The digest is computed straight over the columnar arrays (one hash
    update per column, no per-gate loop); circuits holding weights beyond
    int64 fall back to an exact JSON rendering of the same fields.
    """
    cols = circuit.columnar()
    if not cols.int64_ok:
        payload = {
            "format": _FORMAT,
            "n_inputs": circuit.n_inputs,
            "gates": [
                [list(g.sources), list(g.weights), g.threshold]
                for g in circuit.gates
            ],
            "outputs": list(circuit.outputs),
        }
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
    digest = hashlib.sha256()
    digest.update(_FORMAT.encode("utf-8"))
    digest.update(
        struct.pack("<qqq", circuit.n_inputs, cols.n_gates, cols.n_edges)
    )
    digest.update(np.ascontiguousarray(cols.offsets).tobytes())
    digest.update(np.ascontiguousarray(cols.sources).tobytes())
    digest.update(np.ascontiguousarray(cols.weights).tobytes())
    digest.update(np.ascontiguousarray(cols.thresholds).tobytes())
    digest.update(np.asarray(circuit.outputs, dtype=np.int64).tobytes())
    return digest.hexdigest()


def circuit_to_dict(circuit: ThresholdCircuit) -> dict:
    """Convert a circuit to a JSON-compatible dictionary.

    Reads the columnar store directly: the gate rows are sliced out of the
    flat ``sources``/``weights`` lists, so no per-gate objects are built.
    """
    cols = circuit.columnar()
    sources = cols.sources.tolist()
    weights = cols.weights.tolist()
    offsets = cols.offsets.tolist()
    thresholds = cols.thresholds.tolist()
    tags = circuit.store.tags()
    gates = [
        [sources[lo:hi], weights[lo:hi], threshold, tag]
        for lo, hi, threshold, tag in zip(offsets, offsets[1:], thresholds, tags)
    ]
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "name": circuit.name,
        "n_inputs": circuit.n_inputs,
        "gates": gates,
        "outputs": list(circuit.outputs),
        "output_labels": list(circuit.output_labels),
        "metadata": dict(circuit.metadata),
    }


def circuit_from_dict(
    payload: dict, *, validate: bool = True, trusted: bool = False
) -> ThresholdCircuit:
    """Reconstruct a circuit from :func:`circuit_to_dict` output.

    The gate list is flattened into CSR arrays and appended with one bulk
    :meth:`~repro.circuits.circuit.ThresholdCircuit.add_gates` call
    (canonicalization enabled, so hand-written payloads with duplicate
    sources load the same way they would through ``add_gate``).

    By default the reconstructed circuit is statically verified (structure
    and template provenance — the cheap passes) before it is returned, so a
    hand-edited or corrupted payload fails at the load site with a
    :class:`~repro.statics.verifier.StaticVerificationError` instead of
    deep inside a compile.  Pass ``validate=False`` to skip (e.g. when the
    caller runs the full verifier anyway).

    ``trusted=True`` also skips verification, but says *why*: the payload's
    integrity was already established out of band (the disk artifact store
    checksums every bundled file before touching it), so re-validating here
    would be pure double work.  Reserve it for paths with such a guarantee;
    user-supplied files should keep the ``validate=True`` default.
    """
    if payload.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} payload")
    if payload.get("version") != _VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    circuit = ThresholdCircuit(int(payload["n_inputs"]), name=payload.get("name", ""))
    gates = payload["gates"]
    if gates:
        sources: List[int] = []
        weights: List[int] = []
        offsets: List[int] = [0]
        thresholds: List[int] = []
        tags: List[str] = []
        for gate_sources, gate_weights, threshold, tag in gates:
            sources.extend(gate_sources)
            weights.extend(gate_weights)
            offsets.append(len(sources))
            thresholds.append(int(threshold))
            tags.append(tag)
        circuit.add_gates(
            np.asarray(sources, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
            weights,
            thresholds,
            tags=tags,
        )
    if payload.get("outputs"):
        circuit.set_outputs(payload["outputs"], payload.get("output_labels") or None)
    circuit.metadata = dict(payload.get("metadata", {}))
    if validate and not trusted:
        # Imported lazily: repro.statics depends on the simulator, which
        # imports this package.
        from repro.statics import verify_circuit

        verify_circuit(
            circuit,
            intervals=False,
            reachability=False,
            plans=False,
            target=payload.get("name") or "<deserialized circuit>",
        ).raise_if_failed()
    return circuit


def dump_circuit(circuit: ThresholdCircuit, path_or_file: Union[str, "object"]) -> None:
    """Serialize a circuit to a JSON file (path or open file object).

    Writing to a path is atomic: the JSON is staged in a temp file beside
    the target and published with ``os.replace``, so an interrupted dump
    (crash, full disk, ^C) leaves the previous file intact instead of a
    truncated payload that a later :func:`load_circuit` would misreport as
    a corrupt circuit.
    """
    payload = circuit_to_dict(circuit)
    if not isinstance(path_or_file, str):
        json.dump(payload, path_or_file)
        return
    target = os.path.abspath(path_or_file)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp",
        dir=os.path.dirname(target),
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_circuit(
    path_or_file: Union[str, "object"], *, validate: bool = True, trusted: bool = False
) -> ThresholdCircuit:
    """Load a circuit previously written by :func:`dump_circuit`.

    ``validate``/``trusted`` are forwarded to :func:`circuit_from_dict`: by
    default the loaded circuit passes static structure/provenance
    verification; ``trusted=True`` is the checksummed-artifact fast path.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(path_or_file)
    return circuit_from_dict(payload, validate=validate, trusted=trusted)
