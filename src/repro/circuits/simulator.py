"""Vectorized, exact evaluation of threshold circuits.

The simulator compiles a circuit once into per-layer sparse weight matrices
(scipy CSR) and then evaluates whole *batches* of input assignments with one
sparse matrix–matrix product per layer — no Python-level loop over gates, as
recommended by the HPC guides for hot numerical paths.

Exactness: weights and partial sums are integers.  The compiler computes, for
every gate, the worst-case magnitude of its weighted sum; if every gate fits
comfortably in int64 the fast sparse path is used, otherwise evaluation falls
back to an arbitrary-precision gate-by-gate path so results are always exact.

The layer extraction and the overflow analysis are shared with the execution
engine (:mod:`repro.engine`) through :class:`LayerPlan` /
:func:`build_layer_plan`: the plan holds the exact integer weights of every
depth layer plus a single safety verdict, and each backend materializes the
matrices in its own storage format from it.  :func:`simulate` routes through
the default engine, so one-shot callers get the compile cache and backend
auto-selection for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.store import gather_ranges, group_by_depth, segment_sum

__all__ = [
    "CompiledCircuit",
    "LayerPlan",
    "LayerSpec",
    "SimulationResult",
    "build_layer_plan",
    "simulate",
]

_INT64_SAFE_LIMIT = 1 << 62


@dataclass
class LayerSpec:
    """One depth layer of a circuit in COO-like exact-integer form.

    ``rows``/``cols``/``data`` describe the wires of the layer: gate ``rows[i]``
    (an index within the layer) reads node ``cols[i]`` with weight ``data[i]``.
    On the fast path all fields are int64 arrays, sliced straight out of the
    circuit's columnar store; when the circuit's weights overflow int64 the
    exact fallback keeps ``rows``/``data``/``thresholds`` as Python-int lists
    so the plan stays exact.  ``cols`` is always an int64 array because every
    consumer (matrix builders, the spiking evaluator) indexes with it.
    """

    depth: int
    nodes: np.ndarray  # gate node ids of this layer, int64
    rows: Sequence[int]  # int64 array on the fast path
    cols: np.ndarray  # source node id per wire, int64
    data: Sequence[int]  # int64 array on the fast path, Python ints otherwise
    thresholds: Sequence[int]  # likewise

    @property
    def n_gates(self) -> int:
        return len(self.thresholds)


def csr_layer_matrix(spec: LayerSpec, n_nodes: int) -> sparse.csr_matrix:
    """The ``(n_gates, n_nodes)`` CSR weight matrix of one int64-safe layer.

    Shared by :class:`CompiledCircuit` and the engine's sparse backend so the
    sparse lowering exists exactly once.
    """
    return sparse.csr_matrix(
        (
            np.asarray(spec.data, dtype=np.int64),
            (np.asarray(spec.rows, dtype=np.int64), spec.cols),
        ),
        shape=(spec.n_gates, n_nodes),
    )


@dataclass
class LayerPlan:
    """A circuit lowered to per-layer wire lists plus one overflow verdict.

    ``max_magnitude`` is the exact worst case, over all gates, of the
    magnitude of the weighted sum plus threshold; backends derive their
    safety margins from it.  ``int64_safe`` is decided for the *whole*
    circuit before any backend builds a matrix: either every layer is
    materialized in a machine dtype, or none is.  (The old compiler flipped
    the flag mid-compile and left earlier layers holding sparse matrices
    that were never used.)
    """

    n_inputs: int
    n_nodes: int
    int64_safe: bool
    max_magnitude: int
    layers: List[LayerSpec]

    @property
    def float64_exact(self) -> bool:
        """True when every weighted sum is exactly representable in float64.

        Lets the dense backend run on BLAS (float matmul) without losing a
        single bit: all intermediate sums stay below ``2**53``.
        """
        return self.max_magnitude < (1 << 53)


def build_layer_plan(circuit: ThresholdCircuit) -> LayerPlan:
    """Lower a circuit into :class:`LayerSpec` rows and decide int64 safety.

    A circuit is int64-safe when, for every gate, the worst-case magnitude of
    its weighted sum plus its threshold stays comfortably below ``2**63``.
    The fast path slices each depth layer out of the circuit's columnar
    arrays with pure numpy gathers; the safety verdict is first bounded in
    float64, and any circuit whose magnitudes approach the overflow boundary
    (or whose weights already left int64) is re-planned on exact Python ints,
    so huge weights can never silently wrap.
    """
    cols_store = circuit.columnar()
    if not cols_store.int64_ok:
        return _build_layer_plan_gatewise(circuit)

    sources = cols_store.sources
    weights = cols_store.weights
    offsets = cols_store.offsets
    thresholds = cols_store.thresholds
    n_gates = cols_store.n_gates

    if n_gates == 0:
        return LayerPlan(
            n_inputs=circuit.n_inputs,
            n_nodes=circuit.n_nodes,
            int64_safe=True,
            max_magnitude=0,
            layers=[],
        )

    # Overflow analysis.  A float64 bound decides whether the exact int64
    # magnitudes can themselves overflow while being computed: per-wire
    # |weight| <= 2**63 and the float sum's relative error is ~n*2**-52, so
    # staying clearly below 2**61 certifies the int64 arithmetic, with a wide
    # margin to the 2**62 safety limit.  np.abs wraps on INT64_MIN itself
    # (abs(-2**63) is not representable), so that lone value goes gatewise.
    int64_min = np.iinfo(np.int64).min
    if (
        (weights.size and int(weights.min()) == int64_min)
        or (thresholds.size and int(thresholds.min()) == int64_min)
    ):
        return _build_layer_plan_gatewise(circuit)
    abs_weights = np.abs(weights)
    float_mag = segment_sum(abs_weights.astype(np.float64), offsets)
    float_total = float_mag + np.abs(thresholds).astype(np.float64)
    if float(float_total.max()) >= float(1 << 61):
        return _build_layer_plan_gatewise(circuit)
    magnitudes = segment_sum(abs_weights, offsets) + np.abs(thresholds)
    max_magnitude = int(magnitudes.max())

    order, sorted_depths, starts, ends = group_by_depth(circuit.gate_depths())

    fan_ins = np.diff(offsets)
    specs: List[LayerSpec] = []
    for start, end in zip(starts, ends):
        gate_idx = order[start:end]  # ascending node order within the layer
        layer_fan = fan_ins[gate_idx]
        rows = np.repeat(np.arange(len(gate_idx), dtype=np.int64), layer_fan)
        # Gather the wire slices of the layer's gates: for each gate, the
        # range offsets[g] .. offsets[g+1] — materialized as one index array.
        wire_idx = gather_ranges(offsets[gate_idx], layer_fan)
        specs.append(
            LayerSpec(
                depth=int(sorted_depths[start]),
                nodes=gate_idx + circuit.n_inputs,
                rows=rows,
                cols=sources[wire_idx],
                data=weights[wire_idx],
                thresholds=thresholds[gate_idx],
            )
        )
    return LayerPlan(
        n_inputs=circuit.n_inputs,
        n_nodes=circuit.n_nodes,
        int64_safe=max_magnitude < _INT64_SAFE_LIMIT,
        max_magnitude=max_magnitude,
        layers=specs,
    )


def _build_layer_plan_gatewise(circuit: ThresholdCircuit) -> LayerPlan:
    """Exact per-gate planning for circuits beyond the int64 fast path."""
    layers_by_depth = circuit.gates_by_depth()
    specs: List[LayerSpec] = []
    max_magnitude = 0
    for depth in sorted(layers_by_depth):
        gate_nodes = layers_by_depth[depth]
        rows: List[int] = []
        cols: List[int] = []
        data: List[int] = []
        thresholds: List[int] = []
        for row, node in enumerate(gate_nodes):
            gate = circuit.gate_of(node)
            rows.extend([row] * gate.fan_in)
            cols.extend(gate.sources)
            data.extend(gate.weights)
            thresholds.append(gate.threshold)
        magnitudes = [0] * len(gate_nodes)
        for row, weight in zip(rows, data):
            magnitudes[row] += abs(weight)
        for magnitude, threshold in zip(magnitudes, thresholds):
            total = magnitude + abs(threshold)
            if total > max_magnitude:
                max_magnitude = total
        specs.append(
            LayerSpec(
                depth=depth,
                nodes=np.asarray(gate_nodes, dtype=np.int64),
                rows=rows,
                cols=np.asarray(cols, dtype=np.int64),
                data=data,
                thresholds=thresholds,
            )
        )
    return LayerPlan(
        n_inputs=circuit.n_inputs,
        n_nodes=circuit.n_nodes,
        int64_safe=max_magnitude < _INT64_SAFE_LIMIT,
        max_magnitude=max_magnitude,
        layers=specs,
    )


def check_batch_inputs(circuit: ThresholdCircuit, inputs: np.ndarray) -> None:
    """Validate a ``(n_inputs, batch)`` array of 0/1 values for a circuit."""
    if inputs.shape[0] != circuit.n_inputs:
        raise ValueError(
            f"expected {circuit.n_inputs} input rows, got {inputs.shape[0]}"
        )
    if inputs.size and not np.isin(inputs, (0, 1)).all():
        raise ValueError("circuit inputs must be 0/1")


@dataclass
class SimulationResult:
    """Result of evaluating a circuit on a batch of inputs.

    Attributes
    ----------
    node_values:
        Array of shape ``(n_nodes, batch)`` with the 0/1 value of every node.
    outputs:
        Array of shape ``(n_outputs, batch)`` with the declared outputs.
    energy:
        Array of shape ``(batch,)``: the number of gates that *fire* (output
        1) on each input — the energy measure of the paper's Section 6 open
        problem (Uchizawa et al. model).
    """

    node_values: np.ndarray
    outputs: np.ndarray
    energy: np.ndarray


class CompiledCircuit:
    """A circuit compiled to layered sparse matrices for batched evaluation."""

    def __init__(self, circuit: ThresholdCircuit) -> None:
        self.circuit = circuit
        self._layers: List[dict] = []
        self._int64_safe = True
        self._compile()

    # ---------------------------------------------------------------- compile
    def _compile(self) -> None:
        plan = build_layer_plan(self.circuit)
        self._int64_safe = plan.int64_safe
        for spec in plan.layers:
            if plan.int64_safe:
                matrix = csr_layer_matrix(spec, plan.n_nodes)
                threshold_arr = np.asarray(spec.thresholds, dtype=np.int64)
            else:
                # The exact gate-by-gate path never reads the matrices, so an
                # unsafe circuit keeps none of them (satellite fix: previously
                # layers compiled before the flag flipped held dead matrices).
                matrix = None
                threshold_arr = np.zeros(spec.n_gates, dtype=np.int64)
            self._layers.append(
                {
                    "nodes": spec.nodes,
                    "matrix": matrix,
                    "thresholds": threshold_arr,
                }
            )

    @property
    def uses_fast_path(self) -> bool:
        """True when all gates fit in int64 and the sparse path is active."""
        return self._int64_safe

    # --------------------------------------------------------------- evaluate
    def evaluate(self, inputs: np.ndarray) -> SimulationResult:
        """Evaluate the circuit on one input vector or a batch of them.

        Parameters
        ----------
        inputs:
            Array of shape ``(n_inputs,)`` or ``(n_inputs, batch)`` with 0/1
            values.
        """
        circuit = self.circuit
        inputs = np.asarray(inputs)
        squeeze = inputs.ndim == 1
        if squeeze:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        batch = inputs.shape[1]

        if self._int64_safe:
            node_values = self._evaluate_fast(inputs, batch)
        else:
            node_values = self._evaluate_exact(inputs, batch)

        outputs = (
            node_values[circuit.outputs, :]
            if circuit.outputs
            else np.zeros((0, batch), dtype=np.int8)
        )
        energy = node_values[circuit.n_inputs :, :].sum(axis=0).astype(np.int64)
        if squeeze:
            return SimulationResult(node_values[:, 0], outputs[:, 0], energy[0])
        return SimulationResult(node_values, outputs, energy)

    def _evaluate_fast(self, inputs: np.ndarray, batch: int) -> np.ndarray:
        circuit = self.circuit
        node_values = np.zeros((circuit.n_nodes, batch), dtype=np.int64)
        node_values[: circuit.n_inputs, :] = inputs
        for layer in self._layers:
            sums = layer["matrix"] @ node_values
            fired = sums >= layer["thresholds"][:, None]
            node_values[layer["nodes"], :] = fired
        return node_values.astype(np.int8)

    def _evaluate_exact(self, inputs: np.ndarray, batch: int) -> np.ndarray:
        # Arbitrary-precision fallback: slower, but never overflows.
        circuit = self.circuit
        node_values = np.zeros((circuit.n_nodes, batch), dtype=np.int8)
        node_values[: circuit.n_inputs, :] = inputs
        for column in range(batch):
            values = circuit.evaluate_slow(list(inputs[:, column]))
            node_values[:, column] = values
        return node_values


def simulate(
    circuit: ThresholdCircuit, inputs: np.ndarray, engine=None
) -> SimulationResult:
    """One-shot convenience wrapper, routed through the execution engine.

    Repeated calls on structurally identical circuits hit the engine's
    compile cache instead of recompiling; pass ``engine`` to use a private
    :class:`~repro.engine.Engine` instead of the process-wide default.
    """
    from repro.engine import default_engine

    eng = engine if engine is not None else default_engine()
    return eng.evaluate(circuit, inputs)
