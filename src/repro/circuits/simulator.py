"""Vectorized, exact evaluation of threshold circuits.

The simulator compiles a circuit once into per-layer sparse weight matrices
(scipy CSR) and then evaluates whole *batches* of input assignments with one
sparse matrix–matrix product per layer — no Python-level loop over gates, as
recommended by the HPC guides for hot numerical paths.

Exactness: weights and partial sums are integers.  The compiler computes, for
every gate, the worst-case magnitude of its weighted sum; if every gate fits
comfortably in int64 the fast sparse path is used, otherwise evaluation falls
back to an arbitrary-precision gate-by-gate path so results are always exact.

The layer extraction and the overflow analysis are shared with the execution
engine (:mod:`repro.engine`) through :class:`LayerPlan` /
:func:`build_layer_plan`: the plan holds the exact integer weights of every
depth layer plus a single safety verdict, and each backend materializes the
matrices in its own storage format from it.  :func:`simulate` routes through
the default engine, so one-shot callers get the compile cache and backend
auto-selection for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.store import csr_max_magnitude, iter_depth_layers

__all__ = [
    "CompiledCircuit",
    "LayerPlan",
    "LayerSpec",
    "ResidualLayer",
    "ResidualSegment",
    "SimulationResult",
    "TemplatePlan",
    "build_layer_plan",
    "build_template_plan",
    "simulate",
]

_INT64_SAFE_LIMIT = 1 << 62


@dataclass
class LayerSpec:
    """One depth layer of a circuit in COO-like exact-integer form.

    ``rows``/``cols``/``data`` describe the wires of the layer: gate ``rows[i]``
    (an index within the layer) reads node ``cols[i]`` with weight ``data[i]``.
    On the fast path all fields are int64 arrays, sliced straight out of the
    circuit's columnar store; when the circuit's weights overflow int64 the
    exact fallback keeps ``rows``/``data``/``thresholds`` as Python-int lists
    so the plan stays exact.  ``cols`` is always an int64 array because every
    consumer (matrix builders, the spiking evaluator) indexes with it.
    """

    depth: int
    nodes: np.ndarray  # gate node ids of this layer, int64
    rows: Sequence[int]  # int64 array on the fast path
    cols: np.ndarray  # source node id per wire, int64
    data: Sequence[int]  # int64 array on the fast path, Python ints otherwise
    thresholds: Sequence[int]  # likewise

    @property
    def n_gates(self) -> int:
        return len(self.thresholds)


def csr_layer_matrix(spec: LayerSpec, n_nodes: int) -> sparse.csr_matrix:
    """The ``(n_gates, n_nodes)`` CSR weight matrix of one int64-safe layer.

    Shared by :class:`CompiledCircuit` and the engine's sparse backend so the
    sparse lowering exists exactly once.
    """
    return sparse.csr_matrix(
        (
            np.asarray(spec.data, dtype=np.int64),
            (np.asarray(spec.rows, dtype=np.int64), spec.cols),
        ),
        shape=(spec.n_gates, n_nodes),
    )


@dataclass
class LayerPlan:
    """A circuit lowered to per-layer wire lists plus one overflow verdict.

    ``max_magnitude`` is the exact worst case, over all gates, of the
    magnitude of the weighted sum plus threshold; backends derive their
    safety margins from it.  ``int64_safe`` is decided for the *whole*
    circuit before any backend builds a matrix: either every layer is
    materialized in a machine dtype, or none is.  (The old compiler flipped
    the flag mid-compile and left earlier layers holding sparse matrices
    that were never used.)
    """

    n_inputs: int
    n_nodes: int
    int64_safe: bool
    max_magnitude: int
    layers: List[LayerSpec]

    @property
    def float64_exact(self) -> bool:
        """True when every weighted sum is exactly representable in float64.

        Lets the dense backend run on BLAS (float matmul) without losing a
        single bit: all intermediate sums stay below ``2**53``.
        """
        return self.max_magnitude < (1 << 53)


def build_layer_plan(circuit: ThresholdCircuit) -> LayerPlan:
    """Lower a circuit into :class:`LayerSpec` rows and decide int64 safety.

    A circuit is int64-safe when, for every gate, the worst-case magnitude of
    its weighted sum plus its threshold stays comfortably below ``2**63``.
    The fast path slices each depth layer out of the circuit's columnar
    arrays with pure numpy gathers; the safety verdict comes from the shared
    :func:`~repro.circuits.store.csr_max_magnitude` rule (float64-certified
    int64 arithmetic, exact Python-int fallback near the boundary), and a
    circuit whose weights already left int64 is planned gatewise on exact
    Python ints, so huge weights can never silently wrap.
    """
    cols_store = circuit.columnar()
    if not cols_store.int64_ok:
        return _build_layer_plan_gatewise(circuit)

    sources = cols_store.sources
    weights = cols_store.weights
    offsets = cols_store.offsets
    thresholds = cols_store.thresholds
    n_gates = cols_store.n_gates

    if n_gates == 0:
        return LayerPlan(
            n_inputs=circuit.n_inputs,
            n_nodes=circuit.n_nodes,
            int64_safe=True,
            max_magnitude=0,
            layers=[],
        )

    # Overflow analysis: the one exact rule in store.csr_max_magnitude
    # (float64-certified int64 fast lane, exact Python-int fallback near the
    # boundary), shared with the template compiler so both plan forms derive
    # identical safety verdicts.
    max_magnitude = csr_max_magnitude(weights, offsets, thresholds, True)

    specs: List[LayerSpec] = []
    for depth, gate_idx, wire_idx, layer_fan in iter_depth_layers(
        circuit.gate_depths(), offsets
    ):
        # gate_idx is in ascending node order within the layer; wire_idx
        # gathers each gate's offsets[g] .. offsets[g+1] range in that order.
        rows = np.repeat(np.arange(len(gate_idx), dtype=np.int64), layer_fan)
        specs.append(
            LayerSpec(
                depth=depth,
                nodes=gate_idx + circuit.n_inputs,
                rows=rows,
                cols=sources[wire_idx],
                data=weights[wire_idx],
                thresholds=thresholds[gate_idx],
            )
        )
    return LayerPlan(
        n_inputs=circuit.n_inputs,
        n_nodes=circuit.n_nodes,
        int64_safe=max_magnitude < _INT64_SAFE_LIMIT,
        max_magnitude=max_magnitude,
        layers=specs,
    )


def _build_layer_plan_gatewise(circuit: ThresholdCircuit) -> LayerPlan:
    """Exact per-gate planning for circuits beyond the int64 fast path."""
    layers_by_depth = circuit.gates_by_depth()
    specs: List[LayerSpec] = []
    max_magnitude = 0
    for depth in sorted(layers_by_depth):
        gate_nodes = layers_by_depth[depth]
        rows: List[int] = []
        cols: List[int] = []
        data: List[int] = []
        thresholds: List[int] = []
        for row, node in enumerate(gate_nodes):
            gate = circuit.gate_of(node)
            rows.extend([row] * gate.fan_in)
            cols.extend(gate.sources)
            data.extend(gate.weights)
            thresholds.append(gate.threshold)
        magnitudes = [0] * len(gate_nodes)
        for row, weight in zip(rows, data):
            magnitudes[row] += abs(weight)
        for magnitude, threshold in zip(magnitudes, thresholds):
            total = magnitude + abs(threshold)
            if total > max_magnitude:
                max_magnitude = total
        specs.append(
            LayerSpec(
                depth=depth,
                nodes=np.asarray(gate_nodes, dtype=np.int64),
                rows=rows,
                cols=np.asarray(cols, dtype=np.int64),
                data=data,
                thresholds=thresholds,
            )
        )
    return LayerPlan(
        n_inputs=circuit.n_inputs,
        n_nodes=circuit.n_nodes,
        int64_safe=max_magnitude < _INT64_SAFE_LIMIT,
        max_magnitude=max_magnitude,
        layers=specs,
    )


# --------------------------------------------------------------------------
# Template-streaming compilation: the paper's constructions stamp a small set
# of lemma gadgets thousands of times, so most of a circuit's gates are k
# translated copies of a template whose layer structure is known once.  A
# TemplatePlan keeps that factorization: one compiled layer plan per
# template (local CSR over parameter slots + local gates) plus the per-stamp
# parameter rows, and thin "residual" segments for the gates that were
# emitted outside any stamp.  Backends tile the template layers across the
# stamps at evaluation time, so compiling skips the consolidated-CSR
# re-gather (and the per-layer sparse-matrix builds) of build_layer_plan
# entirely.
# --------------------------------------------------------------------------


@dataclass
class ResidualLayer:
    """One depth layer of a residual (non-stamped) gate run, in COO form.

    ``offsets`` are per-gate CSR offsets into ``cols``/``data`` (local to
    the layer), so backends can evaluate the layer with one gather plus a
    segment reduction — no per-layer matrix over all ``n_nodes`` columns is
    ever materialized for these thin runs.
    """

    depth: int
    nodes: np.ndarray  # gate node ids, int64, ascending
    cols: np.ndarray  # source node id per wire, int64
    data: Sequence[int]  # weights (int64 array on the fast path)
    offsets: np.ndarray  # int64[n_gates + 1]
    thresholds: Sequence[int]


@dataclass
class ResidualSegment:
    """A maximal run of gates not covered by any template block."""

    layers: List[ResidualLayer]


@dataclass
class TemplatePlan:
    """A circuit factorized into template blocks plus residual runs.

    Semantically equivalent to the :class:`LayerPlan` of the same circuit
    (same overflow verdict, bit-identical evaluation on every backend);
    segments — the circuit's validated
    :class:`~repro.circuits.template.TemplateBlock` records interleaved
    with :class:`ResidualSegment` runs — are ordered by node id, which is a
    topological order because gates only ever reference earlier nodes.
    For a template block, copy ``i`` occupies node ids ``base + i *
    n_gates ..`` and the template's relative-depth layers are a valid
    evaluation order for every copy.
    """

    n_inputs: int
    n_nodes: int
    outputs: List[int]
    int64_safe: bool
    max_magnitude: int
    covered_gates: int
    size: int
    segments: List[object] = field(default_factory=list)

    @property
    def float64_exact(self) -> bool:
        """Same BLAS-safety rule as :attr:`LayerPlan.float64_exact`."""
        return self.max_magnitude < (1 << 53)


def _residual_segment(circuit, cols, depths, start, stop):
    """Lower gates ``start:stop`` (a contiguous run) into depth-grouped COO.

    Returns ``(segment, max_magnitude)``.  Only the run's own wire slice is
    touched — for template-heavy circuits that is a vanishing fraction of
    the edges.
    """
    lo, hi = int(cols.offsets[start]), int(cols.offsets[stop])
    run_sources = cols.sources[lo:hi]
    run_weights = cols.weights[lo:hi]
    run_offsets = cols.offsets[start : stop + 1] - lo
    run_thresholds = cols.thresholds[start:stop]
    magnitude = csr_max_magnitude(
        run_weights, run_offsets, run_thresholds, cols.int64_ok
    )
    layers: List[ResidualLayer] = []
    for depth, gate_idx, wire_idx, layer_fan in iter_depth_layers(
        depths[start:stop], run_offsets
    ):
        # gate_idx is run-local (ascending); rebase to absolute node ids.
        seg_offsets = np.zeros(len(gate_idx) + 1, dtype=np.int64)
        np.cumsum(layer_fan, out=seg_offsets[1:])
        layers.append(
            ResidualLayer(
                depth=depth,
                nodes=gate_idx + start + circuit.n_inputs,
                cols=run_sources[wire_idx],
                data=run_weights[wire_idx],
                offsets=seg_offsets,
                thresholds=run_thresholds[gate_idx],
            )
        )
    return ResidualSegment(layers), magnitude


def build_template_plan(
    circuit: ThresholdCircuit, min_cover: float = 0.0
) -> Optional[TemplatePlan]:
    """Factorize a circuit into template blocks + residual runs, if it can.

    Returns ``None`` — the caller falls back to :func:`build_layer_plan` —
    when the circuit carries no template provenance, when the recorded
    blocks cover less than ``min_cover`` of the gates, or when the records
    do not tile the gate range consistently (stale or foreign provenance is
    never trusted over the columnar store).
    """
    blocks = getattr(circuit, "template_blocks", None)
    size = circuit.size
    if not blocks or size == 0:
        return None
    compiled_blocks = []
    covered = 0
    for block in blocks:
        if block.k == 0:
            continue
        compiled = block.template  # a CompiledTemplate (slim, wire-carrying)
        if compiled is None or compiled.n_gates == 0:
            return None
        params = block.params
        # Provenance is never trusted over the columnar store: parameter
        # rows must be well-shaped and reference only nodes preceding the
        # block, or the whole factorization is refused.
        if (
            params.ndim != 2
            or params.shape[1] != compiled.n_params
            or (params.size and int(params.min()) < 0)
            or (params.size and int(params.max()) >= block.base)
        ):
            return None
        covered += block.k * compiled.n_gates
        compiled_blocks.append((block, compiled))
    if covered < min_cover * size:
        return None
    compiled_blocks.sort(key=lambda pair: pair[0].base)

    n_inputs = circuit.n_inputs
    depths = circuit.gate_depths()
    cols = circuit.columnar()
    segments: List[object] = []
    max_magnitude = 0
    cursor = 0  # gate index (node id - n_inputs)
    for block, compiled in compiled_blocks:
        first = block.base - n_inputs
        length = block.k * compiled.n_gates
        if first < cursor or first + length > size:
            return None  # overlapping or out-of-range provenance
        if first > cursor:
            segment, magnitude = _residual_segment(
                circuit, cols, depths, cursor, first
            )
            segments.append(segment)
            if magnitude > max_magnitude:
                max_magnitude = magnitude
        segments.append(block)  # the validated TemplateBlock, as-is
        if compiled.max_magnitude > max_magnitude:
            max_magnitude = compiled.max_magnitude
        cursor = first + length
    if cursor < size:
        segment, magnitude = _residual_segment(circuit, cols, depths, cursor, size)
        segments.append(segment)
        if magnitude > max_magnitude:
            max_magnitude = magnitude
    return TemplatePlan(
        n_inputs=n_inputs,
        n_nodes=circuit.n_nodes,
        outputs=list(circuit.outputs),
        int64_safe=max_magnitude < _INT64_SAFE_LIMIT,
        max_magnitude=max_magnitude,
        covered_gates=covered,
        size=size,
        segments=segments,
    )


def check_batch_inputs(circuit: ThresholdCircuit, inputs: np.ndarray) -> None:
    """Validate a ``(n_inputs, batch)`` array of 0/1 values for a circuit."""
    if inputs.shape[0] != circuit.n_inputs:
        raise ValueError(
            f"expected {circuit.n_inputs} input rows, got {inputs.shape[0]}"
        )
    if inputs.size and not np.isin(inputs, (0, 1)).all():
        raise ValueError("circuit inputs must be 0/1")


@dataclass
class SimulationResult:
    """Result of evaluating a circuit on a batch of inputs.

    Attributes
    ----------
    node_values:
        Array of shape ``(n_nodes, batch)`` with the 0/1 value of every node.
    outputs:
        Array of shape ``(n_outputs, batch)`` with the declared outputs.
    energy:
        Array of shape ``(batch,)``: the number of gates that *fire* (output
        1) on each input — the energy measure of the paper's Section 6 open
        problem (Uchizawa et al. model).
    """

    node_values: np.ndarray
    outputs: np.ndarray
    energy: np.ndarray


class CompiledCircuit:
    """A circuit compiled to layered sparse matrices for batched evaluation.

    Circuits carrying template provenance (built through the gadget
    stamper) compile via the template-streaming path instead: one layer
    plan per template, tiled across stamps at evaluation time.  Both forms
    are bit-identical; ``uses_fast_path`` keeps its meaning (int64-safe).
    ``config`` (an :class:`~repro.engine.config.EngineConfig`) governs the
    same two template knobs the engine honors — pass
    ``EngineConfig(template_compile=False)`` to force the classic CSR
    compile.
    """

    def __init__(self, circuit: ThresholdCircuit, config=None) -> None:
        self.circuit = circuit
        self._layers: List[dict] = []
        self._int64_safe = True
        self._template_program = None
        self._compile(config)

    # ---------------------------------------------------------------- compile
    def _compile(self, config) -> None:
        # Deferred imports: the program classes live with the engine
        # backends (which import this module), mirroring simulate().
        from repro.engine.backends import SparseBackend, template_plan_for

        template_plan = template_plan_for(self.circuit, config)
        # int64_safe additionally required here (unlike the engine): this
        # class's overflow fallback is the per-column evaluate_slow replay,
        # not the exact backend program.
        if template_plan is not None and template_plan.int64_safe:
            self._template_program = SparseBackend().compile_template(template_plan)
            self._int64_safe = True
            return
        plan = build_layer_plan(self.circuit)
        self._int64_safe = plan.int64_safe
        for spec in plan.layers:
            if plan.int64_safe:
                matrix = csr_layer_matrix(spec, plan.n_nodes)
                threshold_arr = np.asarray(spec.thresholds, dtype=np.int64)
            else:
                # The exact gate-by-gate path never reads the matrices, so an
                # unsafe circuit keeps none of them (satellite fix: previously
                # layers compiled before the flag flipped held dead matrices).
                matrix = None
                threshold_arr = np.zeros(spec.n_gates, dtype=np.int64)
            self._layers.append(
                {
                    "nodes": spec.nodes,
                    "matrix": matrix,
                    "thresholds": threshold_arr,
                }
            )

    @property
    def uses_fast_path(self) -> bool:
        """True when all gates fit in int64 and the sparse path is active."""
        return self._int64_safe

    # --------------------------------------------------------------- evaluate
    def evaluate(self, inputs: np.ndarray) -> SimulationResult:
        """Evaluate the circuit on one input vector or a batch of them.

        Parameters
        ----------
        inputs:
            Array of shape ``(n_inputs,)`` or ``(n_inputs, batch)`` with 0/1
            values.
        """
        circuit = self.circuit
        inputs = np.asarray(inputs)
        squeeze = inputs.ndim == 1
        if squeeze:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        batch = inputs.shape[1]

        if self._int64_safe:
            node_values = self._evaluate_fast(inputs, batch)
        else:
            node_values = self._evaluate_exact(inputs, batch)

        outputs = (
            node_values[circuit.outputs, :]
            if circuit.outputs
            else np.zeros((0, batch), dtype=np.int8)
        )
        energy = node_values[circuit.n_inputs :, :].sum(axis=0).astype(np.int64)
        if squeeze:
            return SimulationResult(node_values[:, 0], outputs[:, 0], energy[0])
        return SimulationResult(node_values, outputs, energy)

    def _evaluate_fast(self, inputs: np.ndarray, batch: int) -> np.ndarray:
        if self._template_program is not None:
            return self._template_program.run(inputs)
        circuit = self.circuit
        node_values = np.zeros((circuit.n_nodes, batch), dtype=np.int64)
        node_values[: circuit.n_inputs, :] = inputs
        for layer in self._layers:
            sums = layer["matrix"] @ node_values
            fired = sums >= layer["thresholds"][:, None]
            node_values[layer["nodes"], :] = fired
        return node_values.astype(np.int8)

    def _evaluate_exact(self, inputs: np.ndarray, batch: int) -> np.ndarray:
        # Arbitrary-precision fallback: slower, but never overflows.
        circuit = self.circuit
        node_values = np.zeros((circuit.n_nodes, batch), dtype=np.int8)
        node_values[: circuit.n_inputs, :] = inputs
        for column in range(batch):
            values = circuit.evaluate_slow(list(inputs[:, column]))
            node_values[:, column] = values
        return node_values


def simulate(
    circuit: ThresholdCircuit, inputs: np.ndarray, engine=None
) -> SimulationResult:
    """One-shot convenience wrapper, routed through the execution engine.

    Repeated calls on structurally identical circuits hit the engine's
    compile cache instead of recompiling; pass ``engine`` to use a private
    :class:`~repro.engine.Engine` instead of the process-wide default.
    """
    from repro.engine import default_engine

    eng = engine if engine is not None else default_engine()
    return eng.evaluate(circuit, inputs)
