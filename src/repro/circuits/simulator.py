"""Vectorized, exact evaluation of threshold circuits.

The simulator compiles a circuit once into per-layer sparse weight matrices
(scipy CSR) and then evaluates whole *batches* of input assignments with one
sparse matrix–matrix product per layer — no Python-level loop over gates, as
recommended by the HPC guides for hot numerical paths.

Exactness: weights and partial sums are integers.  The compiler computes, for
every gate, the worst-case magnitude of its weighted sum; if every gate fits
comfortably in int64 the fast sparse path is used, otherwise evaluation falls
back to an arbitrary-precision gate-by-gate path so results are always exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import sparse

from repro.circuits.circuit import ThresholdCircuit

__all__ = ["CompiledCircuit", "SimulationResult", "simulate"]

_INT64_SAFE_LIMIT = 1 << 62


@dataclass
class SimulationResult:
    """Result of evaluating a circuit on a batch of inputs.

    Attributes
    ----------
    node_values:
        Array of shape ``(n_nodes, batch)`` with the 0/1 value of every node.
    outputs:
        Array of shape ``(n_outputs, batch)`` with the declared outputs.
    energy:
        Array of shape ``(batch,)``: the number of gates that *fire* (output
        1) on each input — the energy measure of the paper's Section 6 open
        problem (Uchizawa et al. model).
    """

    node_values: np.ndarray
    outputs: np.ndarray
    energy: np.ndarray


class CompiledCircuit:
    """A circuit compiled to layered sparse matrices for batched evaluation."""

    def __init__(self, circuit: ThresholdCircuit) -> None:
        self.circuit = circuit
        self._layers: List[dict] = []
        self._int64_safe = True
        self._compile()

    # ---------------------------------------------------------------- compile
    def _compile(self) -> None:
        circuit = self.circuit
        n_nodes = circuit.n_nodes
        layers = circuit.gates_by_depth()
        for depth in sorted(layers):
            gate_nodes = layers[depth]
            rows: List[int] = []
            cols: List[int] = []
            data: List[int] = []
            thresholds: List[int] = []
            for row, node in enumerate(gate_nodes):
                gate = circuit.gate_of(node)
                rows.extend([row] * gate.fan_in)
                cols.extend(gate.sources)
                data.extend(gate.weights)
                thresholds.append(gate.threshold)
            # Overflow safety check, vectorized: the worst-case |weighted sum|
            # plus |threshold| of every gate must fit comfortably in int64.
            try:
                data_arr = np.asarray(data, dtype=np.int64)
                threshold_probe = np.asarray(thresholds, dtype=np.int64)
            except OverflowError:
                self._int64_safe = False
            if self._int64_safe:
                rows_arr = np.asarray(rows, dtype=np.int64)
                magnitudes = np.zeros(len(gate_nodes), dtype=np.float64)
                if data_arr.size:
                    np.add.at(magnitudes, rows_arr, np.abs(data_arr).astype(np.float64))
                magnitudes += np.abs(threshold_probe.astype(np.float64))
                if magnitudes.size and magnitudes.max() >= float(_INT64_SAFE_LIMIT):
                    self._int64_safe = False
            if self._int64_safe:
                matrix = sparse.csr_matrix(
                    (data_arr, (rows_arr, np.asarray(cols, dtype=np.int64))),
                    shape=(len(gate_nodes), n_nodes),
                )
                threshold_arr = np.asarray(thresholds, dtype=np.int64)
            else:
                matrix = None
                threshold_arr = np.zeros(len(gate_nodes), dtype=np.int64)
            self._layers.append(
                {
                    "nodes": np.asarray(gate_nodes, dtype=np.int64),
                    "matrix": matrix,
                    "thresholds": threshold_arr,
                }
            )

    @property
    def uses_fast_path(self) -> bool:
        """True when all gates fit in int64 and the sparse path is active."""
        return self._int64_safe

    # --------------------------------------------------------------- evaluate
    def evaluate(self, inputs: np.ndarray) -> SimulationResult:
        """Evaluate the circuit on one input vector or a batch of them.

        Parameters
        ----------
        inputs:
            Array of shape ``(n_inputs,)`` or ``(n_inputs, batch)`` with 0/1
            values.
        """
        circuit = self.circuit
        inputs = np.asarray(inputs)
        squeeze = inputs.ndim == 1
        if squeeze:
            inputs = inputs[:, None]
        if inputs.shape[0] != circuit.n_inputs:
            raise ValueError(
                f"expected {circuit.n_inputs} input rows, got {inputs.shape[0]}"
            )
        if inputs.size and not np.isin(inputs, (0, 1)).all():
            raise ValueError("circuit inputs must be 0/1")
        batch = inputs.shape[1]

        if self._int64_safe:
            node_values = self._evaluate_fast(inputs, batch)
        else:
            node_values = self._evaluate_exact(inputs, batch)

        outputs = (
            node_values[circuit.outputs, :]
            if circuit.outputs
            else np.zeros((0, batch), dtype=np.int8)
        )
        energy = node_values[circuit.n_inputs :, :].sum(axis=0).astype(np.int64)
        if squeeze:
            return SimulationResult(node_values[:, 0], outputs[:, 0], energy[0])
        return SimulationResult(node_values, outputs, energy)

    def _evaluate_fast(self, inputs: np.ndarray, batch: int) -> np.ndarray:
        circuit = self.circuit
        node_values = np.zeros((circuit.n_nodes, batch), dtype=np.int64)
        node_values[: circuit.n_inputs, :] = inputs
        for layer in self._layers:
            sums = layer["matrix"] @ node_values
            fired = sums >= layer["thresholds"][:, None]
            node_values[layer["nodes"], :] = fired
        return node_values.astype(np.int8)

    def _evaluate_exact(self, inputs: np.ndarray, batch: int) -> np.ndarray:
        # Arbitrary-precision fallback: slower, but never overflows.
        circuit = self.circuit
        node_values = np.zeros((circuit.n_nodes, batch), dtype=np.int8)
        node_values[: circuit.n_inputs, :] = inputs
        for column in range(batch):
            values = circuit.evaluate_slow(list(inputs[:, column]))
            node_values[:, column] = values
        return node_values


def simulate(circuit: ThresholdCircuit, inputs: np.ndarray) -> SimulationResult:
    """One-shot convenience wrapper: compile and evaluate."""
    return CompiledCircuit(circuit).evaluate(inputs)
