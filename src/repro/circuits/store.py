"""Columnar (structure-of-arrays) storage for threshold-circuit gates.

A circuit with millions of gates cannot afford one Python object per gate:
construction time and memory are then dominated by allocator traffic instead
of the actual wiring work.  :class:`GateStore` keeps the whole gate list in
CSR-style flat arrays —

* ``sources``/``weights``: the concatenated incoming wires of every gate,
* ``offsets``: ``offsets[i]:offsets[i+1]`` slices gate ``i``'s wires,
* ``thresholds``, ``depths``, ``tag_codes``: one entry per gate

— while still supporting cheap incremental appends.  Appends land in small
staging buffers (Python lists for single-gate appends, numpy chunks for bulk
appends) and are consolidated into one contiguous :class:`Columns` snapshot
lazily, the first time array access is requested after a mutation.

Weights and thresholds are stored as int64 whenever every value fits; a
circuit containing a weight outside the int64 range transparently degrades
the whole store to object dtype (exact Python integers), and the vectorized
consumers (stats, structural hashing, layer-plan lowering) fall back to their
per-gate exact paths.  Sources, offsets and depths are always int64 — node
ids and depths cannot overflow it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Columns",
    "GateStore",
    "IntVector",
    "TagTable",
    "accumulate_tag_counts",
    "csr_dirty_rows",
    "csr_max_magnitude",
    "gather_ranges",
    "group_by_depth",
    "iter_depth_layers",
    "int_column",
    "segment_max",
    "segment_sum",
    "validate_csr_sources",
]


def validate_csr_sources(sources, offsets, fan_ins, base, rows) -> None:
    """Shared bounds checks for a CSR gate batch (one rule set, all paths).

    ``rows`` maps each wire to its owning batch row; a source must reference
    a node below ``base + row`` (inputs, earlier gates, or earlier rows of
    the same batch).
    """
    if fan_ins.size and int(fan_ins.min()) < 0:
        raise ValueError("offsets must be nondecreasing")
    if int(offsets[0]) != 0 or int(offsets[-1]) != len(sources):
        raise ValueError("offsets do not cover the wire arrays")
    if sources.size:
        if int(sources.min()) < 0:
            raise ValueError("gate references a negative node id")
        bad = sources >= base + rows
        if bad.any():
            wire = int(np.argmax(bad))
            raise ValueError(
                f"gate {base + int(rows[wire])} references node "
                f"{int(sources[wire])}, but only nodes < "
                f"{base + int(rows[wire])} exist"
            )


def csr_dirty_rows(sources, rows) -> np.ndarray:
    """Batch rows containing duplicate sources (empty array when clean).

    The single duplicate-wire detection shared by the circuit, counting and
    template-recording bulk appends, so canonicalization semantics cannot
    drift between the build and dry-run paths.
    """
    if not len(sources):
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((sources, rows))
    s_sorted = sources[order]
    r_sorted = rows[order]
    dup_wire = (s_sorted[1:] == s_sorted[:-1]) & (r_sorted[1:] == r_sorted[:-1])
    if not dup_wire.any():
        return np.empty(0, dtype=np.int64)
    return np.unique(r_sorted[1:][dup_wire])


def accumulate_tag_counts(counts, tag, n_new, tag_counts=None, decode=None) -> None:
    """Fold one bulk append's tag information into a per-tag counter dict.

    Accepts the four tag input forms of the bulk protocol: an explicit
    ``tag_counts`` mapping, one tag string for the batch, an int32 code
    array (``decode`` maps codes back to strings), or a per-gate sequence of
    strings/codes.
    """
    if tag_counts is not None:
        for t, count in tag_counts.items():
            if t:
                counts[t] = counts.get(t, 0) + count
    elif isinstance(tag, str):
        if tag and n_new:
            counts[tag] = counts.get(tag, 0) + n_new
    elif isinstance(tag, np.ndarray) and tag.dtype == np.int32:
        code_counts = np.bincount(tag)
        for code in np.nonzero(code_counts)[0].tolist():
            t = decode(int(code))
            if t:
                counts[t] = counts.get(t, 0) + int(code_counts[code])
    else:
        for t in tag:
            if not isinstance(t, str):
                t = decode(int(t))
            if t:
                counts[t] = counts.get(t, 0) + 1


class TagTable:
    """Append-only string interner (tag <-> int32 code).

    One implementation shared by the gate store, the template recorder and
    the counting builder, so the three tag protocols cannot drift.
    """

    __slots__ = ("_table", "_index")

    def __init__(self) -> None:
        self._table: List[str] = []
        self._index: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, tag: str) -> int:
        code = self._index.get(tag)
        if code is None:
            code = len(self._table)
            self._index[tag] = code
            self._table.append(tag)
        return code

    def decode(self, code: int) -> str:
        return self._table[code]

    def strings(self) -> List[str]:
        """A copy of the table, index-aligned with the codes."""
        return list(self._table)


class IntVector:
    """A growable int64 array with amortized O(1) append/extend.

    Used for per-gate depths, which need random access *during* construction
    (each new gate reads the depths of its sources) — a plain Python list
    would force an O(n) ``np.asarray`` per bulk append.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, capacity: int = 64) -> None:
        self._data = np.empty(max(int(capacity), 1), dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, needed: int) -> None:
        capacity = len(self._data)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        data = np.empty(capacity, dtype=np.int64)
        data[: self._size] = self._data[: self._size]
        self._data = data

    def append(self, value: int) -> None:
        self._grow_to(self._size + 1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._grow_to(self._size + values.size)
        self._data[self._size : self._size + values.size] = values
        self._size += values.size

    def __getitem__(self, index: int) -> int:
        if not (0 <= index < self._size):
            raise IndexError(index)
        return int(self._data[index])

    def view(self) -> np.ndarray:
        """Read-only window over the live entries (valid until next append)."""
        window = self._data[: self._size]
        window.flags.writeable = False
        return window

    def max(self, default: int = 0) -> int:
        if self._size == 0:
            return default
        return int(self._data[: self._size].max())


def segment_max(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment maximum under CSR offsets; empty segments yield 0."""
    n = len(offsets) - 1
    out = np.zeros(n, dtype=values.dtype)
    nonempty = offsets[:-1] < offsets[1:]
    if values.size and nonempty.any():
        # reduceat over the nonempty starts only: an empty segment has zero
        # width, so skipping its start leaves every remaining segment intact.
        out[nonempty] = np.maximum.reduceat(values, offsets[:-1][nonempty])
    return out


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum along axis 0 under CSR offsets; empty segments yield 0.

    ``values`` may be 1-D (one number per wire) or 2-D (one row per wire,
    e.g. a ``(wires, batch)`` block in the template-tiled evaluators);
    trailing axes are carried through.
    """
    n = len(offsets) - 1
    out = np.zeros((n,) + values.shape[1:], dtype=values.dtype)
    nonempty = offsets[:-1] < offsets[1:]
    if values.size and nonempty.any():
        out[nonempty] = np.add.reduceat(values, offsets[:-1][nonempty], axis=0)
    return out


def csr_max_magnitude(weights, offsets, thresholds, int64_ok: bool = True) -> int:
    """Exact max over gates of ``sum |w| + |threshold|`` (overflow measure).

    One rule shared by the full-circuit layer plan and the per-template
    compile path, so both derive the same int64-safety verdict.  The fast
    lane certifies its int64 arithmetic with a float64 bound (per-wire
    ``|w| <= 2**63`` and relative error ``~n * 2**-52``, so staying clearly
    below ``2**61`` is safe); anything near the boundary — or already beyond
    int64 — is re-summed on exact Python ints.  ``np.abs`` wraps on
    INT64_MIN itself, so that lone value also goes exact.
    """
    n = len(offsets) - 1
    if n == 0:
        return 0
    if int64_ok:
        int64_min = np.iinfo(np.int64).min
        if not (
            (weights.size and int(weights.min()) == int64_min)
            or (thresholds.size and int(thresholds.min()) == int64_min)
        ):
            abs_weights = np.abs(weights)
            float_total = segment_sum(
                abs_weights.astype(np.float64), offsets
            ) + np.abs(thresholds).astype(np.float64)
            if float(float_total.max()) < float(1 << 61):
                return int(
                    (segment_sum(abs_weights, offsets) + np.abs(thresholds)).max()
                )
    wts_list = weights.tolist() if isinstance(weights, np.ndarray) else list(weights)
    off_list = offsets.tolist() if isinstance(offsets, np.ndarray) else list(offsets)
    thr_list = (
        thresholds.tolist() if isinstance(thresholds, np.ndarray) else list(thresholds)
    )
    best = 0
    for i in range(n):
        total = sum(abs(w) for w in wts_list[off_list[i] : off_list[i + 1]])
        total += abs(thr_list[i])
        if total > best:
            best = total
    return best


def gather_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Index array concatenating ``starts[i] .. starts[i]+lens[i]`` in order.

    The standard CSR range-gather (one ``repeat`` plus one ``arange``, no
    Python loop); callers pass ``starts = offsets[selected_rows]`` with the
    selected rows' lengths.
    """
    total = int(lens.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    return np.repeat(
        starts - np.concatenate(([0], np.cumsum(lens[:-1]))), lens
    ) + np.arange(total, dtype=np.int64)


def group_by_depth(depths: np.ndarray):
    """Group gate indices by depth: ``(order, sorted_depths, starts, ends)``.

    ``order[starts[i]:ends[i]]`` are the gate indices of the i-th layer (in
    insertion order — the sort is stable) and ``sorted_depths[starts[i]]`` is
    that layer's depth.  Shared by ``ThresholdCircuit.gates_by_depth`` and
    the simulator's layer-plan lowering.
    """
    order = np.argsort(depths, kind="stable")
    sorted_depths = depths[order]
    boundaries = np.nonzero(np.diff(sorted_depths))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(order)]))
    return order, sorted_depths, starts, ends


def iter_depth_layers(depths: np.ndarray, offsets: np.ndarray):
    """Yield ``(depth, gate_idx, wire_idx, layer_fan)`` per depth layer.

    The single depth-layer lowering shared by the simulator's layer plan,
    the template compiler (residual runs and template-local layers) and the
    spiking activity view — gate indices are ascending within a layer (the
    grouping sort is stable) and ``wire_idx`` gathers each layer's wires in
    gate order, so every consumer sees identical layer ordering by
    construction rather than by parallel maintenance.
    """
    if not len(depths):
        return
    fan_ins = np.diff(offsets)
    order, sorted_depths, starts, ends = group_by_depth(depths)
    for start, end in zip(starts, ends):
        gate_idx = order[start:end]
        layer_fan = fan_ins[gate_idx]
        yield (
            int(sorted_depths[start]),
            gate_idx,
            gather_ranges(offsets[gate_idx], layer_fan),
            layer_fan,
        )


def int_column(values) -> Tuple[np.ndarray, bool]:
    """Materialize ints as int64 when possible, exact object dtype otherwise.

    Accepts sequences of Python ints or numpy arrays; the single coercion
    rule shared by the store's tail flush and the circuit's bulk appends.
    """
    if isinstance(values, np.ndarray) and values.dtype == np.int64:
        return np.ascontiguousarray(values), True
    try:
        return np.ascontiguousarray(np.asarray(values, dtype=np.int64)), True
    except OverflowError:
        seq = [
            int(v)
            for v in (values.tolist() if isinstance(values, np.ndarray) else values)
        ]
        column = np.empty(len(seq), dtype=object)
        column[:] = seq
        return column, False


@dataclass(frozen=True)
class Columns:
    """One consolidated, immutable snapshot of a store's gate arrays."""

    sources: np.ndarray  # int64[n_edges]
    weights: np.ndarray  # int64[n_edges] (object dtype iff not int64_ok)
    offsets: np.ndarray  # int64[n_gates + 1]
    thresholds: np.ndarray  # int64[n_gates] (object dtype iff not int64_ok)
    tag_codes: np.ndarray  # int32[n_gates], indices into the store's tag table
    int64_ok: bool

    @property
    def n_gates(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        return len(self.sources)

    def fan_ins(self) -> np.ndarray:
        return np.diff(self.offsets)


@dataclass
class _Chunk:
    """One already-columnar run of gates (a bulk append or a flushed tail)."""

    sources: np.ndarray
    weights: np.ndarray
    fan_ins: np.ndarray
    thresholds: np.ndarray
    tag_codes: np.ndarray
    int64_ok: bool


class GateStore:
    """Append-only columnar gate storage with lazy consolidation."""

    def __init__(self) -> None:
        self._chunks: List[_Chunk] = []
        # Staging buffers for single-gate appends.
        self._tail_sources: List[int] = []
        self._tail_weights: List[int] = []
        self._tail_fan_ins: List[int] = []
        self._tail_thresholds: List[int] = []
        self._tail_tag_codes: List[int] = []
        # Depths are kept materialized: add_gate/add_gates read them randomly.
        self.depths = IntVector()
        # Tag interning: one short string per construction site, shared.
        self._tags = TagTable()
        # Incrementally tracked totals (no consolidation needed for stats).
        self._n_gates = 0
        self._n_edges = 0
        self._max_fan_in = 0
        self._max_depth = 0
        self._columns: Optional[Columns] = None

    # ------------------------------------------------------------------ sizes
    @property
    def n_gates(self) -> int:
        return self._n_gates

    @property
    def n_edges(self) -> int:
        return self._n_edges

    @property
    def max_fan_in(self) -> int:
        return self._max_fan_in

    @property
    def max_depth(self) -> int:
        return self._max_depth

    # ------------------------------------------------------------------- tags
    def intern_tag(self, tag: str) -> int:
        return self._tags.intern(tag)

    def tag_of_code(self, code: int) -> str:
        return self._tags.decode(code)

    # ---------------------------------------------------------------- appends
    def append(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str,
        depth: int,
    ) -> None:
        """Append one canonical gate (caller validated sources and depth)."""
        self._tail_sources.extend(sources)
        self._tail_weights.extend(weights)
        self._tail_fan_ins.append(len(sources))
        self._tail_thresholds.append(threshold)
        self._tail_tag_codes.append(self.intern_tag(tag))
        self.depths.append(depth)
        self._n_gates += 1
        self._n_edges += len(sources)
        if len(sources) > self._max_fan_in:
            self._max_fan_in = len(sources)
        if depth > self._max_depth:
            self._max_depth = depth
        self._columns = None

    def extend(
        self,
        sources: np.ndarray,
        weights: np.ndarray,
        fan_ins: np.ndarray,
        thresholds: np.ndarray,
        tag_codes: np.ndarray,
        depths: np.ndarray,
        int64_ok: bool = True,
    ) -> None:
        """Append a bulk chunk of gates (arrays validated by the circuit)."""
        self._flush_tail()
        self._chunks.append(
            _Chunk(
                sources=sources,
                weights=weights,
                fan_ins=fan_ins,
                thresholds=thresholds,
                tag_codes=tag_codes,
                int64_ok=int64_ok,
            )
        )
        self.depths.extend(depths)
        self._n_gates += len(fan_ins)
        self._n_edges += len(sources)
        if fan_ins.size:
            self._max_fan_in = max(self._max_fan_in, int(fan_ins.max()))
        if depths.size:
            self._max_depth = max(self._max_depth, int(depths.max()))
        self._columns = None

    def _flush_tail(self) -> None:
        if not self._tail_fan_ins:
            return
        sources = np.asarray(self._tail_sources, dtype=np.int64)
        weights, weights_ok = int_column(self._tail_weights)
        thresholds, thresholds_ok = int_column(self._tail_thresholds)
        self._chunks.append(
            _Chunk(
                sources=sources,
                weights=weights,
                fan_ins=np.asarray(self._tail_fan_ins, dtype=np.int64),
                thresholds=thresholds,
                tag_codes=np.asarray(self._tail_tag_codes, dtype=np.int32),
                int64_ok=weights_ok and thresholds_ok,
            )
        )
        self._tail_sources = []
        self._tail_weights = []
        self._tail_fan_ins = []
        self._tail_thresholds = []
        self._tail_tag_codes = []

    # ------------------------------------------------------------ consolidate
    def columns(self) -> Columns:
        """The consolidated snapshot, rebuilt only after mutations.

        Consolidation merges all chunks into one, so repeated reads between
        mutations are free.  A read after a mutation re-concatenates the
        merged chunk with the new data — O(total) per such read — so strict
        one-append-one-read interleaving is quadratic; construction code
        appends in batches and reads once at the end, where this is linear.
        """
        if self._columns is not None:
            return self._columns
        self._flush_tail()
        chunks = self._chunks
        int64_ok = all(c.int64_ok for c in chunks)

        def _concat(arrays: List[np.ndarray], dtype) -> np.ndarray:
            if not arrays:
                return np.empty(0, dtype=dtype)
            if len(arrays) == 1:
                return arrays[0] if arrays[0].dtype == dtype else arrays[0].astype(dtype)
            return np.concatenate([a.astype(dtype) if a.dtype != dtype else a for a in arrays])

        value_dtype = np.int64 if int64_ok else object
        sources = _concat([c.sources for c in chunks], np.int64)
        weights = _concat([c.weights for c in chunks], value_dtype)
        thresholds = _concat([c.thresholds for c in chunks], value_dtype)
        fan_ins = _concat([c.fan_ins for c in chunks], np.int64)
        tag_codes = _concat([c.tag_codes for c in chunks], np.int32)
        offsets = np.zeros(len(fan_ins) + 1, dtype=np.int64)
        np.cumsum(fan_ins, out=offsets[1:])
        self._columns = Columns(
            sources=sources,
            weights=weights,
            offsets=offsets,
            thresholds=thresholds,
            tag_codes=tag_codes,
            int64_ok=int64_ok,
        )
        # The merged snapshot becomes the single chunk, so the next
        # consolidation after further appends concatenates O(new) data.
        self._chunks = [
            _Chunk(
                sources=sources,
                weights=weights,
                fan_ins=np.asarray(fan_ins, dtype=np.int64),
                thresholds=thresholds,
                tag_codes=tag_codes,
                int64_ok=int64_ok,
            )
        ]
        return self._columns

    # ----------------------------------------------------------------- access
    def gate_parts(self, index: int) -> Tuple[Tuple[int, ...], Tuple[int, ...], int, str]:
        """(sources, weights, threshold, tag) of one gate, as Python values."""
        cols = self.columns()
        lo = int(cols.offsets[index])
        hi = int(cols.offsets[index + 1])
        sources = tuple(int(s) for s in cols.sources[lo:hi])
        weights = tuple(int(w) for w in cols.weights[lo:hi])
        return (
            sources,
            weights,
            int(cols.thresholds[index]),
            self._tags.decode(int(cols.tag_codes[index])),
        )

    def tags(self) -> List[str]:
        """Per-gate tag strings (one list comprehension over interned codes)."""
        cols = self.columns()
        table = self._tags.strings()
        return [table[c] for c in cols.tag_codes.tolist()]
