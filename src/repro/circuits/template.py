"""Gadget templates: record a lemma gadget once, stamp many translated copies.

The paper's constructions are exactly "the same gadget at many positions":
every cell of a tree level gets the same Lemma 3.2 weighted-sum circuit,
every leaf the same Lemma 3.3 product, with only the *wiring* (which earlier
nodes feed the gadget) changing from copy to copy.  The legacy path re-runs
the gadget constructor per copy, paying the full per-gate Python cost each
time.  Here the constructor runs once against a :class:`TemplateBuilder`
whose "nodes" are local ids — parameter slots ``0 .. n_params-1`` for the
gadget's external inputs, ``n_params ..`` for its internal gates — and the
recorded arrays are *relocatable*: stamping ``k`` copies is one
``add_gates`` call over tiled arrays with instance offsets added, plus a
cheap per-copy remap of the recorded return value.

Fidelity guarantees (the stamped circuit is wire-for-wire identical to the
legacy one):

* the template is recorded through the same ``Gate`` canonicalization the
  per-gate path uses;
* a copy whose external parameters are not pairwise distinct falls back to
  the legacy constructor (duplicate sources merge in an id-dependent order a
  template cannot reproduce);
* a gadget whose *return value* contains a representation
  (:class:`~repro.arithmetic.signed.Rep`) over parameter nodes is rejected at
  record time (``Rep`` terms are sorted by node id, and parameter ids do not
  map monotonically), and every copy uses the legacy constructor;
* likewise, a gadget whose recording merged duplicate sources in a row with
  several parameter slots is rejected at record time — the merge sorts by
  local slot id, which need not match the per-copy node order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import resolve_batch_depths
from repro.circuits.gate import Gate, canonical_parts
from repro.circuits.store import (
    IntVector,
    TagTable,
    accumulate_tag_counts,
    csr_dirty_rows,
    csr_max_magnitude,
    iter_depth_layers,
)

__all__ = [
    "CompiledTemplate",
    "GadgetStamper",
    "GadgetTemplate",
    "TemplateBlock",
    "TemplateBuilder",
]

# Sentinel returned by ``GadgetStamper.template_for`` for a key seen for the
# first time with a single copy: recording a template costs about as much as
# emitting the copy directly (and the direct bulk emission is wire-for-wire
# identical), so the template is only recorded once the key proves reusable.
DEFER_TEMPLATE = object()


def _dup_rows(params: np.ndarray) -> np.ndarray:
    """Boolean mask of parameter rows containing a repeated node id."""
    k, n_params = params.shape
    if n_params < 2:
        return np.zeros(k, dtype=bool)
    row_sorted = np.sort(params, axis=1)
    return (row_sorted[:, 1:] == row_sorted[:, :-1]).any(axis=1)


class TemplateBuilder:
    """Records a gadget built against local parameter slots.

    Implements the subset of the :class:`~repro.circuits.builder.CircuitBuilder`
    interface the gadget constructors use (``add_gate``).  Node ids handed to
    the gadget code are local: ``0 .. n_params-1`` are parameter slots,
    ``n_params + j`` is the j-th recorded gate.
    """

    # Bulk-capable recorder: lets gadget constructors take their array
    # emission paths (e.g. the Lemma 3.1 interval banks) while recording, so
    # recording a wide gadget costs array appends instead of per-gate
    # canonicalization passes.
    prefers_bulk = True

    def __init__(self, n_params: int, wireless: bool = False) -> None:
        self.n_params = int(n_params)
        # A *wireless* recorder captures only gate shapes (fan-ins, relative
        # depths, tag counts) — what a dry-run counting stamp needs — so
        # recording costs O(gadget bits), not O(gadget wires).  Setting
        # ``counts_only`` routes the gadget emitters through their wire-free
        # dry-run lanes while recording.
        self.wireless = bool(wireless)
        if wireless:
            self.counts_only = True
            self._wireless_tag_counts: Dict[str, int] = {}
        # Chunked columnar storage (same tail-buffer design as GateStore):
        # single-gate appends stage in Python lists, bulk appends land as
        # arrays, and consolidation happens once when the template is built —
        # recording a wide gadget costs array appends, not list churn.
        self._chunks: List[tuple] = []  # (sources, weights, fan_ins, thresholds, tag_codes, int64_ok)
        self._tail_sources: List[int] = []
        self._tail_weights: List[int] = []
        self._tail_fan_ins: List[int] = []
        self._tail_thresholds: List[int] = []
        self._tail_tag_codes: List[int] = []
        self._fan_chunks: List[np.ndarray] = []  # wireless mode only
        self._n_gates = 0
        # Depth of each recorded gate relative to the parameters (params sit
        # at relative depth 0).  When every actual parameter of a copy has
        # one common depth D, the copy's gate depths are exactly D + these.
        # Array-backed: the bulk recording path reads it as an array per
        # batch, which a plain list would re-convert quadratically.
        self.rel_depths = IntVector()
        self.has_fan0 = False  # a fan-in-0 gate pins its depth to 1, not D+1
        # Canonicalization sorts merged rows by *local* id.  Parameter slots
        # map to arbitrary node ids, so a merge that touched a row with two
        # or more parameter sources may sort differently per copy — such a
        # template cannot claim wire-for-wire fidelity and is rejected.
        self.has_param_merge = False
        self._tags = TagTable()

    def add_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        # Route through Gate so the recorded row is canonicalized exactly
        # like the per-gate path would canonicalize it.
        raw = [int(s) for s in sources]
        if len(set(raw)) != len(raw) and sum(1 for s in set(raw) if s < self.n_params) >= 2:
            self.has_param_merge = True
        gate = Gate(sources, weights, threshold, tag)
        node = self.n_params + self._n_gates
        rel_depth = 1
        for s in gate.sources:
            if not (0 <= s < node):
                raise ValueError(
                    f"template gate references local node {s} before it exists"
                )
            if s >= self.n_params:
                d = self.rel_depths[s - self.n_params] + 1
                if d > rel_depth:
                    rel_depth = d
        if not gate.sources:
            self.has_fan0 = True
        if self.wireless:
            self._tail_fan_ins.append(gate.fan_in)
            if gate.tag:
                counts = self._wireless_tag_counts
                counts[gate.tag] = counts.get(gate.tag, 0) + 1
        else:
            self._tail_sources.extend(gate.sources)
            self._tail_weights.extend(gate.weights)
            self._tail_fan_ins.append(gate.fan_in)
            self._tail_thresholds.append(gate.threshold)
            self._tail_tag_codes.append(self.intern_tag(gate.tag))
        self._n_gates += 1
        self.rel_depths.append(rel_depth)
        return node

    def add_gate_rows(
        self,
        fan_ins: np.ndarray,
        depths: np.ndarray,
        tag_counts=None,
    ) -> np.ndarray:
        """Wire-free recording lane (wireless recorders only).

        ``depths`` must be relative to the parameter slots — emitters derive
        them from this recorder's ``node_depths_of``, which is relative.
        """
        if not self.wireless:
            raise RuntimeError("add_gate_rows requires a wireless recorder")
        base = self.n_params + self._n_gates
        n_new = len(fan_ins)
        self._flush_wireless_tail()
        self._fan_chunks.append(np.ascontiguousarray(fan_ins, dtype=np.int64))
        if bool((fan_ins == 0).any()):
            self.has_fan0 = True
        self._n_gates += n_new
        self.rel_depths.extend(np.ascontiguousarray(depths, dtype=np.int64))
        if tag_counts:
            counts = self._wireless_tag_counts
            for t, count in tag_counts.items():
                if t:
                    counts[t] = counts.get(t, 0) + count
        return np.arange(base, base + n_new, dtype=np.int64)

    def _flush_wireless_tail(self) -> None:
        if self._tail_fan_ins:
            self._fan_chunks.append(
                np.asarray(self._tail_fan_ins, dtype=np.int64)
            )
            self._tail_fan_ins = []

    def wireless_columns(self):
        """Consolidated (fan_ins, tag_counts) of a wireless recording."""
        self._flush_wireless_tail()
        if not self._fan_chunks:
            fan_ins = np.empty(0, dtype=np.int64)
        elif len(self._fan_chunks) == 1:
            fan_ins = self._fan_chunks[0]
        else:
            fan_ins = np.concatenate(self._fan_chunks)
        return fan_ins, dict(self._wireless_tag_counts)

    def _flush_tail(self) -> None:
        if not self._tail_fan_ins:
            return
        from repro.circuits.store import int_column

        weights, weights_ok = int_column(self._tail_weights)
        thresholds, thresholds_ok = int_column(self._tail_thresholds)
        self._chunks.append(
            (
                np.asarray(self._tail_sources, dtype=np.int64),
                weights,
                np.asarray(self._tail_fan_ins, dtype=np.int64),
                thresholds,
                np.asarray(self._tail_tag_codes, dtype=np.int32),
                weights_ok and thresholds_ok,
            )
        )
        self._tail_sources = []
        self._tail_weights = []
        self._tail_fan_ins = []
        self._tail_thresholds = []
        self._tail_tag_codes = []

    def columns(self):
        """Consolidated recorded arrays plus the recorder's tag table.

        Returns ``(sources, weights, fan_ins, thresholds, tag_codes,
        int64_ok, tag_table)``; weights/thresholds are object dtype when a
        value left the int64 range.
        """
        self._flush_tail()
        chunks = self._chunks
        int64_ok = all(c[5] for c in chunks)
        value_dtype = np.int64 if int64_ok else object

        def _concat(index, dtype):
            arrays = [c[index] for c in chunks]
            if not arrays:
                return np.empty(0, dtype=dtype)
            if len(arrays) == 1:
                a = arrays[0]
                return a if a.dtype == dtype else a.astype(dtype)
            return np.concatenate(
                [a.astype(dtype) if a.dtype != dtype else a for a in arrays]
            )

        return (
            _concat(0, np.int64),
            _concat(1, value_dtype),
            _concat(2, np.int64),
            _concat(3, value_dtype),
            _concat(4, np.int32),
            int64_ok,
            self._tags.strings(),
        )

    # --------------------------------------------------------------- protocol
    @property
    def n_nodes(self) -> int:
        """Local node count: parameter slots plus recorded gates."""
        return self.n_params + self._n_gates

    def intern_tag(self, tag: str) -> int:
        """Intern a tag (recorder-local table; decoded back on storage)."""
        return self._tags.intern(tag)

    def tag_of_code(self, code: int) -> str:
        """Inverse of :meth:`intern_tag`."""
        return self._tags.decode(code)

    def node_depths_of(self, nodes: np.ndarray) -> np.ndarray:
        """Relative depths of local ids (parameter slots sit at depth 0)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros(nodes.shape, dtype=np.int64)
        is_gate = nodes >= self.n_params
        if is_gate.any():
            out[is_gate] = self.rel_depths.view()[nodes[is_gate] - self.n_params]
        return out

    def add_gates(
        self,
        sources: np.ndarray,
        offsets: np.ndarray,
        weights: np.ndarray,
        thresholds: np.ndarray,
        tag="",
        canonicalize: bool = True,
        validate: bool = True,
        depths=None,
        tag_counts=None,
    ) -> np.ndarray:
        """Record a CSR batch of gates (same signature as the real builder).

        Rows are canonicalized exactly like :meth:`add_gate` would; a
        caller passing ``canonicalize=False`` guarantees duplicate-free,
        already-canonical rows (the bulk emitters run
        :func:`~repro.circuits.gate.canonical_parts` on their shared row
        first), which keeps the param-merge rejection logic sound.
        ``depths``, when supplied, must already be *relative* to the
        parameter slots (the recorder's ``node_depths_of`` is relative, so
        emitters computing depths from it hand over exactly that).
        """
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        n_new = len(offsets) - 1
        if n_new <= 0:
            return np.empty(0, dtype=np.int64)
        fan_ins = np.diff(offsets)
        base = self.n_params + self._n_gates
        rows = np.repeat(np.arange(n_new, dtype=np.int64), fan_ins)
        if sources.size and (
            int(sources.min()) < 0 or bool((sources >= base + rows).any())
        ):
            raise ValueError("template gate references a local node before it exists")

        src_rows: Optional[List] = None
        wts_rows: Optional[List] = None
        if canonicalize and sources.size:
            dirty_rows = csr_dirty_rows(sources, rows)
            if dirty_rows.size:
                dirty = set(dirty_rows.tolist())
                src_list = sources.tolist()
                wts_list = (
                    weights.tolist()
                    if isinstance(weights, np.ndarray)
                    else list(weights)
                )
                off_list = offsets.tolist()
                src_rows, wts_rows = [], []
                for i in range(n_new):
                    lo, hi = off_list[i], off_list[i + 1]
                    row_src, row_wts = src_list[lo:hi], wts_list[lo:hi]
                    if i in dirty:
                        if sum(1 for s in set(row_src) if s < self.n_params) >= 2:
                            self.has_param_merge = True
                        row_src, row_wts = canonical_parts(row_src, row_wts)
                        row_src, row_wts = list(row_src), list(row_wts)
                    src_rows.append(row_src)
                    wts_rows.append(row_wts)

        from repro.circuits.store import int_column

        if self.wireless:
            self._flush_wireless_tail()
        else:
            self._flush_tail()
        if src_rows is not None:
            fan_list = [len(r) for r in src_rows]
            store_fan_ins = np.asarray(fan_list, dtype=np.int64)
            merged_offsets = np.zeros(n_new + 1, dtype=np.int64)
            np.cumsum(store_fan_ins, out=merged_offsets[1:])
            store_sources = np.asarray(
                [s for r in src_rows for s in r], dtype=np.int64
            )
            store_weights, weights_ok = int_column([w for r in wts_rows for w in r])
            rel = resolve_batch_depths(
                self.node_depths_of,
                store_sources,
                merged_offsets,
                store_fan_ins,
                None,
                base,
            )
        else:
            store_sources = sources
            store_fan_ins = fan_ins
            if isinstance(weights, np.ndarray):
                store_weights, weights_ok = weights, weights.dtype != object
            else:
                store_weights, weights_ok = int_column(weights)
            if depths is not None:
                rel = np.ascontiguousarray(depths, dtype=np.int64)
            else:
                rel = resolve_batch_depths(
                    self.node_depths_of, sources, offsets, fan_ins, rows, base
                )
        if bool((store_fan_ins == 0).any()):
            self.has_fan0 = True
        if self.wireless:
            self._fan_chunks.append(store_fan_ins)
            accumulate_tag_counts(
                self._wireless_tag_counts, tag, n_new, tag_counts, self._tags.decode
            )
            self._n_gates += n_new
            self.rel_depths.extend(rel)
            return np.arange(base, base + n_new, dtype=np.int64)
        if isinstance(thresholds, np.ndarray):
            store_thresholds, thresholds_ok = thresholds, thresholds.dtype != object
        else:
            store_thresholds, thresholds_ok = int_column(thresholds)
        if isinstance(tag, str):
            tag_codes = np.full(n_new, self.intern_tag(tag), dtype=np.int32)
        elif isinstance(tag, np.ndarray) and tag.dtype == np.int32:
            tag_codes = tag
        else:
            intern = self.intern_tag
            tag_codes = np.fromiter(
                (intern(str(t)) for t in tag), dtype=np.int32, count=n_new
            )
        self._chunks.append(
            (
                store_sources,
                store_weights,
                store_fan_ins,
                store_thresholds,
                tag_codes,
                weights_ok and thresholds_ok,
            )
        )
        self._n_gates += n_new
        self.rel_depths.extend(rel)
        return np.arange(base, base + n_new, dtype=np.int64)


class CompiledTemplate:
    """The compile-time export of a recorded template: local CSR + layers.

    This is the *stable* form the execution engine consumes (the
    template-streaming compile path): everything is a plain array keyed by
    local ids — parameter slots ``0 .. n_params-1``, gates ``n_params + j``
    — with no reference back to the recorder, the stamper or the recorded
    result closures, so compiled programs holding it stay picklable for the
    process-parallel batch scheduler.

    ``layers`` groups the local gates by their relative depth (parameters
    sit at depth 0); within one block every gate only reads parameter slots
    or lower-relative-depth local gates, so evaluating the layers in order
    is topologically valid for every stamped copy regardless of where the
    copy's actual parameters sit in the host circuit.
    """

    __slots__ = (
        "n_params",
        "n_gates",
        "n_locals",
        "sources",
        "offsets",
        "weights",
        "thresholds",
        "rel_depths",
        "layers",
        "max_magnitude",
        "int64_ok",
    )

    def __init__(self, template: "GadgetTemplate") -> None:
        if template.wireless:
            raise ValueError("wireless (counting-only) templates carry no wires")
        self.n_params = template.n_params
        self.n_gates = template.n_gates
        self.n_locals = template.n_params + template.n_gates
        self.sources = template.sources
        self.offsets = template.offsets
        self.weights = template.weights
        self.thresholds = template.thresholds
        self.rel_depths = template.rel_depths
        self.int64_ok = (
            self.weights.dtype != object and self.thresholds.dtype != object
        )
        self.max_magnitude = csr_max_magnitude(
            self.weights, self.offsets, self.thresholds, self.int64_ok
        )
        layers: List[Tuple[np.ndarray, np.ndarray, np.ndarray, Any, Any]] = []
        for _depth, lgates, wire_idx, layer_fan in iter_depth_layers(
            self.rel_depths, self.offsets
        ):
            # lgates are local gate indices, insertion order within a layer.
            rows = np.repeat(np.arange(len(lgates), dtype=np.int64), layer_fan)
            layers.append(
                (
                    lgates,
                    rows,
                    self.sources[wire_idx],
                    self.weights[wire_idx],
                    self.thresholds[lgates],
                )
            )
        self.layers = layers


@dataclass(frozen=True)
class TemplateBlock:
    """One stamped run recorded on the host circuit.

    ``base`` is the node id of the first stamped gate; copy ``i`` of the
    template occupies node ids ``base + i * n_gates .. base + (i+1) *
    n_gates - 1`` and reads the actual parameter nodes ``params[i]``.
    Together with the template's local CSR this reconstructs the block's
    gates exactly, which is what lets the engine compile one layer plan per
    template and tile it across stamps instead of re-reading the circuit's
    consolidated arrays.

    Deliberately holds the slim :class:`CompiledTemplate` (shared across
    every block stamped from one gadget), not the recording-side
    :class:`GadgetTemplate` — provenance must not pin the stamper's tiled
    emission caches and result-rebuild closures to the circuit's lifetime.
    """

    template: "CompiledTemplate"
    base: int
    params: np.ndarray  # (k, n_params) absolute node ids

    @property
    def k(self) -> int:
        return int(self.params.shape[0])

    @property
    def n_gates(self) -> int:
        return self.template.n_gates


class GadgetTemplate:
    """A recorded, relocatable gadget plus its return-value descriptor."""

    __slots__ = (
        "n_params",
        "n_gates",
        "n_edges",
        "wireless",
        "sources",
        "offsets",
        "fan_ins",
        "weights",
        "thresholds",
        "tag_counts",
        "result",
        "rel_depths",
        "uniform_depth_ok",
        "_local_tag_codes",
        "_tag_table",
        "_tag_codes",
        "_result_locals",
        "_result_rebuild",
        "_is_param",
        "_param_slots",
        "_tiled",
        "bank_meta",
        "_compiled",
    )

    def __init__(self, recorder: TemplateBuilder, result: Any) -> None:
        self.n_params = recorder.n_params
        self.wireless = recorder.wireless
        if recorder.wireless:
            # Counting-only template: gate shapes without wires.  Stamping
            # such a template requires the uniform-parameter-depth shortcut
            # (enforced by the stamper); everything a dry run consumes —
            # fan-ins, edge totals, relative depths, tag counts, result ids —
            # is present.
            self.fan_ins, self.tag_counts = recorder.wireless_columns()
            self.sources = np.empty(0, dtype=np.int64)
            self.weights = np.empty(0, dtype=np.int64)
            self.thresholds = np.empty(0, dtype=np.int64)
            self._local_tag_codes = np.empty(0, dtype=np.int32)
            self._tag_table: List[str] = []
        else:
            (
                self.sources,
                self.weights,
                self.fan_ins,
                self.thresholds,
                self._local_tag_codes,
                _int64_ok,
                self._tag_table,
            ) = recorder.columns()
            self.tag_counts = {}
            if len(self.fan_ins):
                code_counts = np.bincount(
                    self._local_tag_codes, minlength=len(self._tag_table)
                )
                for code, count in enumerate(code_counts.tolist()):
                    tag = self._tag_table[code] if code < len(self._tag_table) else ""
                    if tag and count:
                        self.tag_counts[tag] = count
        self.n_gates = len(self.fan_ins)
        self.n_edges = int(self.fan_ins.sum()) if self.n_gates else 0
        self.offsets = np.zeros(self.n_gates + 1, dtype=np.int64)
        np.cumsum(self.fan_ins, out=self.offsets[1:])
        self.result = result
        self.rel_depths = recorder.rel_depths.view().copy()
        self.uniform_depth_ok = not recorder.has_fan0 and recorder.n_params > 0
        self._tag_codes: Optional[np.ndarray] = None
        self._result_locals, self._result_rebuild = _compile_result(result)
        self._is_param = self.sources < self.n_params
        self._param_slots = np.where(self._is_param, self.sources, 0)
        # Lazily filled by SignedValueBank.from_template: the shared bank
        # layout (weights/positions tuples) derived from the result, so
        # per-stamp bank wrapping never rebuilds them.
        self.bank_meta = None
        # Single-slot cache (keyed by the copy count k) of the
        # parameter-independent tiled columns (weights, thresholds, tag
        # codes, offsets): hot constructions stamp the same k over and over,
        # and the store never mutates appended chunks, so the cached arrays
        # can be handed out again and again.  One slot bounds the memory of
        # constructions whose run lengths vary (duplicate-parameter splits).
        self._tiled = None
        self._compiled: Optional[CompiledTemplate] = None

    def compiled(self) -> Optional[CompiledTemplate]:
        """The stable compile-time export (None for wireless templates).

        Cached: every block stamped from this template shares one
        :class:`CompiledTemplate`, so the engine builds each template's
        layer matrices exactly once per compile however many times it was
        stamped.
        """
        if self.wireless:
            return None
        if self._compiled is None:
            self._compiled = CompiledTemplate(self)
        return self._compiled

    def stamp(
        self,
        builder,
        params: np.ndarray,
        mapped_only: bool = False,
        param_depths: Optional[np.ndarray] = None,
    ):
        """Emit ``k`` translated copies; returns the remapped result per copy.

        ``params`` has shape ``(k, n_params)``: row ``i`` holds the actual
        node ids feeding copy ``i``'s parameter slots.  With
        ``mapped_only=True`` the per-copy results are not rebuilt as value
        objects; the raw ``(k, n_result_ids)`` matrix of remapped node ids is
        returned instead (the value-bank path wraps it without ever
        materializing scalars).  ``param_depths`` optionally supplies the
        per-copy parameter depth matrix when the caller already gathered it
        (the wireless pre-check).
        """
        k = params.shape[0]
        base = builder.n_nodes
        n_params = self.n_params
        n_gates = self.n_gates
        if n_gates:
            depths = None
            if self.uniform_depth_ok:
                # When every parameter of a copy sits at one depth D, the
                # copy's gate depths are exactly D + rel_depths — one gather
                # plus a broadcast instead of the generic layering passes.
                if param_depths is None:
                    param_depths = builder.node_depths_of(params)
                low = param_depths.min(axis=1)
                if int((param_depths.max(axis=1) == low).all()):
                    depths = (low[:, None] + self.rel_depths[None, :]).reshape(-1)
            if depths is not None and getattr(builder, "counts_only", False):
                # Dry-run counting: the template's gate/edge/fan-in/tag
                # totals are reused verbatim, nothing is re-walked.
                builder.add_template_gates(self, k, depths)
            else:
                instance_shift = np.arange(k, dtype=np.int64)[:, None] * n_gates
                # Broadcast the instance translation instead of
                # tiling+repeating: row i of the (k, E) matrix holds copy i's
                # absolute sources.
                internal = (base - n_params) + self.sources[None, :] + instance_shift
                if n_params:
                    abs_sources = np.where(
                        self._is_param[None, :], params[:, self._param_slots], internal
                    )
                else:
                    abs_sources = internal
                tiled = None
                if self._tiled is not None and self._tiled[0] == k:
                    tiled = self._tiled[1]
                if tiled is None:
                    if self._tag_codes is None:
                        # A template lives inside one builder's stamper, so
                        # interning its tags against that builder once is
                        # safe; the per-gate codes are one table-sized remap.
                        intern = builder.intern_tag
                        mapping = np.asarray(
                            [intern(t) for t in self._tag_table], dtype=np.int32
                        )
                        self._tag_codes = mapping[self._local_tag_codes]
                    n_edges = len(self.sources)
                    offsets = np.empty(k * n_gates + 1, dtype=np.int64)
                    offsets[0] = 0
                    offsets[1:] = (
                        self.offsets[1:][None, :]
                        + np.arange(k, dtype=np.int64)[:, None] * n_edges
                    ).reshape(-1)
                    tiled = (
                        offsets,
                        np.tile(self.weights, k),
                        np.tile(self.thresholds, k),
                        np.tile(self._tag_codes, k),
                        {t: c * k for t, c in self.tag_counts.items()},
                    )
                    self._tiled = (k, tiled)
                offsets, weights_k, thresholds_k, tag_codes_k, tag_counts_k = tiled
                builder.add_gates(
                    abs_sources.reshape(-1),
                    offsets,
                    weights_k,
                    thresholds_k,
                    tag=tag_codes_k,
                    canonicalize=False,
                    validate=False,
                    depths=depths,
                    tag_counts=tag_counts_k,
                )
                # Builders that compile through the engine remember the stamp
                # (template + base + parameter rows) so the compiler can
                # stream the template's layer plan instead of re-reading the
                # consolidated CSR.  Duck-typed: counting/recording builders
                # simply have no such hook.  The rows are copied: recorded
                # provenance must stay immutable even if a caller reuses its
                # parameter buffer after stamping.
                note = getattr(builder, "note_template_block", None)
                if note is not None:
                    note(
                        TemplateBlock(
                            self.compiled(),
                            int(base),
                            np.array(params, dtype=np.int64),
                        )
                    )
        # Rebuild the recorded result per copy from one vectorized id remap:
        # row i of `mapped` holds the actual node ids of the result's local
        # ids under copy i's translation.
        locals_arr = self._result_locals
        if locals_arr.size:
            is_param = locals_arr < n_params
            internal_ids = locals_arr - n_params + base + (
                np.arange(k, dtype=np.int64)[:, None] * n_gates
            )
            if n_params:
                param_ids = params[:, np.where(is_param, locals_arr, 0)]
                mapped = np.where(is_param[None, :], param_ids, internal_ids)
            else:
                mapped = internal_ids
        else:
            mapped = np.empty((k, 0), dtype=np.int64)
        if mapped_only:
            return mapped
        rebuild = self._result_rebuild
        return [rebuild(row) for row in mapped.tolist()]


def _compile_result(result: Any):
    """Compile a recorded result into (local id array, rebuild function).

    The rebuild function takes the list of *mapped* node ids (same order as
    the id array) and produces the result object for one stamped copy.  It
    constructs the frozen value dataclasses through ``object.__new__``,
    skipping their validating ``__post_init__`` — the template was validated
    once at record time and every copy is an id translation of it.
    """
    from repro.arithmetic.signed import (
        BinaryNumber,
        Rep,
        SignedBinaryNumber,
        SignedValue,
    )

    ids: List[int] = []

    def _new_rep(terms) -> Rep:
        rep = object.__new__(Rep)
        object.__setattr__(rep, "terms", terms)
        return rep

    def _new_binary(positions, nodes, width) -> BinaryNumber:
        number = object.__new__(BinaryNumber)
        object.__setattr__(number, "bit_positions", positions)
        object.__setattr__(number, "bit_nodes", nodes)
        object.__setattr__(number, "width", width)
        return number

    def walk(obj):
        if obj is None:
            return lambda vals: None
        if isinstance(obj, (int, np.integer)):
            index = len(ids)
            ids.append(int(obj))
            return lambda vals, index=index: vals[index]
        if isinstance(obj, Rep):
            start = len(ids)
            ids.extend(node for node, _ in obj.terms)
            weights = tuple(weight for _, weight in obj.terms)
            end = start + len(weights)
            if not weights:
                return lambda vals: _new_rep(())
            if len(weights) == 1:
                weight = weights[0]

                def make_rep_1(vals, start=start, weight=weight):
                    return _new_rep(((vals[start], weight),))

                return make_rep_1

            def make_rep(vals, start=start, end=end, weights=weights):
                return _new_rep(tuple(zip(vals[start:end], weights)))

            return make_rep
        if isinstance(obj, SignedValue):
            make_pos = walk(obj.pos)
            make_neg = walk(obj.neg)

            def make_signed(vals, make_pos=make_pos, make_neg=make_neg):
                value = object.__new__(SignedValue)
                object.__setattr__(value, "pos", make_pos(vals))
                object.__setattr__(value, "neg", make_neg(vals))
                return value

            return make_signed
        if isinstance(obj, BinaryNumber):
            start = len(ids)
            ids.extend(obj.bit_nodes)
            end = start + len(obj.bit_nodes)
            positions = obj.bit_positions
            width = obj.width

            def make_binary(
                vals, start=start, end=end, positions=positions, width=width
            ):
                return _new_binary(positions, tuple(vals[start:end]), width)

            return make_binary
        if isinstance(obj, SignedBinaryNumber):
            make_pos = walk(obj.pos)
            make_neg = walk(obj.neg)

            def make_signed_binary(vals, make_pos=make_pos, make_neg=make_neg):
                number = object.__new__(SignedBinaryNumber)
                object.__setattr__(number, "pos", make_pos(vals))
                object.__setattr__(number, "neg", make_neg(vals))
                return number

            return make_signed_binary
        if isinstance(obj, list):
            makers = [walk(item) for item in obj]
            return lambda vals, makers=makers: [make(vals) for make in makers]
        if isinstance(obj, tuple):
            makers = [walk(item) for item in obj]
            return lambda vals, makers=makers: tuple(make(vals) for make in makers)
        raise TypeError(f"cannot compile template result of type {type(obj)!r}")

    rebuild = walk(result)
    return np.asarray(ids, dtype=np.int64), rebuild


def _result_is_relocatable(result: Any, n_params: int) -> bool:
    """True when the recorded result remaps faithfully under stamping.

    ``Rep`` terms are sorted by node id; a parameter node inside a ``Rep``
    would need re-sorting per copy (parameter ids are arbitrary), so such
    gadgets are not templated.
    """
    from repro.arithmetic.signed import (
        BinaryNumber,
        Rep,
        SignedBinaryNumber,
        SignedValue,
    )

    if result is None or isinstance(result, (int, np.integer)):
        return True
    if isinstance(result, Rep):
        return all(node >= n_params for node, _ in result.terms)
    if isinstance(result, SignedValue):
        return _result_is_relocatable(result.pos, n_params) and _result_is_relocatable(
            result.neg, n_params
        )
    if isinstance(result, BinaryNumber):
        return True
    if isinstance(result, SignedBinaryNumber):
        return True
    if isinstance(result, (list, tuple)):
        return all(_result_is_relocatable(item, n_params) for item in result)
    return False


class GadgetStamper:
    """Per-builder template cache + batched stamping driver.

    Gadget constructors call :meth:`stamp_all` with a structural signature
    (everything the gadget's gate stream depends on *except* the actual node
    ids), the per-copy parameter rows, and two emitters: one that builds the
    gadget on a :class:`TemplateBuilder` (local ids) and one that builds a
    single copy the legacy way (used for non-templatable gadgets and for
    copies with duplicated parameters).
    """

    # A counting builder's direct emission is wire-free (closed-form bank
    # shapes), so recording a template — O(recorded gates) — only pays off
    # once a key has been stamped often enough.  One deferred copy "buys"
    # this many recorded gates:
    COUNTING_GATES_PER_DEFER = 2048

    def __init__(self, builder) -> None:
        self._builder = builder
        self._templates: Dict[Any, Optional[GadgetTemplate]] = {}
        self._counting = bool(getattr(builder, "counts_only", False))
        # key -> [deferred copies seen, per-copy gadget size (0 = unknown)]
        self._deferred: Dict[Any, List[int]] = {}

    def template_for(
        self,
        key: Any,
        n_params: int,
        emit_template: Callable[[TemplateBuilder], Any],
        copies: Optional[int] = None,
    ):
        """The cached template for ``key``.

        Returns ``None`` when the gadget is not templatable (cached verdict),
        or :data:`DEFER_TEMPLATE` when recording is not (yet) worth it and
        the caller should emit this batch via the direct/bulk path
        (wire-identical).  On a real builder that is only the very first
        single-copy occurrence of a key — single-use gadgets, e.g. the wide
        root-block recombination sums with all-distinct weight signatures,
        never pay the recording overhead.  On a counting builder the
        deferral is size-aware: direct dry-run emission is nearly free, so a
        large gadget must accumulate enough deferred copies before its
        recording cost amortizes.
        """
        if key in self._templates:
            return self._templates[key]
        info = self._deferred.get(key)
        if self._counting:
            if info is None:
                self._deferred[key] = [0, 0]
                return DEFER_TEMPLATE
            seen, per_copy = info
            if seen * self.COUNTING_GATES_PER_DEFER < per_copy:
                return DEFER_TEMPLATE
        elif copies == 1 and info is None:
            self._deferred[key] = [0, 0]
            return DEFER_TEMPLATE
        recorder = TemplateBuilder(n_params, wireless=self._counting)
        result = emit_template(recorder)
        template: Optional[GadgetTemplate] = None
        if not recorder.has_param_merge and _result_is_relocatable(result, n_params):
            template = GadgetTemplate(recorder, result)
        self._templates[key] = template
        return template

    def _wireless_depths(
        self, template: "GadgetTemplate", params: np.ndarray
    ) -> Optional[np.ndarray]:
        """Parameter depths if a counting-only template can stamp these copies.

        A wireless template carries no wires, so stamping is only possible
        through the uniform-parameter-depth shortcut; heterogeneous copies
        fall back to direct dry-run emission (wire-free anyway).  Returns the
        gathered ``(k, n_params)`` depth matrix (handed on to ``stamp`` so it
        is not gathered twice) or ``None`` when stamping is not possible.
        """
        if not template.uniform_depth_ok or params.shape[1] == 0:
            return None
        depths = self._builder.node_depths_of(params)
        if not bool((depths.max(axis=1) == depths.min(axis=1)).all()):
            return None
        return depths

    def _note_deferred(self, key: Any, copies: int, nodes_added: int) -> None:
        """Record how large a deferred gadget turned out to be."""
        info = self._deferred.get(key)
        if info is not None and copies > 0:
            info[0] += copies
            if info[1] == 0:
                info[1] = nodes_added // copies

    def stamp_all(
        self,
        key: Any,
        n_params: int,
        params_list: Sequence[Sequence[int]],
        emit_template: Callable[[TemplateBuilder], Any],
        emit_legacy: Callable[[int], Any],
    ) -> List[Any]:
        """Emit every copy, stamping consecutive clean runs in one call.

        Copies whose parameters repeat a node id are emitted via
        ``emit_legacy`` in place, so the overall gate stream keeps the exact
        legacy order.
        """
        k = len(params_list)
        template = self.template_for(key, n_params, emit_template, copies=k)
        if template is None or template is DEFER_TEMPLATE:
            before = self._builder.n_nodes
            results = [emit_legacy(i) for i in range(k)]
            if template is DEFER_TEMPLATE:
                self._note_deferred(key, k, self._builder.n_nodes - before)
            return results
        params = np.asarray(params_list, dtype=np.int64).reshape(k, n_params)
        param_depths = None
        if template.wireless:
            param_depths = self._wireless_depths(template, params)
            if param_depths is None:
                return [emit_legacy(i) for i in range(k)]
        has_dup = _dup_rows(params)
        if not has_dup.any():
            return template.stamp(self._builder, params, param_depths=param_depths)
        results: List[Any] = [None] * k
        dup_indices = np.nonzero(has_dup)[0].tolist()
        start = 0
        for stop in dup_indices + [k]:
            if stop > start:
                run_depths = (
                    param_depths[start:stop] if param_depths is not None else None
                )
                for i, mapped in zip(
                    range(start, stop),
                    template.stamp(
                        self._builder, params[start:stop], param_depths=run_depths
                    ),
                ):
                    results[i] = mapped
            if stop < k:
                results[stop] = emit_legacy(stop)
            start = stop + 1
        return results

    def stamp_all_mapped(
        self,
        key: Any,
        n_params: int,
        params: np.ndarray,
        emit_template: Callable[[TemplateBuilder], Any],
        emit_legacy: Callable[[int], Any],
    ):
        """Array-native variant of :meth:`stamp_all` for the value-bank path.

        Returns ``(template, mapped, overrides)`` where ``mapped`` is the
        ``(k, n_result_ids)`` matrix of remapped result node ids and
        ``overrides`` maps the duplicate-parameter row indices to their
        legacy-emitted result objects (those rows' ``mapped`` entries are
        meaningless).  When the gadget is not templated (unrelocatable, or
        recording deferred) every copy is emitted through ``emit_legacy`` in
        order and ``(None, scalar_results, None)`` is returned.

        The gate stream is wire-for-wire identical to :meth:`stamp_all` on
        the same copies: stamped runs and legacy rows interleave in the exact
        same order, and splitting a clean run into several ``stamp`` calls
        appends the same gates (each copy's block is self-contained).
        """
        k = params.shape[0]
        template = self.template_for(key, n_params, emit_template, copies=k)
        if template is None or template is DEFER_TEMPLATE:
            before = self._builder.n_nodes
            results = [emit_legacy(i) for i in range(k)]
            if template is DEFER_TEMPLATE:
                self._note_deferred(key, k, self._builder.n_nodes - before)
            return None, results, None
        param_depths = None
        if template.wireless:
            param_depths = self._wireless_depths(template, params)
            if param_depths is None:
                return None, [emit_legacy(i) for i in range(k)], None
        has_dup = _dup_rows(params)
        if not has_dup.any():
            return (
                template,
                template.stamp(
                    self._builder, params, mapped_only=True, param_depths=param_depths
                ),
                {},
            )
        n_ids = len(template._result_locals)
        mapped = np.empty((k, n_ids), dtype=np.int64)
        overrides: Dict[int, Any] = {}
        dup_indices = np.nonzero(has_dup)[0].tolist()
        start = 0
        for stop in dup_indices + [k]:
            if stop > start:
                run_depths = (
                    param_depths[start:stop] if param_depths is not None else None
                )
                mapped[start:stop] = template.stamp(
                    self._builder,
                    params[start:stop],
                    mapped_only=True,
                    param_depths=run_depths,
                )
            if stop < k:
                overrides[stop] = emit_legacy(stop)
            start = stop + 1
        return template, mapped, overrides
