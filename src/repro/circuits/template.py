"""Gadget templates: record a lemma gadget once, stamp many translated copies.

The paper's constructions are exactly "the same gadget at many positions":
every cell of a tree level gets the same Lemma 3.2 weighted-sum circuit,
every leaf the same Lemma 3.3 product, with only the *wiring* (which earlier
nodes feed the gadget) changing from copy to copy.  The legacy path re-runs
the gadget constructor per copy, paying the full per-gate Python cost each
time.  Here the constructor runs once against a :class:`TemplateBuilder`
whose "nodes" are local ids — parameter slots ``0 .. n_params-1`` for the
gadget's external inputs, ``n_params ..`` for its internal gates — and the
recorded arrays are *relocatable*: stamping ``k`` copies is one
``add_gates`` call over tiled arrays with instance offsets added, plus a
cheap per-copy remap of the recorded return value.

Fidelity guarantees (the stamped circuit is wire-for-wire identical to the
legacy one):

* the template is recorded through the same ``Gate`` canonicalization the
  per-gate path uses;
* a copy whose external parameters are not pairwise distinct falls back to
  the legacy constructor (duplicate sources merge in an id-dependent order a
  template cannot reproduce);
* a gadget whose *return value* contains a representation
  (:class:`~repro.arithmetic.signed.Rep`) over parameter nodes is rejected at
  record time (``Rep`` terms are sorted by node id, and parameter ids do not
  map monotonically), and every copy uses the legacy constructor;
* likewise, a gadget whose recording merged duplicate sources in a row with
  several parameter slots is rejected at record time — the merge sorts by
  local slot id, which need not match the per-copy node order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.gate import Gate

__all__ = ["GadgetStamper", "GadgetTemplate", "TemplateBuilder"]


class TemplateBuilder:
    """Records a gadget built against local parameter slots.

    Implements the subset of the :class:`~repro.circuits.builder.CircuitBuilder`
    interface the gadget constructors use (``add_gate``).  Node ids handed to
    the gadget code are local: ``0 .. n_params-1`` are parameter slots,
    ``n_params + j`` is the j-th recorded gate.
    """

    def __init__(self, n_params: int) -> None:
        self.n_params = int(n_params)
        self.sources: List[int] = []
        self.weights: List[int] = []
        self.fan_ins: List[int] = []
        self.thresholds: List[int] = []
        self.tags: List[str] = []
        # Depth of each recorded gate relative to the parameters (params sit
        # at relative depth 0).  When every actual parameter of a copy has
        # one common depth D, the copy's gate depths are exactly D + these.
        self.rel_depths: List[int] = []
        self.has_fan0 = False  # a fan-in-0 gate pins its depth to 1, not D+1
        # Canonicalization sorts merged rows by *local* id.  Parameter slots
        # map to arbitrary node ids, so a merge that touched a row with two
        # or more parameter sources may sort differently per copy — such a
        # template cannot claim wire-for-wire fidelity and is rejected.
        self.has_param_merge = False

    def add_gate(
        self,
        sources: Sequence[int],
        weights: Sequence[int],
        threshold: int,
        tag: str = "",
    ) -> int:
        # Route through Gate so the recorded row is canonicalized exactly
        # like the per-gate path would canonicalize it.
        raw = [int(s) for s in sources]
        if len(set(raw)) != len(raw) and sum(1 for s in set(raw) if s < self.n_params) >= 2:
            self.has_param_merge = True
        gate = Gate(sources, weights, threshold, tag)
        node = self.n_params + len(self.thresholds)
        rel_depth = 1
        for s in gate.sources:
            if not (0 <= s < node):
                raise ValueError(
                    f"template gate references local node {s} before it exists"
                )
            if s >= self.n_params:
                d = self.rel_depths[s - self.n_params] + 1
                if d > rel_depth:
                    rel_depth = d
        if not gate.sources:
            self.has_fan0 = True
        self.sources.extend(gate.sources)
        self.weights.extend(gate.weights)
        self.fan_ins.append(gate.fan_in)
        self.thresholds.append(gate.threshold)
        self.tags.append(gate.tag)
        self.rel_depths.append(rel_depth)
        return node


class GadgetTemplate:
    """A recorded, relocatable gadget plus its return-value descriptor."""

    __slots__ = (
        "n_params",
        "n_gates",
        "sources",
        "offsets",
        "fan_ins",
        "weights",
        "thresholds",
        "tags",
        "tag_counts",
        "result",
        "rel_depths",
        "uniform_depth_ok",
        "_tag_codes",
        "_result_locals",
        "_result_rebuild",
        "_is_param",
        "_param_slots",
        "_tiled",
    )

    def __init__(self, recorder: TemplateBuilder, result: Any) -> None:
        self.n_params = recorder.n_params
        self.n_gates = len(recorder.thresholds)
        self.sources = np.asarray(recorder.sources, dtype=np.int64)
        self.fan_ins = np.asarray(recorder.fan_ins, dtype=np.int64)
        self.offsets = np.zeros(self.n_gates + 1, dtype=np.int64)
        np.cumsum(self.fan_ins, out=self.offsets[1:])
        try:
            self.weights = np.asarray(recorder.weights, dtype=np.int64)
        except OverflowError:
            self.weights = np.empty(len(recorder.weights), dtype=object)
            self.weights[:] = recorder.weights
        try:
            self.thresholds = np.asarray(recorder.thresholds, dtype=np.int64)
        except OverflowError:
            self.thresholds = np.empty(len(recorder.thresholds), dtype=object)
            self.thresholds[:] = recorder.thresholds
        self.tags = list(recorder.tags)
        self.tag_counts: Dict[str, int] = {}
        for tag in self.tags:
            if tag:
                self.tag_counts[tag] = self.tag_counts.get(tag, 0) + 1
        self.result = result
        self.rel_depths = np.asarray(recorder.rel_depths, dtype=np.int64)
        self.uniform_depth_ok = not recorder.has_fan0 and recorder.n_params > 0
        self._tag_codes: Optional[np.ndarray] = None
        self._result_locals, self._result_rebuild = _compile_result(result)
        self._is_param = self.sources < self.n_params
        self._param_slots = np.where(self._is_param, self.sources, 0)
        # Single-slot cache (keyed by the copy count k) of the
        # parameter-independent tiled columns (weights, thresholds, tag
        # codes, offsets): hot constructions stamp the same k over and over,
        # and the store never mutates appended chunks, so the cached arrays
        # can be handed out again and again.  One slot bounds the memory of
        # constructions whose run lengths vary (duplicate-parameter splits).
        self._tiled = None

    def stamp(self, builder, params: np.ndarray) -> List[Any]:
        """Emit ``k`` translated copies; returns the remapped result per copy.

        ``params`` has shape ``(k, n_params)``: row ``i`` holds the actual
        node ids feeding copy ``i``'s parameter slots.
        """
        k = params.shape[0]
        base = builder.n_nodes
        n_params = self.n_params
        n_gates = self.n_gates
        if n_gates:
            instance_shift = np.arange(k, dtype=np.int64)[:, None] * n_gates
            # Broadcast the instance translation instead of tiling+repeating:
            # row i of the (k, E) matrix holds copy i's absolute sources.
            internal = (base - n_params) + self.sources[None, :] + instance_shift
            if n_params:
                abs_sources = np.where(
                    self._is_param[None, :], params[:, self._param_slots], internal
                )
            else:
                abs_sources = internal
            tiled = None
            if self._tiled is not None and self._tiled[0] == k:
                tiled = self._tiled[1]
            if tiled is None:
                if self._tag_codes is None:
                    # A template lives inside one builder's stamper, so
                    # interning its tags against that builder's store once
                    # is safe.
                    intern = builder.circuit.store.intern_tag
                    self._tag_codes = np.asarray(
                        [intern(t) for t in self.tags], dtype=np.int32
                    )
                n_edges = len(self.sources)
                offsets = np.empty(k * n_gates + 1, dtype=np.int64)
                offsets[0] = 0
                offsets[1:] = (
                    self.offsets[1:][None, :]
                    + np.arange(k, dtype=np.int64)[:, None] * n_edges
                ).reshape(-1)
                tiled = (
                    offsets,
                    np.tile(self.weights, k),
                    np.tile(self.thresholds, k),
                    np.tile(self._tag_codes, k),
                    {t: c * k for t, c in self.tag_counts.items()},
                )
                self._tiled = (k, tiled)
            offsets, weights_k, thresholds_k, tag_codes_k, tag_counts_k = tiled
            depths = None
            if self.uniform_depth_ok:
                # When every parameter of a copy sits at one depth D, the
                # copy's gate depths are exactly D + rel_depths — one gather
                # plus a broadcast instead of the generic layering passes.
                param_depths = builder.circuit.node_depths_of(params)
                low = param_depths.min(axis=1)
                if int((param_depths.max(axis=1) == low).all()):
                    depths = (low[:, None] + self.rel_depths[None, :]).reshape(-1)
            builder.add_gates(
                abs_sources.reshape(-1),
                offsets,
                weights_k,
                thresholds_k,
                tag=tag_codes_k,
                canonicalize=False,
                validate=False,
                depths=depths,
                tag_counts=tag_counts_k,
            )
        # Rebuild the recorded result per copy from one vectorized id remap:
        # row i of `mapped` holds the actual node ids of the result's local
        # ids under copy i's translation.
        locals_arr = self._result_locals
        if locals_arr.size:
            is_param = locals_arr < n_params
            internal_ids = locals_arr - n_params + base + (
                np.arange(k, dtype=np.int64)[:, None] * n_gates
            )
            if n_params:
                param_ids = params[:, np.where(is_param, locals_arr, 0)]
                mapped = np.where(is_param[None, :], param_ids, internal_ids)
            else:
                mapped = internal_ids
            rebuild = self._result_rebuild
            return [rebuild(row) for row in mapped.tolist()]
        rebuild = self._result_rebuild
        empty: List[int] = []
        return [rebuild(empty) for _ in range(k)]


def _compile_result(result: Any):
    """Compile a recorded result into (local id array, rebuild function).

    The rebuild function takes the list of *mapped* node ids (same order as
    the id array) and produces the result object for one stamped copy.  It
    constructs the frozen value dataclasses through ``object.__new__``,
    skipping their validating ``__post_init__`` — the template was validated
    once at record time and every copy is an id translation of it.
    """
    from repro.arithmetic.signed import (
        BinaryNumber,
        Rep,
        SignedBinaryNumber,
        SignedValue,
    )

    ids: List[int] = []

    def _new_rep(terms) -> Rep:
        rep = object.__new__(Rep)
        object.__setattr__(rep, "terms", terms)
        return rep

    def _new_binary(positions, nodes, width) -> BinaryNumber:
        number = object.__new__(BinaryNumber)
        object.__setattr__(number, "bit_positions", positions)
        object.__setattr__(number, "bit_nodes", nodes)
        object.__setattr__(number, "width", width)
        return number

    def walk(obj):
        if obj is None:
            return lambda vals: None
        if isinstance(obj, (int, np.integer)):
            index = len(ids)
            ids.append(int(obj))
            return lambda vals, index=index: vals[index]
        if isinstance(obj, Rep):
            start = len(ids)
            ids.extend(node for node, _ in obj.terms)
            weights = tuple(weight for _, weight in obj.terms)
            end = start + len(weights)
            if not weights:
                return lambda vals: _new_rep(())
            if len(weights) == 1:
                weight = weights[0]

                def make_rep_1(vals, start=start, weight=weight):
                    return _new_rep(((vals[start], weight),))

                return make_rep_1

            def make_rep(vals, start=start, end=end, weights=weights):
                return _new_rep(tuple(zip(vals[start:end], weights)))

            return make_rep
        if isinstance(obj, SignedValue):
            make_pos = walk(obj.pos)
            make_neg = walk(obj.neg)

            def make_signed(vals, make_pos=make_pos, make_neg=make_neg):
                value = object.__new__(SignedValue)
                object.__setattr__(value, "pos", make_pos(vals))
                object.__setattr__(value, "neg", make_neg(vals))
                return value

            return make_signed
        if isinstance(obj, BinaryNumber):
            start = len(ids)
            ids.extend(obj.bit_nodes)
            end = start + len(obj.bit_nodes)
            positions = obj.bit_positions
            width = obj.width

            def make_binary(
                vals, start=start, end=end, positions=positions, width=width
            ):
                return _new_binary(positions, tuple(vals[start:end]), width)

            return make_binary
        if isinstance(obj, SignedBinaryNumber):
            make_pos = walk(obj.pos)
            make_neg = walk(obj.neg)

            def make_signed_binary(vals, make_pos=make_pos, make_neg=make_neg):
                number = object.__new__(SignedBinaryNumber)
                object.__setattr__(number, "pos", make_pos(vals))
                object.__setattr__(number, "neg", make_neg(vals))
                return number

            return make_signed_binary
        if isinstance(obj, list):
            makers = [walk(item) for item in obj]
            return lambda vals, makers=makers: [make(vals) for make in makers]
        if isinstance(obj, tuple):
            makers = [walk(item) for item in obj]
            return lambda vals, makers=makers: tuple(make(vals) for make in makers)
        raise TypeError(f"cannot compile template result of type {type(obj)!r}")

    rebuild = walk(result)
    return np.asarray(ids, dtype=np.int64), rebuild


def _result_is_relocatable(result: Any, n_params: int) -> bool:
    """True when the recorded result remaps faithfully under stamping.

    ``Rep`` terms are sorted by node id; a parameter node inside a ``Rep``
    would need re-sorting per copy (parameter ids are arbitrary), so such
    gadgets are not templated.
    """
    from repro.arithmetic.signed import (
        BinaryNumber,
        Rep,
        SignedBinaryNumber,
        SignedValue,
    )

    if result is None or isinstance(result, (int, np.integer)):
        return True
    if isinstance(result, Rep):
        return all(node >= n_params for node, _ in result.terms)
    if isinstance(result, SignedValue):
        return _result_is_relocatable(result.pos, n_params) and _result_is_relocatable(
            result.neg, n_params
        )
    if isinstance(result, BinaryNumber):
        return True
    if isinstance(result, SignedBinaryNumber):
        return True
    if isinstance(result, (list, tuple)):
        return all(_result_is_relocatable(item, n_params) for item in result)
    return False


class GadgetStamper:
    """Per-builder template cache + batched stamping driver.

    Gadget constructors call :meth:`stamp_all` with a structural signature
    (everything the gadget's gate stream depends on *except* the actual node
    ids), the per-copy parameter rows, and two emitters: one that builds the
    gadget on a :class:`TemplateBuilder` (local ids) and one that builds a
    single copy the legacy way (used for non-templatable gadgets and for
    copies with duplicated parameters).
    """

    def __init__(self, builder) -> None:
        self._builder = builder
        self._templates: Dict[Any, Optional[GadgetTemplate]] = {}

    def template_for(
        self,
        key: Any,
        n_params: int,
        emit_template: Callable[[TemplateBuilder], Any],
    ) -> Optional[GadgetTemplate]:
        """The cached template for ``key`` (None = gadget not templatable)."""
        if key in self._templates:
            return self._templates[key]
        recorder = TemplateBuilder(n_params)
        result = emit_template(recorder)
        template: Optional[GadgetTemplate] = None
        if not recorder.has_param_merge and _result_is_relocatable(result, n_params):
            template = GadgetTemplate(recorder, result)
        self._templates[key] = template
        return template

    def stamp_all(
        self,
        key: Any,
        n_params: int,
        params_list: Sequence[Sequence[int]],
        emit_template: Callable[[TemplateBuilder], Any],
        emit_legacy: Callable[[int], Any],
    ) -> List[Any]:
        """Emit every copy, stamping consecutive clean runs in one call.

        Copies whose parameters repeat a node id are emitted via
        ``emit_legacy`` in place, so the overall gate stream keeps the exact
        legacy order.
        """
        template = self.template_for(key, n_params, emit_template)
        if template is None:
            return [emit_legacy(i) for i in range(len(params_list))]
        k = len(params_list)
        params = np.asarray(params_list, dtype=np.int64).reshape(k, n_params)
        if n_params >= 2:
            row_sorted = np.sort(params, axis=1)
            has_dup = (row_sorted[:, 1:] == row_sorted[:, :-1]).any(axis=1)
        else:
            has_dup = np.zeros(k, dtype=bool)
        if not has_dup.any():
            return template.stamp(self._builder, params)
        results: List[Any] = [None] * k
        dup_indices = np.nonzero(has_dup)[0].tolist()
        start = 0
        for stop in dup_indices + [k]:
            if stop > start:
                for i, mapped in zip(
                    range(start, stop),
                    template.stamp(self._builder, params[start:stop]),
                ):
                    results[i] = mapped
            if stop < k:
                results[stop] = emit_legacy(stop)
            start = stop + 1
        return results
