"""Structural validation of threshold circuits.

The builders in this package produce circuits that are correct by
construction, but the validator provides an independent check used by the
test-suite and available to users who construct or deserialize circuits by
hand.  It verifies:

* every gate references only earlier nodes (acyclicity / topological order),
* weights and thresholds are integers,
* declared outputs exist,
* recorded depths are consistent with the wiring,
* optional resource limits (maximum fan-in, maximum depth) are respected —
  useful when targeting a hardware model with bounded fan-in (paper
  Section 5 discusses splitting work to respect a fan-in budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.circuits.circuit import ThresholdCircuit

__all__ = ["ValidationReport", "validate_circuit"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_circuit`."""

    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no issues were found."""
        return not self.issues

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` listing all issues, if any were found."""
        if self.issues:
            raise ValueError("invalid circuit:\n" + "\n".join(self.issues))


def validate_circuit(
    circuit: ThresholdCircuit,
    max_fan_in: Optional[int] = None,
    max_depth: Optional[int] = None,
    require_outputs: bool = False,
    check_provenance: bool = True,
) -> ValidationReport:
    """Check a circuit's structural invariants and optional resource limits.

    ``check_provenance`` (default on) additionally re-derives every recorded
    :class:`~repro.circuits.template.TemplateBlock` from its compiled
    template via :func:`repro.statics.verifier.provenance_issues`, so a
    circuit whose provenance metadata has drifted from its columnar store
    fails validation; pass ``False`` to validate structure only.
    """
    report = ValidationReport()
    n_inputs = circuit.n_inputs

    for offset, gate in enumerate(circuit.gates):
        node_id = n_inputs + offset
        if len(gate.sources) != len(gate.weights):
            report.issues.append(
                f"gate {node_id}: {len(gate.sources)} sources but {len(gate.weights)} weights"
            )
        for s in gate.sources:
            if not (0 <= s < node_id):
                report.issues.append(
                    f"gate {node_id}: source {s} is not an earlier node"
                )
        for w in gate.weights:
            if not isinstance(w, int):
                report.issues.append(f"gate {node_id}: non-integer weight {w!r}")
        if not isinstance(gate.threshold, int):
            report.issues.append(f"gate {node_id}: non-integer threshold {gate.threshold!r}")
        expected_depth = 1 + max(
            (circuit.node_depth(s) for s in gate.sources if 0 <= s < node_id),
            default=0,
        )
        if circuit.node_depth(node_id) != expected_depth:
            report.issues.append(
                f"gate {node_id}: recorded depth {circuit.node_depth(node_id)} "
                f"!= computed depth {expected_depth}"
            )
        if max_fan_in is not None and gate.fan_in > max_fan_in:
            report.issues.append(
                f"gate {node_id}: fan-in {gate.fan_in} exceeds limit {max_fan_in}"
            )

    for out in circuit.outputs:
        if not (0 <= out < circuit.n_nodes):
            report.issues.append(f"output node {out} does not exist")

    if require_outputs and not circuit.outputs:
        report.issues.append("circuit declares no outputs")

    if max_depth is not None and circuit.depth > max_depth:
        report.issues.append(
            f"circuit depth {circuit.depth} exceeds limit {max_depth}"
        )

    if check_provenance and getattr(circuit, "template_blocks", None):
        # Imported lazily: repro.statics sits above this package.
        from repro.statics import provenance_issues

        report.issues.extend(provenance_issues(circuit))

    return report
