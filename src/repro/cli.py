"""Command-line interface for the reproduction.

The CLI exposes the operations a user typically wants without writing
Python: inspecting a fast-multiplication algorithm and its sparsity
constants, predicting circuit sizes, building a circuit and exporting it to
JSON, and answering a triangle-threshold query for a graph given as an edge
list.

Examples
--------
::

    python -m repro.cli algorithms
    python -m repro.cli info strassen
    python -m repro.cli count --kind trace --n 16 --d 3 --bit-width 1
    python -m repro.cli predict --d 4
    python -m repro.cli build-trace --n 8 --tau 30 --d 3 --output trace8.json
    python -m repro.cli build-matmul --n 4 --bit-width 2 --d 2 --output mm4.json
    python -m repro.cli triangles --edges graph.txt --tau 5
    python -m repro.cli simulate --circuit trace8.json --inputs rows.txt --metrics json
    python -m repro.cli batch-eval --circuit trace8.json --inputs a.txt b.txt --workers 2
    python -m repro.cli energy-trace --circuit trace8.json --samples 32
    python -m repro.cli stats --circuit trace8.json --samples 8 --format text
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Threshold circuits for matrix multiplication (Parekh et al., SPAA 2018)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list the registered fast multiplication algorithms")

    info = sub.add_parser("info", help="describe an algorithm and its sparsity constants")
    info.add_argument("algorithm", help="algorithm name (see `algorithms`)")

    count = sub.add_parser("count", help="exact dry-run gate count of a construction")
    count.add_argument("--kind", choices=["trace", "matmul"], default="trace")
    count.add_argument("--n", type=int, required=True, help="matrix dimension (power of T)")
    count.add_argument("--d", type=int, default=None, help="depth parameter (omit for log-log schedule)")
    count.add_argument("--bit-width", type=int, default=None, help="bits per signed entry magnitude")
    count.add_argument("--algorithm", default="strassen")
    count.add_argument("--stages", type=int, default=1)

    predict = sub.add_parser("predict", help="predicted gate-count exponent omega + c*gamma^d")
    predict.add_argument("--d", type=int, default=None)
    predict.add_argument("--algorithm", default="strassen")

    trace = sub.add_parser("build-trace", help="build a trace(A^3) >= tau circuit and export JSON")
    trace.add_argument("--n", type=int, required=True)
    trace.add_argument("--tau", type=int, required=True)
    trace.add_argument("--d", type=int, default=2)
    trace.add_argument("--bit-width", type=int, default=None)
    trace.add_argument("--algorithm", default="strassen")
    trace.add_argument("--output", default=None, help="path for the JSON netlist")

    matmul = sub.add_parser("build-matmul", help="build a C = AB circuit and export JSON")
    matmul.add_argument("--n", type=int, required=True)
    matmul.add_argument("--d", type=int, default=2)
    matmul.add_argument("--bit-width", type=int, default=None)
    matmul.add_argument("--algorithm", default="strassen")
    matmul.add_argument("--output", default=None)

    triangles = sub.add_parser("triangles", help="answer a triangle-threshold query for an edge list")
    triangles.add_argument("--edges", required=True, help="text file with one 'u v' edge per line")
    triangles.add_argument("--tau", type=int, required=True, help="triangle threshold")
    triangles.add_argument("--d", type=int, default=2)
    triangles.add_argument("--naive", action="store_true", help="also run the naive depth-2 circuit")

    simulate = sub.add_parser(
        "simulate", help="evaluate a serialized circuit on 0/1 input rows via the engine"
    )
    simulate.add_argument("--circuit", required=True, help="circuit JSON (see build-trace/build-matmul)")
    simulate.add_argument(
        "--inputs", required=True,
        help="text file: one assignment per line, 0/1 tokens or a contiguous bitstring",
    )
    simulate.add_argument("--backend", choices=["auto", "sparse", "dense", "exact"], default="auto")
    simulate.add_argument("--chunk-size", type=int, default=None, help="batch column-block width")
    simulate.add_argument("--workers", type=int, default=None, help="shard chunks over N processes")
    simulate.add_argument(
        "--metrics", choices=["text", "json"], default=None,
        help="enable telemetry and dump the metric snapshot after the run "
        "(json: embedded in the payload; text: Prometheus format appended)",
    )

    batch_eval = sub.add_parser(
        "batch-eval",
        help="pipeline many input batches through the persistent evaluation service",
    )
    batch_eval.add_argument("--circuit", required=True, help="circuit JSON")
    batch_eval.add_argument(
        "--inputs", required=True, nargs="+",
        help="one or more input-row files; each file is submitted as one job",
    )
    batch_eval.add_argument("--backend", choices=["auto", "sparse", "dense", "exact"], default="auto")
    batch_eval.add_argument("--workers", type=int, default=2, help="resident worker processes")
    batch_eval.add_argument("--chunk-size", type=int, default=None, help="batch column-block width")
    batch_eval.add_argument(
        "--repeat", type=int, default=1,
        help="submit every batch this many times (steady-state throughput)",
    )
    batch_eval.add_argument(
        "--metrics", choices=["text", "json"], default=None,
        help="enable telemetry and dump the metric snapshot after the run "
        "(json: embedded in the payload; text: Prometheus format appended)",
    )

    stats = sub.add_parser(
        "stats",
        help="process telemetry snapshot (optionally exercising a circuit first)",
    )
    stats.add_argument("--circuit", default=None, help="circuit JSON to evaluate before the dump")
    stats.add_argument("--inputs", default=None, help="input rows file (default: random samples)")
    stats.add_argument("--samples", type=int, default=8, help="random samples when --inputs is omitted")
    stats.add_argument("--seed", type=int, default=2018, help="seed for random samples")
    stats.add_argument("--backend", choices=["auto", "sparse", "dense", "exact"], default="auto")
    stats.add_argument("--format", choices=["json", "text"], default="json")

    soak = sub.add_parser(
        "soak",
        help="run the invariant soak harness against a resident evaluation service",
    )
    soak.add_argument(
        "--seconds", type=float, default=None,
        help="submission window length (default: SOAK_SECONDS env or 10)",
    )
    soak.add_argument("--workers", type=int, default=2, help="resident worker processes")
    soak.add_argument("--seed", type=int, default=2018, help="input generation seed")
    soak.add_argument(
        "--faults", default=None, metavar="JSON",
        help="inject a FaultPlan given as its JSON dict form",
    )
    soak.add_argument(
        "--aggressive", action="store_true",
        help="inject the kitchen-sink aggressive_plan() (ignored if --faults given)",
    )
    soak.add_argument(
        "--timeout", type=float, default=None,
        help="per-job deadline in seconds (DeadlineExceeded becomes an allowed failure)",
    )

    verify = sub.add_parser(
        "verify",
        help="statically verify circuit JSON files (abstract interpretation + provenance)",
    )
    verify.add_argument("circuits", nargs="+", help="circuit JSON files to verify")
    verify.add_argument(
        "--quick", action="store_true",
        help="structure + provenance only (skip intervals, reachability, plan cross-checks)",
    )
    verify.add_argument("--format", choices=["json", "text"], default="json")

    energy_trace = sub.add_parser(
        "energy-trace", help="spiking-mode per-layer spike counts and energy of a circuit"
    )
    energy_trace.add_argument("--circuit", required=True, help="circuit JSON")
    energy_trace.add_argument("--inputs", default=None, help="input rows file (default: random samples)")
    energy_trace.add_argument("--samples", type=int, default=16, help="random samples when --inputs is omitted")
    energy_trace.add_argument("--seed", type=int, default=2018, help="seed for random samples")
    energy_trace.add_argument("--backend", choices=["auto", "sparse", "dense", "exact"], default="auto")

    cache = sub.add_parser(
        "cache", help="inspect and manage the on-disk compile-artifact cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="artifact counts, byte totals, and per-artifact listing"
    )
    cache_stats.add_argument(
        "--artifact-dir", default=None,
        help="artifact directory (default: $REPRO_ARTIFACT_DIR or ~/.cache/repro/artifacts)",
    )
    cache_stats.add_argument("--format", choices=["json", "text"], default="json")
    cache_prune = cache_sub.add_parser(
        "prune", help="sweep stale staging dirs and evict oldest artifacts over a size cap"
    )
    cache_prune.add_argument("--artifact-dir", default=None)
    cache_prune.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest artifacts (by mtime — restores refresh it) until the total fits",
    )
    cache_prune.add_argument(
        "--tmp-age", type=float, default=3600.0,
        help="sweep .tmp-* staging dirs older than this many seconds (crashed writers)",
    )
    cache_warm = cache_sub.add_parser(
        "warm", help="pre-compile circuits into the artifact store"
    )
    cache_warm.add_argument(
        "--circuit", action="append", default=None,
        help="circuit JSON to compile and store, repeatable (omitted: recompile the "
        "circuits already bundled in the store for --backend)",
    )
    cache_warm.add_argument(
        "--backend", choices=["auto", "sparse", "dense", "exact"], default="auto"
    )
    cache_warm.add_argument("--artifact-dir", default=None)

    return parser


def _print(payload: dict, stream) -> None:
    json.dump(payload, stream, indent=2, default=str)
    stream.write("\n")


def _cmd_algorithms(args, stream) -> int:
    from repro.fastmm import available_algorithms

    _print({"algorithms": available_algorithms()}, stream)
    return 0


def _cmd_info(args, stream) -> int:
    from repro.fastmm import get_algorithm, sparsity_parameters

    algorithm = get_algorithm(args.algorithm)
    params = sparsity_parameters(algorithm)
    _print(
        {
            "description": algorithm.describe().splitlines(),
            "sparsity": params.as_dict(),
        },
        stream,
    )
    return 0


def _cmd_count(args, stream) -> int:
    from repro.core.gate_count_model import count_matmul_circuit, count_trace_circuit
    from repro.fastmm import get_algorithm

    algorithm = get_algorithm(args.algorithm)
    if args.kind == "trace":
        cost = count_trace_circuit(
            args.n,
            bit_width=args.bit_width,
            algorithm=algorithm,
            depth_parameter=args.d,
            stages=args.stages,
        )
    else:
        cost = count_matmul_circuit(
            args.n,
            bit_width=args.bit_width,
            algorithm=algorithm,
            depth_parameter=args.d,
            stages=args.stages,
        )
    _print({"kind": args.kind, "n": args.n, "d": args.d, **cost.as_dict()}, stream)
    return 0


def _cmd_predict(args, stream) -> int:
    from repro.core.gate_count_model import predicted_exponent
    from repro.fastmm import get_algorithm, sparsity_parameters

    algorithm = get_algorithm(args.algorithm)
    params = sparsity_parameters(algorithm)
    _print(
        {
            "algorithm": args.algorithm,
            "omega": algorithm.omega,
            "gamma": params.side_A.gamma,
            "c": params.side_A.c,
            "d": args.d,
            "exponent": predicted_exponent(algorithm, args.d),
        },
        stream,
    )
    return 0


def _export(circuit, path: Optional[str], stream, extra: dict) -> int:
    from repro.circuits.serialize import dump_circuit

    stats = circuit.stats()
    payload = {**extra, **stats.as_dict()}
    if path:
        dump_circuit(circuit, path)
        payload["written_to"] = path
    _print(payload, stream)
    return 0


def _cmd_build_trace(args, stream) -> int:
    from repro.core.trace_circuit import build_trace_circuit
    from repro.fastmm import get_algorithm

    built = build_trace_circuit(
        args.n,
        args.tau,
        bit_width=args.bit_width,
        algorithm=get_algorithm(args.algorithm),
        depth_parameter=args.d,
    )
    return _export(built.circuit, args.output, stream, {"kind": "trace", "tau": args.tau})


def _cmd_build_matmul(args, stream) -> int:
    from repro.core.matmul_circuit import build_matmul_circuit
    from repro.fastmm import get_algorithm

    built = build_matmul_circuit(
        args.n,
        bit_width=args.bit_width,
        algorithm=get_algorithm(args.algorithm),
        depth_parameter=args.d,
    )
    return _export(built.circuit, args.output, stream, {"kind": "matmul"})


def _read_edge_list(path: str) -> np.ndarray:
    edges: List[tuple] = []
    max_vertex = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_number}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            edges.append((u, v))
            max_vertex = max(max_vertex, u, v)
    if max_vertex < 0:
        raise ValueError(f"{path}: no edges found")
    adjacency = np.zeros((max_vertex + 1, max_vertex + 1), dtype=np.int64)
    for u, v in edges:
        adjacency[u, v] = adjacency[v, u] = 1
    return adjacency


def _cmd_triangles(args, stream) -> int:
    from repro.core.naive_circuits import build_naive_triangle_circuit
    from repro.triangles import build_triangle_query, triangle_count

    adjacency = _read_edge_list(args.edges)
    n = adjacency.shape[0]
    query = build_triangle_query(n, tau_triangles=args.tau, depth_parameter=args.d)
    answer = query.evaluate(adjacency)
    payload = {
        "vertices": n,
        "edges": int(adjacency.sum() // 2),
        "tau": args.tau,
        "circuit_answer": bool(answer),
        "exact_triangles": triangle_count(adjacency),
        "circuit_gates": query.trace_circuit.circuit.size,
        "circuit_depth": query.trace_circuit.circuit.depth,
    }
    if args.naive:
        naive = build_naive_triangle_circuit(max(n, 3), args.tau)
        padded = np.zeros((max(n, 3), max(n, 3)), dtype=np.int64)
        padded[:n, :n] = adjacency
        payload["naive_answer"] = bool(naive.evaluate(padded))
        payload["naive_gates"] = naive.circuit.size
    _print(payload, stream)
    return 0


def _read_input_rows(path: str, n_inputs: int) -> np.ndarray:
    """Read 0/1 assignments (one per line) into a ``(n_inputs, batch)`` array.

    Each non-comment line is either whitespace-separated 0/1 tokens or a
    contiguous bitstring like ``0110``; every line must provide exactly
    ``n_inputs`` values.
    """
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split() if " " in line or "\t" in line else list(line)
            if len(tokens) != n_inputs or any(t not in ("0", "1") for t in tokens):
                raise ValueError(
                    f"{path}:{line_number}: expected {n_inputs} 0/1 values, got {line!r}"
                )
            rows.append([int(t) for t in tokens])
    if not rows:
        raise ValueError(f"{path}: no input rows found")
    return np.asarray(rows, dtype=np.int64).T


def _make_engine(backend: str, chunk_size=None, workers=None):
    from repro.engine import Engine, EngineConfig, default_engine

    if chunk_size is None and workers is None and backend == "auto":
        return default_engine()
    config = EngineConfig(
        backend=backend,
        chunk_size=chunk_size if chunk_size is not None else EngineConfig.chunk_size,
        max_workers=workers if workers is not None else 0,
        # The user asked for workers: the scheduler shards any batch, however
        # small, and narrows the chunk width so every worker gets one.
        parallel_threshold=1,
    )
    return Engine(config)


@contextlib.contextmanager
def _metrics_session(wanted: bool):
    """Swap in a fresh enabled registry for one command, then restore.

    The swap keeps ``--metrics`` runs self-contained: the dump covers only
    this command's work, and in-process callers of :func:`main` (tests)
    don't inherit an enabled registry after the command returns.
    """
    if not wanted:
        yield None
        return
    from repro import obs

    previous = obs.get_registry()
    registry = obs.MetricsRegistry()
    obs.set_registry(registry)
    try:
        yield registry
    finally:
        obs.set_registry(previous)


def _emit_metrics(payload: dict, registry, fmt, stream) -> None:
    """Attach (json) or append (text) the metric dump to the command output."""
    if registry is not None and fmt == "json":
        payload["metrics"] = registry.snapshot()
    _print(payload, stream)
    if registry is not None and fmt == "text":
        stream.write(registry.render())


def _cmd_simulate(args, stream) -> int:
    from repro.circuits.serialize import load_circuit

    circuit = load_circuit(args.circuit)
    batch = _read_input_rows(args.inputs, circuit.n_inputs)
    with _metrics_session(args.metrics is not None) as registry:
        engine = _make_engine(args.backend, args.chunk_size, args.workers)
        program = engine.compile(circuit)
        result = engine.evaluate(circuit, batch)  # cache hit: no recompile
        payload = {
            "circuit": args.circuit,
            "n_inputs": circuit.n_inputs,
            "gates": circuit.size,
            "batch": int(batch.shape[1]),
            "backend": program.backend_name,
            "output_labels": circuit.output_labels,
            "outputs": result.outputs.T.tolist(),
            "energy": result.energy.tolist(),
            "cache": engine.cache_info().as_dict(),
        }
        _emit_metrics(payload, registry, args.metrics, stream)
    return 0


def _cmd_batch_eval(args, stream) -> int:
    import time

    from repro.circuits.serialize import load_circuit
    from repro.engine import Engine, EngineConfig

    if args.repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {args.repeat}")
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    circuit = load_circuit(args.circuit)
    batches = [_read_input_rows(path, circuit.n_inputs) for path in args.inputs]
    config = EngineConfig(
        backend=args.backend,
        chunk_size=args.chunk_size if args.chunk_size is not None else EngineConfig.chunk_size,
        # --workers 1 evaluates inline (no resident pool), same as the engine.
        max_workers=args.workers,
        # Batches of two or more rows reach the resident pool, however
        # narrow; single-row files (and --workers 1) evaluate inline, in
        # which case the printed "service" stats are null.
        parallel_threshold=1,
        persistent_pool=True,
    )
    with _metrics_session(args.metrics is not None) as registry:
        with Engine(config) as engine:
            program = engine.compile(circuit)
            start = time.perf_counter()
            futures = [
                engine.submit(circuit, batch)
                for _ in range(args.repeat)
                for batch in batches
            ]
            results = [future.result() for future in futures]
            elapsed = time.perf_counter() - start
            jobs = []
            for path, result in zip(args.inputs, results[-len(batches):]):
                jobs.append(
                    {
                        "inputs": path,
                        "batch": int(np.atleast_2d(result.outputs).shape[1]),
                        "outputs": np.atleast_2d(result.outputs).T.tolist(),
                        "energy": np.atleast_1d(result.energy).tolist(),
                    }
                )
            service = engine._service  # surfaced for observability; may be None
            payload = {
                "circuit": args.circuit,
                "n_inputs": circuit.n_inputs,
                "gates": circuit.size,
                "backend": program.backend_name,
                "workers": config.max_workers,
                "jobs_submitted": len(futures),
                "wall_s": round(elapsed, 4),
                "jobs_per_s": round(len(futures) / elapsed, 2) if elapsed else None,
                "service": service.stats().as_dict() if service is not None else None,
                "cache": engine.cache_info().as_dict(),
                "jobs": jobs,
            }
            _emit_metrics(payload, registry, args.metrics, stream)
    return 0


def _cmd_stats(args, stream) -> int:
    from repro import obs

    previous = obs.get_registry()
    # Reuse an already-enabled process registry (REPRO_TELEMETRY=1) so the
    # dump includes whatever this process recorded; otherwise start fresh.
    registry = previous if previous.enabled else obs.MetricsRegistry()
    obs.set_registry(registry)
    try:
        if args.circuit is not None:
            from repro.circuits.serialize import load_circuit

            circuit = load_circuit(args.circuit)
            if args.inputs is not None:
                batch = _read_input_rows(args.inputs, circuit.n_inputs)
            else:
                if args.samples < 1:
                    raise ValueError(f"--samples must be >= 1, got {args.samples}")
                rng = np.random.default_rng(args.seed)
                batch = rng.integers(0, 2, size=(circuit.n_inputs, args.samples))
            engine = _make_engine(args.backend)
            engine.evaluate(circuit, batch)
        if args.format == "text":
            stream.write(registry.render())
        else:
            _print(registry.snapshot(), stream)
    finally:
        obs.set_registry(previous)
    return 0


def _cmd_energy_trace(args, stream) -> int:
    from repro.circuits.serialize import load_circuit

    circuit = load_circuit(args.circuit)
    if args.inputs is not None:
        batch = _read_input_rows(args.inputs, circuit.n_inputs)
    else:
        if args.samples < 1:
            raise ValueError(f"--samples must be >= 1, got {args.samples}")
        rng = np.random.default_rng(args.seed)
        batch = rng.integers(0, 2, size=(circuit.n_inputs, args.samples))
    engine = _make_engine(args.backend)
    trace = engine.spike_trace(circuit, batch)
    payload = {
        "circuit": args.circuit,
        "circuit_size": circuit.size,
        "backend": engine.compile(circuit).backend_name,
        **trace.as_dict(),
    }
    payload["mean_fraction_firing"] = (
        payload["mean_energy"] / circuit.size if circuit.size else 0.0
    )
    _print(payload, stream)
    return 0


def _cmd_soak(args, stream) -> int:
    from repro.engine.faults import FaultPlan, aggressive_plan
    from repro.engine.soak import default_soak_config, run_soak

    seconds = args.seconds
    if seconds is None:
        seconds = float(os.environ.get("SOAK_SECONDS", "10"))
    plan = None
    if args.faults is not None:
        plan = FaultPlan.from_json(args.faults)
    elif args.aggressive:
        plan = aggressive_plan()
    report = run_soak(
        seconds,
        config=default_soak_config(max_workers=args.workers),
        fault_plan=plan,
        seed=args.seed,
        job_timeout=args.timeout,
    )
    problems = report.problems()
    _print({**report.as_dict(), "problems": problems, "ok": not problems}, stream)
    return 0 if not problems else 1


def _cmd_verify(args, stream) -> int:
    from repro.circuits.serialize import load_circuit
    from repro.statics import StaticReport, verify_circuit

    deep = not args.quick
    reports = []
    for path in args.circuits:
        try:
            # The verifier re-checks structure/provenance itself (and reports
            # them as findings, not exceptions), so load without the default
            # load-time validation to avoid doing the work twice.
            circuit = load_circuit(path, validate=False)
        except Exception as exc:  # noqa: BLE001 - per-file error becomes a finding
            report = StaticReport(target=str(path))
            report.issues.append(f"failed to load circuit: {exc}")
            reports.append(report)
            continue
        reports.append(
            verify_circuit(
                circuit,
                intervals=deep,
                reachability=deep,
                plans=deep,
                target=str(path),
            )
        )
    ok = all(report.ok for report in reports)
    if args.format == "json":
        _print(
            {"ok": ok, "reports": [report.as_dict() for report in reports]},
            stream,
        )
    else:
        for report in reports:
            status = "ok" if report.ok else "FAIL"
            stream.write(f"{report.target}: {status}\n")
            for issue in report.issues:
                stream.write(f"  issue: {issue}\n")
            for warning in report.warnings:
                stream.write(f"  warning: {warning}\n")
    return 0 if ok else 1


def _cmd_cache(args, stream) -> int:
    from repro.engine.diskcache import DiskArtifactStore

    store = DiskArtifactStore(args.artifact_dir)
    if args.cache_command == "stats":
        stats = store.stats()
        entries = store.entries()
        if args.format == "json":
            payload = stats.as_dict()
            payload["entries"] = [entry.as_dict() for entry in entries]
            _print(payload, stream)
        else:
            stream.write(f"artifact dir: {stats.directory}\n")
            stream.write(
                f"artifacts: {stats.artifacts} ({stats.total_bytes} bytes, "
                f"{stats.tmp_dirs} staging dirs)\n"
            )
            for entry in entries:
                circuit_note = " +circuit" if entry.has_circuit else ""
                stream.write(
                    f"  {entry.backend:7s} {entry.structural_hash[:16]}... "
                    f"v{entry.version} {entry.bytes} bytes{circuit_note}\n"
                )
        return 0

    if args.cache_command == "prune":
        result = store.prune(max_bytes=args.max_bytes, tmp_max_age_s=args.tmp_age)
        result["directory"] = store.directory
        _print(result, stream)
        return 0

    # warm: compile circuits (user files, or the ones bundled in existing
    # artifacts) and publish the programs so later processes restore them.
    from repro.circuits.serialize import load_circuit
    from repro.engine import Engine, EngineConfig

    jobs = []
    if args.circuit:
        for path in args.circuit:
            # User-supplied files keep the validate-by-default load; only
            # checksummed in-store bundles take the trusted fast path.
            jobs.append((path, load_circuit(path)))
    else:
        for entry in store.entries():
            if not entry.has_circuit:
                continue
            circuit = store.get_circuit(entry.structural_hash, entry.backend)
            if circuit is not None:
                jobs.append((entry.path, circuit))
    engine = Engine(EngineConfig(backend=args.backend))
    warmed = []
    for label, circuit in jobs:
        key_hash = circuit.structural_hash()
        if args.backend != "auto" and store.contains(key_hash, args.backend):
            warmed.append(
                {
                    "source": label,
                    "structural_hash": key_hash,
                    "backend": args.backend,
                    "stored": False,
                }
            )
            continue
        program, key = engine.compile_entry(circuit)
        stored = store.put(key[0], key[1], program, circuit=circuit)
        warmed.append(
            {
                "source": label,
                "structural_hash": key[0],
                "backend": key[1],
                "stored": stored,
            }
        )
    _print({"directory": store.directory, "warmed": warmed}, stream)
    return 0


_COMMANDS = {
    "algorithms": _cmd_algorithms,
    "info": _cmd_info,
    "count": _cmd_count,
    "predict": _cmd_predict,
    "build-trace": _cmd_build_trace,
    "build-matmul": _cmd_build_matmul,
    "triangles": _cmd_triangles,
    "simulate": _cmd_simulate,
    "batch-eval": _cmd_batch_eval,
    "stats": _cmd_stats,
    "soak": _cmd_soak,
    "verify": _cmd_verify,
    "energy-trace": _cmd_energy_trace,
    "cache": _cmd_cache,
}


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    """Entry point; returns a process exit code."""
    stream = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
