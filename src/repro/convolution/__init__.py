"""Convolution-as-matrix-multiplication application (paper Section 5)."""

from repro.convolution.im2col import (
    ConvolutionShape,
    im2col,
    kernels_to_matrix,
    conv2d_reference,
)
from repro.convolution.conv_layer import CircuitConvolutionLayer, build_convolution_layer

__all__ = [
    "ConvolutionShape",
    "im2col",
    "kernels_to_matrix",
    "conv2d_reference",
    "CircuitConvolutionLayer",
    "build_convolution_layer",
]
