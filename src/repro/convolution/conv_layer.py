"""Circuit-backed convolution layers.

The GEMM induced by a convolution layer (see :mod:`repro.convolution.im2col`)
is rectangular (P x Q times Q x K); the paper's circuits multiply square
matrices whose dimension is a power of the base dimension T.  The layer
therefore embeds the two factors into the top-left corner of square
zero-padded matrices, runs the Theorem 4.9 product circuit once, and crops
the result — precisely the "pad to the nearest convenient size" treatment a
hardware mapping would use.  For fan-in-limited targets the GEMM can instead
be split row-wise (see :mod:`repro.analysis.fanin`), as discussed at the end
of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.convolution.im2col import ConvolutionShape, conv2d_reference, im2col, kernels_to_matrix
from repro.core.matmul_circuit import MatmulCircuit, build_matmul_circuit
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2
from repro.util.bits import max_abs_entry_bits
from repro.util.intmath import ceil_log

__all__ = ["CircuitConvolutionLayer", "build_convolution_layer"]


@dataclass
class CircuitConvolutionLayer:
    """A convolution layer whose GEMM runs on a threshold circuit."""

    shape: ConvolutionShape
    matmul: MatmulCircuit
    gemm_dimension: int

    def _embed(self, matrix: np.ndarray) -> np.ndarray:
        out = np.zeros((self.gemm_dimension, self.gemm_dimension), dtype=np.int64)
        out[: matrix.shape[0], : matrix.shape[1]] = matrix
        return out

    def apply(self, image: np.ndarray, kernels: np.ndarray) -> np.ndarray:
        """Convolve ``image`` with ``kernels`` via the threshold circuit.

        Returns the ``P x K`` integer score matrix.
        """
        patches = im2col(image, self.shape)
        kernel_matrix = kernels_to_matrix(kernels, self.shape)
        bound = 1 << (self.matmul.bit_width)
        if np.abs(patches).max(initial=0) >= bound or np.abs(kernel_matrix).max(initial=0) >= bound:
            raise ValueError(
                f"image/kernel entries exceed the circuit's {self.matmul.bit_width}-bit budget"
            )
        product = self.matmul.evaluate(self._embed(patches), self._embed(kernel_matrix))
        p, _, k = self.shape.gemm_shape
        return product[:p, :k]

    def reference(self, image: np.ndarray, kernels: np.ndarray) -> np.ndarray:
        """Exact convolution oracle."""
        return conv2d_reference(image, kernels, self.shape)


def build_convolution_layer(
    shape: ConvolutionShape,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    depth_parameter: int = 2,
) -> CircuitConvolutionLayer:
    """Build the circuit for a convolution layer of the given static shape.

    ``bit_width`` is the per-entry magnitude budget for image and kernel
    values (default 4 bits, i.e. entries in ``(-16, 16)``, a typical
    quantized-network regime).
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    bit_width = 4 if bit_width is None else bit_width
    p, q, k = shape.gemm_shape
    gemm_dim = max(p, q, k)
    padded_dim = algorithm.t ** ceil_log(max(gemm_dim, algorithm.t), algorithm.t)
    matmul = build_matmul_circuit(
        padded_dim,
        bit_width=bit_width,
        algorithm=algorithm,
        depth_parameter=depth_parameter,
    )
    return CircuitConvolutionLayer(shape=shape, matmul=matmul, gemm_dimension=padded_dim)
