"""im2col: convolution layers as matrix multiplication (paper Section 5).

Following Warden's description cited by the paper, a convolutional layer on
an ``n x n`` image with ``channels`` channels, ``K`` kernels of spatial size
``q x q`` and a given stride is one matrix product:

* the *patch matrix* is ``P x Q`` where ``P`` is the number of patches
  (kernel placements) and ``Q = q * q * channels`` the number of values per
  patch;
* the *kernel matrix* is ``Q x K``;
* their product is the ``P x K`` score matrix.

The helpers here build those matrices from integer images and kernels so the
product can be computed either conventionally or with the threshold circuits
of :mod:`repro.core.matmul_circuit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ConvolutionShape", "im2col", "kernels_to_matrix", "conv2d_reference"]


@dataclass(frozen=True)
class ConvolutionShape:
    """Static shape information of a convolution-as-GEMM."""

    image_size: int
    channels: int
    kernel_size: int
    stride: int
    n_kernels: int

    def __post_init__(self) -> None:
        if self.kernel_size > self.image_size:
            raise ValueError("kernel larger than image")
        if self.stride < 1:
            raise ValueError(f"stride must be positive, got {self.stride}")
        for name in ("image_size", "channels", "kernel_size", "n_kernels"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")

    @property
    def patches_per_side(self) -> int:
        """Number of kernel placements along one image dimension."""
        return (self.image_size - self.kernel_size) // self.stride + 1

    @property
    def n_patches(self) -> int:
        """P: total number of patches."""
        return self.patches_per_side ** 2

    @property
    def patch_length(self) -> int:
        """Q: values per patch (= kernel entries times channels)."""
        return self.kernel_size * self.kernel_size * self.channels

    @property
    def gemm_shape(self) -> Tuple[int, int, int]:
        """The (P, Q, K) dimensions of the induced matrix product."""
        return (self.n_patches, self.patch_length, self.n_kernels)


def im2col(image: np.ndarray, shape: ConvolutionShape) -> np.ndarray:
    """Extract the P x Q patch matrix from an image of shape (H, W, channels)."""
    image = np.asarray(image)
    if image.ndim == 2:
        image = image[:, :, None]
    expected = (shape.image_size, shape.image_size, shape.channels)
    if image.shape != expected:
        raise ValueError(f"expected an image of shape {expected}, got {image.shape}")
    q, stride = shape.kernel_size, shape.stride
    rows = []
    for top in range(0, shape.image_size - q + 1, stride):
        for left in range(0, shape.image_size - q + 1, stride):
            patch = image[top : top + q, left : left + q, :]
            rows.append(patch.reshape(-1))
    return np.stack(rows, axis=0)


def kernels_to_matrix(kernels: np.ndarray, shape: ConvolutionShape) -> np.ndarray:
    """Flatten kernels of shape (K, q, q, channels) into the Q x K matrix."""
    kernels = np.asarray(kernels)
    expected = (shape.n_kernels, shape.kernel_size, shape.kernel_size, shape.channels)
    if kernels.shape != expected:
        raise ValueError(f"expected kernels of shape {expected}, got {kernels.shape}")
    return kernels.reshape(shape.n_kernels, -1).T


def conv2d_reference(image: np.ndarray, kernels: np.ndarray, shape: ConvolutionShape) -> np.ndarray:
    """Direct (loop-based) convolution used as the correctness oracle."""
    patches = im2col(image, shape)
    kernel_matrix = kernels_to_matrix(kernels, shape)
    return patches.astype(object) @ kernel_matrix.astype(object)
