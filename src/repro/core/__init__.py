"""The paper's core constructions (Section 4).

* :mod:`repro.core.trees` — the r-ary trees of Figure 2;
* :mod:`repro.core.schedule` — the level-selection schedules of Lemma 4.3,
  Theorem 4.4 (O(log log N) depth) and Theorem 4.5 (constant depth);
* :mod:`repro.core.leaf_builder`, :mod:`repro.core.product_stage`,
  :mod:`repro.core.recombine` — the three circuit stages;
* :mod:`repro.core.trace_circuit` — Theorems 4.4 / 4.5 (``trace(A^3) >= tau``);
* :mod:`repro.core.matmul_circuit` — Theorems 4.8 / 4.9 (``C = AB``);
* :mod:`repro.core.naive_circuits` — the Theta(N^3) baselines of Section 1;
* :mod:`repro.core.direct_circuit` — the Theorem 4.1 single-jump circuits;
* :mod:`repro.core.gate_count_model` — exact dry-run and analytic gate counts.
"""

from repro.core.trees import (
    edge_matrices,
    edge_term_counts,
    iter_paths,
    relative_functional,
    path_size,
    functional_weight_sum,
    subtree_size_sum,
    leaf_functionals,
)
from repro.core.schedule import (
    LevelSchedule,
    loglog_schedule,
    constant_depth_schedule,
    direct_schedule,
    every_k_schedule,
    schedule_for,
)
from repro.core.leaf_builder import matrix_of_inputs, build_tree_levels
from repro.core.product_stage import build_leaf_products
from repro.core.recombine import build_product_tree
from repro.core.trace_circuit import (
    TraceCircuit,
    assemble_trace_circuit,
    build_trace_circuit,
    default_bit_width,
)
from repro.core.matmul_circuit import (
    MatmulCircuit,
    assemble_matmul_circuit,
    build_matmul_circuit,
)
from repro.core.naive_circuits import (
    NaiveTriangleCircuit,
    build_naive_triangle_circuit,
    build_naive_matmul_circuit,
    build_naive_trace_circuit,
)
from repro.core.direct_circuit import (
    build_direct_matmul_circuit,
    build_direct_trace_circuit,
)
from repro.core.gate_count_model import (
    CircuitCost,
    count_trace_circuit,
    count_matmul_circuit,
    naive_triangle_gate_count,
    analytic_cost,
    predicted_exponent,
    naive_exponent_fit,
)

__all__ = [
    "edge_matrices",
    "edge_term_counts",
    "iter_paths",
    "relative_functional",
    "path_size",
    "functional_weight_sum",
    "subtree_size_sum",
    "leaf_functionals",
    "LevelSchedule",
    "loglog_schedule",
    "constant_depth_schedule",
    "direct_schedule",
    "every_k_schedule",
    "schedule_for",
    "matrix_of_inputs",
    "build_tree_levels",
    "build_leaf_products",
    "build_product_tree",
    "TraceCircuit",
    "assemble_trace_circuit",
    "build_trace_circuit",
    "default_bit_width",
    "MatmulCircuit",
    "assemble_matmul_circuit",
    "build_matmul_circuit",
    "NaiveTriangleCircuit",
    "build_naive_triangle_circuit",
    "build_naive_matmul_circuit",
    "build_naive_trace_circuit",
    "build_direct_matmul_circuit",
    "build_direct_trace_circuit",
    "CircuitCost",
    "count_trace_circuit",
    "count_matmul_circuit",
    "naive_triangle_gate_count",
    "analytic_cost",
    "predicted_exponent",
    "naive_exponent_fit",
]
