"""Theorem 4.1: the direct (single-jump) construction with staged addition.

The paper's Section 4.2 motivates the level-selection technique by first
analysing the naive flattening of the fast algorithm: compute every leaf of
T_A and T_B directly from the inputs.  With depth-2 sums this costs about
``N^(1 + omega)`` (~N^3.81 for Strassen) gates; replacing the depth-2 sums by
depth-``2d`` staged addition circuits (Siu et al.) yields Theorem 4.1's
``O~(d N^(omega + 1/d))`` gates in depth ``O(d)``.

Both variants are obtained here by running the standard constructions with
the single-jump ("direct") schedule and the requested number of stages, so
the experiment E5 harness can sweep them directly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.matmul_circuit import MatmulCircuit, build_matmul_circuit
from repro.core.schedule import direct_schedule
from repro.core.trace_circuit import TraceCircuit, build_trace_circuit
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2

__all__ = ["build_direct_matmul_circuit", "build_direct_trace_circuit"]


def build_direct_matmul_circuit(
    n: int,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    stages: int = 1,
    vectorize: bool = True,
    banked: bool = True,
) -> MatmulCircuit:
    """Theorem 4.1 matrix-product circuit (single-jump schedule, staged sums).

    Like every driver, the stamped construction's template provenance rides
    on the returned ``circuit`` (``template_blocks``), so engine compiles of
    direct circuits take the template-streaming path too.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    return build_matmul_circuit(
        n,
        bit_width=bit_width,
        algorithm=algorithm,
        schedule=direct_schedule(algorithm, n),
        stages=stages,
        vectorize=vectorize,
        banked=banked,
    )


def build_direct_trace_circuit(
    n: int,
    tau: int,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    stages: int = 1,
    vectorize: bool = True,
    banked: bool = True,
) -> TraceCircuit:
    """Theorem 4.1-style trace circuit (single-jump schedule, staged sums)."""
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    return build_trace_circuit(
        n,
        tau,
        bit_width=bit_width,
        algorithm=algorithm,
        schedule=direct_schedule(algorithm, n),
        stages=stages,
        vectorize=vectorize,
        banked=banked,
    )
