"""Gate-count models: exact dry-run counts and the paper's analytic bounds.

Two complementary models are provided.

**Exact dry-run counts** run the unchanged circuit constructions against a
:class:`~repro.circuits.counting.CountingBuilder`, so they report exactly the
size/depth/edges/fan-in of the circuit that :func:`build_trace_circuit` /
:func:`build_matmul_circuit` would produce — without allocating gate objects.
They enumerate the same ``N^omega`` leaves as the real construction, so they
are practical up to moderate N (a few thousand leaves per tree).

**Analytic estimates** evaluate the paper's counting lemmas (Lemma 4.2 / 4.3
for the leaf stage, Lemma 4.6 / 4.7 for the recombination stage, Lemma 3.3
for the product stage) with explicit unit constants.  They capture the
scaling behaviour — the exponent ``omega + c * gamma^d`` of Theorems 4.5/4.9
and the ``N^3`` baseline — and are used for the large-N sweeps of
EXPERIMENTS.md where explicit enumeration is out of reach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.circuits.counting import CountingBuilder
from repro.core.matmul_circuit import assemble_matmul_circuit
from repro.core.schedule import LevelSchedule, schedule_for
from repro.core.trace_circuit import assemble_trace_circuit, default_bit_width
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.sparsity import sparsity_parameters
from repro.fastmm.strassen import strassen_2x2

__all__ = [
    "CircuitCost",
    "count_trace_circuit",
    "count_matmul_circuit",
    "naive_triangle_gate_count",
    "analytic_cost",
    "predicted_exponent",
    "naive_exponent_fit",
]


@dataclass(frozen=True)
class CircuitCost:
    """Exact resource usage of a construction (from a counting dry run)."""

    size: int
    depth: int
    edges: int
    max_fan_in: int
    n_inputs: int
    by_tag: Dict[str, int]

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view for reports."""
        return {
            "size": self.size,
            "depth": self.depth,
            "edges": self.edges,
            "max_fan_in": self.max_fan_in,
            "n_inputs": self.n_inputs,
        }


def _cost_from(builder: CountingBuilder) -> CircuitCost:
    return CircuitCost(
        size=builder.size,
        depth=builder.depth,
        edges=builder.edges,
        max_fan_in=builder.max_fan_in,
        n_inputs=builder.n_inputs,
        by_tag=builder.tag_counts(),
    )


def count_trace_circuit(
    n: int,
    tau: int = 1,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    schedule: Optional[LevelSchedule] = None,
    depth_parameter: Optional[int] = None,
    stages: int = 1,
    vectorize: bool = True,
) -> CircuitCost:
    """Exact size/depth of the Theorem 4.4/4.5 trace circuit, without building it.

    ``vectorize=True`` (default) counts through the bulk/stamping protocol —
    stamped gadget batches reuse the recorded template's gate/edge totals —
    while ``vectorize=False`` keeps the per-gate dry run (benchmark
    baseline).  Both report identical costs.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    schedule = (
        schedule
        if schedule is not None
        else schedule_for(algorithm, n, depth_parameter=depth_parameter)
    )
    builder = CountingBuilder(name="count-trace", vectorize=vectorize)
    assemble_trace_circuit(builder, n, tau, bit_width, algorithm, schedule, stages=stages)
    return _cost_from(builder)


def count_matmul_circuit(
    n: int,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    schedule: Optional[LevelSchedule] = None,
    depth_parameter: Optional[int] = None,
    stages: int = 1,
    vectorize: bool = True,
) -> CircuitCost:
    """Exact size/depth of the Theorem 4.8/4.9 product circuit, without building it.

    See :func:`count_trace_circuit` for the ``vectorize`` knob.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    schedule = (
        schedule
        if schedule is not None
        else schedule_for(algorithm, n, depth_parameter=depth_parameter)
    )
    builder = CountingBuilder(name="count-matmul", vectorize=vectorize)
    assemble_matmul_circuit(builder, n, bit_width, algorithm, schedule, stages=stages)
    return _cost_from(builder)


def naive_triangle_gate_count(n: int) -> int:
    """Closed form for the introduction's baseline: ``C(n, 3) + 1`` gates."""
    return math.comb(n, 3) + 1


# --------------------------------------------------------------------------- #
# Analytic model (the paper's counting lemmas with unit constants).
# --------------------------------------------------------------------------- #


def _leaf_stage_estimate(
    n: int,
    t: int,
    bit_width: int,
    schedule: LevelSchedule,
    alpha: Fraction,
    beta: Fraction,
) -> int:
    """Lemma 4.2 summed over the schedule (Lemma 4.3) for one side.

    Exact rational arithmetic (alpha and beta are rationals, N is an
    integer), so the estimate never overflows even for astronomically large
    N — this is what makes the crossover analysis of
    :mod:`repro.analysis.crossover` possible.
    """
    total = Fraction(0)
    for g, h in zip(schedule.levels, schedule.levels[1:]):
        # equation (2): entries at level g need b + bits(T^{2g}) bits.
        width = bit_width + (t ** (2 * g) - 1).bit_length()
        total += (width + 1) * (alpha ** g) * (beta ** h) * n * n
    return int(math.ceil(total))


def analytic_cost(
    n: int,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    depth_parameter: Optional[int] = None,
    kind: str = "matmul",
) -> Dict[str, int]:
    """Analytic gate-count estimate per stage (unit constants, exact integers).

    Returns a dictionary with the per-stage estimates and their sum under
    ``"total"``.  The absolute values are model estimates; the scaling in N
    and d is the quantity of interest (see EXPERIMENTS.md).
    """
    if kind not in ("matmul", "trace"):
        raise ValueError(f"kind must be 'matmul' or 'trace', got {kind!r}")
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    params = sparsity_parameters(algorithm)
    schedule = schedule_for(algorithm, n, depth_parameter=depth_parameter)

    leaf_a = _leaf_stage_estimate(
        n, algorithm.t, bit_width, schedule, params.side_A.alpha, params.side_A.beta
    )
    leaf_b = _leaf_stage_estimate(
        n, algorithm.t, bit_width, schedule, params.side_B.alpha, params.side_B.beta
    )
    n_leaves = algorithm.r ** schedule.leaf_level
    leaf_bits = bit_width + (algorithm.t ** (2 * schedule.leaf_level) - 1).bit_length()

    result: Dict[str, int] = {"leaves_A": leaf_a, "leaves_B": leaf_b}
    if kind == "trace":
        leaf_c = _leaf_stage_estimate(
            n, algorithm.t, bit_width, schedule, params.side_C.alpha, params.side_C.beta
        )
        result["leaves_pairing"] = leaf_c
        result["products"] = 8 * n_leaves * leaf_bits ** 3
        result["output"] = 1
    else:
        result["products"] = 4 * n_leaves * leaf_bits ** 2
        result["recombination"] = _leaf_stage_estimate(
            n, algorithm.t, bit_width, schedule, params.side_C.alpha, params.side_C.beta
        )
    result["total"] = sum(result.values())
    result["schedule_levels"] = schedule.t_steps
    return result


def predicted_exponent(
    algorithm: Optional[BilinearAlgorithm] = None,
    depth_parameter: Optional[int] = None,
    side: str = "A",
) -> float:
    """The paper's gate-count exponent: ``omega`` (Thm 4.4/4.8) or
    ``omega + c * gamma^d`` (Thm 4.5/4.9)."""
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    params = sparsity_parameters(algorithm)
    sides = {"A": params.side_A, "B": params.side_B, "C": params.side_C}
    sp = sides[side]
    if depth_parameter is None:
        return algorithm.omega
    return algorithm.omega + sp.c * (sp.gamma ** depth_parameter)


def naive_exponent_fit(counts: Dict[int, int]) -> float:
    """Least-squares slope of ``log(count)`` versus ``log(N)``.

    Used by the experiment harness to compare measured scaling exponents
    against :func:`predicted_exponent` and against the cubic baseline.
    """
    if len(counts) < 2:
        raise ValueError("need at least two (N, count) points to fit an exponent")
    xs = [math.log(n) for n in counts]
    ys = [math.log(max(c, 1)) for c in counts.values()]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den
