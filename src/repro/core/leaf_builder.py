"""Top-down computation of selected tree levels (Lemma 4.2 / Lemma 4.3).

Given the root matrix of a side (A, B, or the transposed pairing matrix for
the C side) as circuit values, and a level schedule, this module emits the
circuits that compute every matrix at every selected level and returns the
scalars at the leaves.  Each transition ``h_{i-1} -> h_i`` is one batch of
depth-2 signed weighted-sum circuits (Lemma 3.2), so the whole stage has
depth ``2 t`` (or ``2 t * stages`` when staged extraction is requested).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.arithmetic.signed import SignedBinaryNumber, SignedValue
from repro.arithmetic.weighted_sum import build_signed_sums
from repro.core.schedule import LevelSchedule
from repro.core.trees import Side, edge_matrices, iter_paths, relative_functional
from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["matrix_of_inputs", "build_tree_levels"]

Path = Tuple[int, ...]


def matrix_of_inputs(encoding, builder=None) -> np.ndarray:
    """Wrap a :class:`~repro.util.encoding.MatrixEncoding` as circuit values.

    Returns an ``n x n`` object array whose entries are
    :class:`SignedBinaryNumber` instances referring to the encoding's input
    wires.
    """
    n = encoding.n
    values = np.empty((n, n), dtype=object)
    for i in range(n):
        for j in range(n):
            pos, neg = encoding.entry_wires(i, j)
            values[i, j] = SignedBinaryNumber.from_input_bits(pos, neg)
    return values


def _as_signed_value(entry) -> SignedValue:
    if isinstance(entry, SignedValue):
        return entry
    if isinstance(entry, SignedBinaryNumber):
        return entry.to_signed_value()
    raise TypeError(f"unsupported circuit value type: {type(entry)!r}")


def build_tree_levels(
    builder,
    algorithm: BilinearAlgorithm,
    side: Side,
    root_values: np.ndarray,
    schedule: LevelSchedule,
    stages: int = 1,
    tag: str = "tree",
) -> Dict[Path, SignedBinaryNumber]:
    """Compute the leaves of a side's tree through the selected levels.

    Parameters
    ----------
    builder:
        A :class:`CircuitBuilder` or :class:`CountingBuilder`.
    algorithm:
        The bilinear base-case algorithm defining the tree.
    side:
        ``"A"``, ``"B"`` or ``"C"`` — selects the edge coefficient tensors.
    root_values:
        ``n x n`` object array of :class:`SignedBinaryNumber` (the level-0
        matrix; for the C side pass the transposed array).
    schedule:
        The selected levels; ``schedule.leaf_level`` must equal ``log_T n``.
    stages:
        1 for the paper's depth-2 sums, larger for staged extraction.

    Returns
    -------
    dict
        Mapping from full leaf paths (length ``log_T n``) to the scalar
        :class:`SignedBinaryNumber` computed for that leaf.
    """
    n = root_values.shape[0]
    t = algorithm.t
    if t ** schedule.leaf_level != n:
        raise ValueError(
            f"schedule leaf level {schedule.leaf_level} does not match matrix size {n}"
        )
    edges = edge_matrices(algorithm, side)

    current: Dict[Path, np.ndarray] = {(): root_values}
    for g, h in zip(schedule.levels, schedule.levels[1:]):
        delta = h - g
        k_h = n // t ** h
        # The relative functional only depends on the sub-path below the
        # ancestor, so compute it once per sub-path and reuse it for every
        # ancestor node (they all have identical subtrees).
        functionals = {
            sigma: relative_functional(edges, sigma)
            for sigma in iter_paths(algorithm.r, delta)
        }
        level_tag = f"{tag}/level{h}"
        new: Dict[Path, np.ndarray] = {}
        for ancestor_path, ancestor in current.items():
            for sigma, functional in functionals.items():
                # All k_h^2 cells of this (ancestor, sigma) transition share
                # one functional, hence one weight signature: batching them
                # into a single build_signed_sums call lets the vectorizing
                # builder stamp the whole block from one recorded template.
                # The (x, y) iteration order matches the per-cell loop, so
                # the emitted circuit is unchanged.
                items_list = [
                    [
                        (_as_signed_value(ancestor[p * k_h + x, q * k_h + y]), coeff)
                        for (p, q), coeff in functional.items()
                    ]
                    for x in range(k_h)
                    for y in range(k_h)
                ]
                cells = build_signed_sums(
                    builder, items_list, stages=stages, tag=level_tag
                )
                child = np.empty((k_h, k_h), dtype=object)
                for index, cell in enumerate(cells):
                    child[index // k_h, index % k_h] = cell
                new[ancestor_path + sigma] = child
        current = new

    return {path: matrix[0, 0] for path, matrix in current.items()}
