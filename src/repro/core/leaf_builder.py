"""Top-down computation of selected tree levels (Lemma 4.2 / Lemma 4.3).

Given the root matrix of a side (A, B, or the transposed pairing matrix for
the C side) as circuit values, and a level schedule, this module emits the
circuits that compute every matrix at every selected level and returns the
scalars at the leaves.  Each transition ``h_{i-1} -> h_i`` is one batch of
depth-2 signed weighted-sum circuits (Lemma 3.2), so the whole stage has
depth ``2 t`` (or ``2 t * stages`` when staged extraction is requested).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.arithmetic.signed import (
    RepBank,
    SignedBinaryNumber,
    SignedValue,
    SignedValueBank,
)
from repro.arithmetic.weighted_sum import build_signed_sum_banks, build_signed_sums
from repro.core.schedule import LevelSchedule
from repro.core.trees import Side, edge_matrices, iter_paths, relative_functional
from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["matrix_of_inputs", "matrix_of_input_banks", "build_tree_levels"]

Path = Tuple[int, ...]


def matrix_of_inputs(encoding, builder=None) -> np.ndarray:
    """Wrap a :class:`~repro.util.encoding.MatrixEncoding` as circuit values.

    Returns an ``n x n`` object array whose entries are
    :class:`SignedBinaryNumber` instances referring to the encoding's input
    wires.
    """
    n = encoding.n
    values = np.empty((n, n), dtype=object)
    for i in range(n):
        for j in range(n):
            pos, neg = encoding.entry_wires(i, j)
            values[i, j] = SignedBinaryNumber.from_input_bits(pos, neg)
    return values


def matrix_of_input_banks(encoding, transpose: bool = False) -> SignedValueBank:
    """Wrap a matrix encoding as one value bank (rows in row-major order).

    Row ``i * n + j`` of the bank holds entry ``(i, j)`` — or ``(j, i)``
    when ``transpose`` is set (the pairing tree's root is ``A^T``).  The
    entry layout matches :func:`matrix_of_inputs` exactly: positive bits
    LSB-first, then negative bits.
    """
    n = encoding.n
    b = encoding.bit_width
    entry = np.arange(n * n, dtype=np.int64)
    if transpose:
        entry = (entry % n) * n + entry // n
    base = encoding.offset + entry[:, None] * (2 * b)
    bit = np.arange(b, dtype=np.int64)[None, :]
    positions = tuple(range(b))
    weights = tuple(1 << i for i in range(b))
    return SignedValueBank(
        RepBank(base + bit, weights, positions, b),
        RepBank(base + b + bit, weights, positions, b),
    )


def _as_signed_value(entry) -> SignedValue:
    if isinstance(entry, SignedValue):
        return entry
    if isinstance(entry, SignedBinaryNumber):
        return entry.to_signed_value()
    raise TypeError(f"unsupported circuit value type: {type(entry)!r}")


def build_tree_levels(
    builder,
    algorithm: BilinearAlgorithm,
    side: Side,
    root_values: np.ndarray,
    schedule: LevelSchedule,
    stages: int = 1,
    tag: str = "tree",
) -> Dict[Path, SignedBinaryNumber]:
    """Compute the leaves of a side's tree through the selected levels.

    Parameters
    ----------
    builder:
        A :class:`CircuitBuilder` or :class:`CountingBuilder`.
    algorithm:
        The bilinear base-case algorithm defining the tree.
    side:
        ``"A"``, ``"B"`` or ``"C"`` — selects the edge coefficient tensors.
    root_values:
        ``n x n`` object array of :class:`SignedBinaryNumber` (the level-0
        matrix; for the C side pass the transposed array).
    schedule:
        The selected levels; ``schedule.leaf_level`` must equal ``log_T n``.
    stages:
        1 for the paper's depth-2 sums, larger for staged extraction.

    Returns
    -------
    dict
        Mapping from full leaf paths (length ``log_T n``) to the scalar
        :class:`SignedBinaryNumber` computed for that leaf — or, when
        ``root_values`` is a :class:`SignedValueBank` (the banked pipeline),
        to a single-row bank view of it.
    """
    if isinstance(root_values, SignedValueBank):
        return _build_tree_levels_banked(
            builder, algorithm, side, root_values, schedule, stages, tag
        )
    n = root_values.shape[0]
    t = algorithm.t
    if t ** schedule.leaf_level != n:
        raise ValueError(
            f"schedule leaf level {schedule.leaf_level} does not match matrix size {n}"
        )
    edges = edge_matrices(algorithm, side)

    current: Dict[Path, np.ndarray] = {(): root_values}
    for g, h in zip(schedule.levels, schedule.levels[1:]):
        delta = h - g
        k_h = n // t ** h
        # The relative functional only depends on the sub-path below the
        # ancestor, so compute it once per sub-path and reuse it for every
        # ancestor node (they all have identical subtrees).
        functionals = {
            sigma: relative_functional(edges, sigma)
            for sigma in iter_paths(algorithm.r, delta)
        }
        level_tag = f"{tag}/level{h}"
        new: Dict[Path, np.ndarray] = {}
        for ancestor_path, ancestor in current.items():
            for sigma, functional in functionals.items():
                # All k_h^2 cells of this (ancestor, sigma) transition share
                # one functional, hence one weight signature: batching them
                # into a single build_signed_sums call lets the vectorizing
                # builder stamp the whole block from one recorded template.
                # The (x, y) iteration order matches the per-cell loop, so
                # the emitted circuit is unchanged.
                items_list = [
                    [
                        (_as_signed_value(ancestor[p * k_h + x, q * k_h + y]), coeff)
                        for (p, q), coeff in functional.items()
                    ]
                    for x in range(k_h)
                    for y in range(k_h)
                ]
                cells = build_signed_sums(
                    builder, items_list, stages=stages, tag=level_tag
                )
                child = np.empty((k_h, k_h), dtype=object)
                for index, cell in enumerate(cells):
                    child[index // k_h, index % k_h] = cell
                new[ancestor_path + sigma] = child
        current = new

    return {path: matrix[0, 0] for path, matrix in current.items()}


def _build_tree_levels_banked(
    builder,
    algorithm: BilinearAlgorithm,
    side: Side,
    root_bank: SignedValueBank,
    schedule: LevelSchedule,
    stages: int,
    tag: str,
) -> Dict[Path, SignedValueBank]:
    """Banked leaf stage: whole matrices travel as row-major value banks.

    Level matrices are uniform by construction (every child matrix comes out
    of one same-signature batch), so each transition is a handful of array
    gathers plus one banked sum emission per ``(ancestor, sigma)`` pair —
    the emitted gate stream is identical to the scalar path's.
    """
    k_root = root_bank.k
    n = int(round(k_root ** 0.5))
    t = algorithm.t
    if n * n != k_root or t ** schedule.leaf_level != n:
        raise ValueError(
            f"schedule leaf level {schedule.leaf_level} does not match matrix size {n}"
        )
    edges = edge_matrices(algorithm, side)

    current: Dict[Path, SignedValueBank] = {(): root_bank}
    for g, h in zip(schedule.levels, schedule.levels[1:]):
        delta = h - g
        k_h = n // t ** h
        k_g = n // t ** g
        functionals = {
            sigma: relative_functional(edges, sigma)
            for sigma in iter_paths(algorithm.r, delta)
        }
        level_tag = f"{tag}/level{h}"
        # Instance (x, y) of a child matrix — row-major, matching the scalar
        # path's (x, y) loop — reads ancestor cell (p*k_h + x, q*k_h + y).
        x = np.repeat(np.arange(k_h, dtype=np.int64), k_h)
        y = np.tile(np.arange(k_h, dtype=np.int64), k_h)
        rows_cache: Dict[Tuple[int, int], np.ndarray] = {}
        new: Dict[Path, SignedValueBank] = {}
        for ancestor_path, ancestor in current.items():
            for sigma, functional in functionals.items():
                terms = []
                for (p, q), coeff in functional.items():
                    rows = rows_cache.get((p, q))
                    if rows is None:
                        rows = (p * k_h + x) * k_g + (q * k_h + y)
                        rows_cache[(p, q)] = rows
                    terms.append((ancestor, rows, coeff))
                new[ancestor_path + sigma] = build_signed_sum_banks(
                    builder,
                    terms,
                    stages=stages,
                    tag=level_tag,
                    count=k_h * k_h,
                )
        current = new

    return current
