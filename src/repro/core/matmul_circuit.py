"""Subcubic constant-depth circuits for the matrix product (Theorems 4.8, 4.9).

The construction stacks four stages (Section 4.4):

1. leaves of T_A from A,           depth ``2 t``  (Lemma 4.3 / leaf_builder)
2. leaves of T_B from B,           in parallel with stage 1
3. one Lemma 3.3 product per leaf, depth 1        (product_stage)
4. bottom-up recombination of T_AB through the same selected levels,
   depth ``2 t``                                   (recombine)

for a total depth of ``4 t + 1`` — the paper's ``4 d + 1`` when the
Theorem 4.9 schedule (``t <= d``) is used.  The outputs are the bits of the
positive and negative parts of every entry of ``C = AB``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit
from repro.core.leaf_builder import (
    build_tree_levels,
    matrix_of_input_banks,
    matrix_of_inputs,
)
from repro.core.product_stage import build_leaf_products
from repro.core.recombine import build_product_tree
from repro.core.schedule import LevelSchedule, schedule_for
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2
from repro.util.encoding import MatrixEncoding
from repro.util.matrices import as_exact_array

__all__ = ["MatmulCircuit", "assemble_matmul_circuit", "build_matmul_circuit"]


def assemble_matmul_circuit(
    builder,
    n: int,
    bit_width: int,
    algorithm: BilinearAlgorithm,
    schedule: LevelSchedule,
    stages: int = 1,
) -> Tuple[MatrixEncoding, MatrixEncoding, np.ndarray]:
    """Emit the matrix-product circuit into ``builder``.

    Returns the encodings of A and B and the ``n x n`` object array of
    :class:`SignedBinaryNumber` output entries.  Works with both the real
    and the counting builder.
    """
    a_wires = builder.allocate_inputs(n * n * 2 * bit_width, "A")
    b_wires = builder.allocate_inputs(n * n * 2 * bit_width, "B")
    encoding_a = MatrixEncoding(n, bit_width, offset=a_wires[0] if a_wires else 0)
    encoding_b = MatrixEncoding(n, bit_width, offset=b_wires[0] if b_wires else 0)

    if getattr(builder, "use_banks", False):
        # Banked pipeline: whole matrices travel between stages as node-id
        # banks; the scalar object form only materializes for the n^2 output
        # entries.  Wire-for-wire identical to the scalar path.
        root_a = matrix_of_input_banks(encoding_a)
        root_b = matrix_of_input_banks(encoding_b)
    else:
        root_a = matrix_of_inputs(encoding_a)
        root_b = matrix_of_inputs(encoding_b)

    leaves_a = build_tree_levels(
        builder, algorithm, "A", root_a, schedule, stages=stages, tag="TA"
    )
    leaves_b = build_tree_levels(
        builder, algorithm, "B", root_b, schedule, stages=stages, tag="TB"
    )
    products = build_leaf_products(builder, [leaves_a, leaves_b], tag="matmul/product")
    entries = build_product_tree(
        builder, algorithm, products, schedule, n, stages=stages, tag="TAB"
    )

    output_nodes: List[int] = []
    output_labels: List[str] = []
    for i in range(n):
        for j in range(n):
            entry = entries[i, j]
            for sign, part in (("+", entry.pos), ("-", entry.neg)):
                for position, node in zip(part.bit_positions, part.bit_nodes):
                    output_nodes.append(node)
                    output_labels.append(f"C[{i}][{j}]{sign}bit{position}")
    builder.set_outputs(output_nodes, output_labels)
    return encoding_a, encoding_b, entries


@dataclass
class MatmulCircuit:
    """A constructed matrix-product circuit plus its decoding metadata."""

    circuit: ThresholdCircuit
    encoding_a: MatrixEncoding
    encoding_b: MatrixEncoding
    entries: np.ndarray  # n x n object array of SignedBinaryNumber
    n: int
    bit_width: int
    algorithm: Optional[BilinearAlgorithm]
    schedule: Optional[LevelSchedule]
    stages: int = 1
    engine: Optional[object] = field(default=None, repr=False)
    _compiled: Optional[CompiledCircuit] = field(default=None, repr=False)

    @property
    def compiled(self) -> CompiledCircuit:
        """The compiled (layered sparse) form, built lazily and cached."""
        if self._compiled is None:
            self._compiled = CompiledCircuit(self.circuit)
        return self._compiled

    def _engine(self):
        from repro.engine import default_engine

        return self.engine if self.engine is not None else default_engine()

    def compile(self, backend: Optional[str] = None):
        """Precompile through the engine (cache-shared with evaluation).

        The construction's template provenance (``circuit.template_blocks``)
        is handed through to the engine, so stamped circuits compile via the
        template-streaming path; the returned program is the one later
        :meth:`evaluate` calls reuse from the compile cache.
        """
        return self._engine().compile(self.circuit, backend=backend)

    def _encode_inputs(self, a, b) -> np.ndarray:
        vec = np.zeros(self.circuit.n_inputs, dtype=np.int8)
        a_vec = self.encoding_a.encode(a)
        b_vec = self.encoding_b.encode(b)
        vec[self.encoding_a.offset : self.encoding_a.offset + a_vec.shape[0]] = a_vec
        vec[self.encoding_b.offset : self.encoding_b.offset + b_vec.shape[0]] = b_vec
        return vec

    def _decode_product(self, node_values: np.ndarray) -> np.ndarray:
        out = np.empty((self.n, self.n), dtype=object)
        for i in range(self.n):
            for j in range(self.n):
                out[i, j] = self.entries[i, j].value(node_values)
        return out

    def evaluate(self, a, b) -> np.ndarray:
        """Compute ``A @ B`` with the threshold circuit (exact integers).

        Evaluation routes through the execution engine (``self.engine``, or
        the process-wide default), so repeated products on the same
        construction share one compiled program.
        """
        inputs = self._encode_inputs(a, b)
        result = self._engine().evaluate(self.circuit, inputs)
        return self._decode_product(result.node_values)

    def evaluate_batch(self, pairs) -> List[np.ndarray]:
        """Compute many products ``A_k @ B_k`` with one batched evaluation.

        ``pairs`` is an iterable of ``(a, b)`` matrix pairs; all of them are
        encoded into one input block and evaluated in a single engine call,
        so wide query streams ride the batch scheduler (and, when the engine
        is configured with workers, the persistent evaluation service).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        batch = np.stack([self._encode_inputs(a, b) for a, b in pairs], axis=1)
        result = self._engine().evaluate(self.circuit, batch)
        return [
            self._decode_product(result.node_values[:, k])
            for k in range(len(pairs))
        ]

    def submit_batch(self, pairs):
        """Asynchronous :meth:`evaluate_batch`: a future of the product list.

        Rides :meth:`Engine.submit`, so independent constructions can keep
        the persistent service's workers busy while this batch is in flight.
        The per-entry product decode (a Python pass over all ``n*n`` output
        numbers per pair) runs on the shared transform executor, not on the
        service dispatcher thread that completes the inner future.
        """
        from repro.engine.service import chain_future, transform_executor

        pairs = list(pairs)
        batch = np.stack(
            [self._encode_inputs(a, b) for a, b in pairs], axis=1
        ) if pairs else np.zeros((self.circuit.n_inputs, 0), dtype=np.int8)
        inner = self._engine().submit(self.circuit, batch)
        return chain_future(
            inner,
            lambda result: [
                self._decode_product(result.node_values[:, k])
                for k in range(len(pairs))
            ],
            executor=transform_executor(),
        )

    @staticmethod
    def reference(a, b) -> np.ndarray:
        """Exact integer product used as the validation oracle."""
        return as_exact_array(a) @ as_exact_array(b)


def build_matmul_circuit(
    n: int,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    schedule: Optional[LevelSchedule] = None,
    depth_parameter: Optional[int] = None,
    stages: int = 1,
    share_gates: bool = False,
    engine=None,
    vectorize: bool = True,
    banked: bool = True,
) -> MatmulCircuit:
    """Build the Theorem 4.8 / 4.9 circuit computing ``C = AB``.

    See :func:`repro.core.trace_circuit.build_trace_circuit` for the meaning
    of the common parameters (including ``engine``, ``vectorize`` and
    ``banked``).
    """
    from repro.core.trace_circuit import default_bit_width

    algorithm = algorithm if algorithm is not None else strassen_2x2()
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    schedule = (
        schedule
        if schedule is not None
        else schedule_for(algorithm, n, depth_parameter=depth_parameter)
    )
    builder = CircuitBuilder(
        name=f"matmul-{algorithm.name}-n{n}",
        share_gates=share_gates,
        vectorize=vectorize,
        banked=banked,
    )
    encoding_a, encoding_b, entries = assemble_matmul_circuit(
        builder, n, bit_width, algorithm, schedule, stages=stages
    )
    circuit = builder.build()
    circuit.metadata.update(
        {
            "kind": "matmul",
            "n": n,
            "bit_width": bit_width,
            "algorithm": algorithm.name,
            "schedule": list(schedule.levels),
            "stages": stages,
        }
    )
    return MatmulCircuit(
        circuit=circuit,
        encoding_a=encoding_a,
        encoding_b=encoding_b,
        entries=entries,
        n=n,
        bit_width=bit_width,
        algorithm=algorithm,
        schedule=schedule,
        stages=stages,
        engine=engine,
    )
