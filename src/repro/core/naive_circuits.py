"""The naive Theta(N^3)-gate baselines from the paper's introduction.

Two constructions are provided:

* :func:`build_naive_triangle_circuit` — the depth-2 circuit described
  verbatim in Section 1: one input ``x_ij`` per vertex pair, one gate
  ``g_ijk = [x_ij + x_ik + x_jk >= 3]`` per vertex triple, and one output
  gate ``[sum g_ijk >= tau]``.  Exactly ``C(N, 3) + 1`` gates — the size the
  subcubic circuits are measured against (experiment E4).
* :func:`build_naive_matmul_circuit` — the definition-based product circuit
  for integer matrices: one Lemma 3.3 product per ``(i, k, j)`` triple and a
  depth-2 Lemma 3.2 sum per output entry, i.e. ``Theta(N^3 b^2)`` gates in
  depth 3.  This is the integer-matrix counterpart of the naive baseline.
* :func:`build_naive_trace_circuit` — the same idea specialized to
  ``trace(A^3) >= tau``: triple products over all index triples and a single
  output gate, depth 2, ``Theta(N^3 b^3)`` gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np

from repro.arithmetic.comparator import build_ge_comparison
from repro.arithmetic.product import build_signed_product
from repro.arithmetic.signed import Rep, SignedValue
from repro.arithmetic.weighted_sum import build_signed_sum
from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit
from repro.core.leaf_builder import matrix_of_inputs
from repro.core.matmul_circuit import MatmulCircuit
from repro.core.trace_circuit import TraceCircuit, default_bit_width
from repro.util.encoding import MatrixEncoding

__all__ = [
    "NaiveTriangleCircuit",
    "build_naive_triangle_circuit",
    "build_naive_matmul_circuit",
    "build_naive_trace_circuit",
]


@dataclass
class NaiveTriangleCircuit:
    """The introduction's depth-2 triangle-threshold circuit."""

    circuit: ThresholdCircuit
    n: int
    tau: int
    edge_index: dict
    _compiled: Optional[CompiledCircuit] = field(default=None, repr=False)

    @property
    def compiled(self) -> CompiledCircuit:
        """Compiled form, built lazily."""
        if self._compiled is None:
            self._compiled = CompiledCircuit(self.circuit)
        return self._compiled

    def encode(self, adjacency) -> np.ndarray:
        """Encode a symmetric 0/1 adjacency matrix onto the edge inputs."""
        adjacency = np.asarray(adjacency)
        if adjacency.shape != (self.n, self.n):
            raise ValueError(f"expected a {self.n}x{self.n} adjacency matrix")
        vec = np.zeros(self.circuit.n_inputs, dtype=np.int8)
        for (i, j), wire in self.edge_index.items():
            vec[wire] = 1 if adjacency[i, j] else 0
        return vec

    def evaluate(self, adjacency) -> bool:
        """Decide whether the graph has at least ``tau`` triangles."""
        result = self.compiled.evaluate(self.encode(adjacency))
        return bool(np.atleast_1d(result.outputs)[0])


def build_naive_triangle_circuit(n: int, tau: int) -> NaiveTriangleCircuit:
    """Build the Section 1 depth-2 circuit with exactly ``C(n,3) + 1`` gates."""
    if n < 3:
        raise ValueError(f"triangle counting needs at least 3 vertices, got {n}")
    builder = CircuitBuilder(name=f"naive-triangles-n{n}")
    pairs = list(combinations(range(n), 2))
    wires = builder.allocate_inputs(len(pairs), "edges")
    edge_index = {pair: wire for pair, wire in zip(pairs, wires)}

    triangle_gates: List[int] = []
    for i, j, k in combinations(range(n), 3):
        sources = [edge_index[(i, j)], edge_index[(i, k)], edge_index[(j, k)]]
        triangle_gates.append(
            builder.add_gate(sources, [1, 1, 1], 3, tag="naive/triangle")
        )
    output = builder.add_gate(
        triangle_gates, [1] * len(triangle_gates), tau, tag="naive/output"
    )
    builder.set_outputs([output], [f"triangles >= {tau}"])
    circuit = builder.build()
    circuit.metadata.update({"kind": "naive-triangles", "n": n, "tau": tau})
    return NaiveTriangleCircuit(circuit=circuit, n=n, tau=tau, edge_index=edge_index)


def build_naive_matmul_circuit(n: int, bit_width: Optional[int] = None) -> MatmulCircuit:
    """Definition-based product circuit: ``C_ij = sum_k A_ik B_kj`` (depth 3)."""
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    builder = CircuitBuilder(name=f"naive-matmul-n{n}")
    a_wires = builder.allocate_inputs(n * n * 2 * bit_width, "A")
    b_wires = builder.allocate_inputs(n * n * 2 * bit_width, "B")
    encoding_a = MatrixEncoding(n, bit_width, offset=a_wires[0])
    encoding_b = MatrixEncoding(n, bit_width, offset=b_wires[0])
    root_a = matrix_of_inputs(encoding_a)
    root_b = matrix_of_inputs(encoding_b)

    entries = np.empty((n, n), dtype=object)
    for i in range(n):
        for j in range(n):
            items = []
            for k in range(n):
                product = build_signed_product(
                    builder, [root_a[i, k], root_b[k, j]], tag="naive/product"
                )
                items.append((product, 1))
            entries[i, j] = build_signed_sum(builder, items, tag="naive/sum")

    output_nodes: List[int] = []
    output_labels: List[str] = []
    for i in range(n):
        for j in range(n):
            entry = entries[i, j]
            for sign, part in (("+", entry.pos), ("-", entry.neg)):
                for position, node in zip(part.bit_positions, part.bit_nodes):
                    output_nodes.append(node)
                    output_labels.append(f"C[{i}][{j}]{sign}bit{position}")
    builder.set_outputs(output_nodes, output_labels)
    circuit = builder.build()
    circuit.metadata.update({"kind": "naive-matmul", "n": n, "bit_width": bit_width})
    return MatmulCircuit(
        circuit=circuit,
        encoding_a=encoding_a,
        encoding_b=encoding_b,
        entries=entries,
        n=n,
        bit_width=bit_width,
        algorithm=None,
        schedule=None,
    )


def build_naive_trace_circuit(
    n: int,
    tau: int,
    bit_width: Optional[int] = None,
) -> TraceCircuit:
    """Definition-based ``trace(A^3) >= tau`` circuit (depth 2, Theta(N^3) gates)."""
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    builder = CircuitBuilder(name=f"naive-trace-n{n}")
    wires = builder.allocate_inputs(n * n * 2 * bit_width, "A")
    encoding = MatrixEncoding(n, bit_width, offset=wires[0])
    root = matrix_of_inputs(encoding)

    pos_terms: List[Tuple[int, int]] = []
    neg_terms: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            for k in range(n):
                product = build_signed_product(
                    builder, [root[i, j], root[j, k], root[k, i]], tag="naive/product"
                )
                pos_terms.extend(product.pos.terms)
                neg_terms.extend(product.neg.terms)
    total = SignedValue(Rep.from_terms(pos_terms), Rep.from_terms(neg_terms))
    output = build_ge_comparison(builder, total, tau, tag="naive/output")
    builder.set_outputs([output], [f"trace(A^3) >= {tau}"])
    circuit = builder.build()
    circuit.metadata.update({"kind": "naive-trace", "n": n, "tau": tau, "bit_width": bit_width})
    return TraceCircuit(
        circuit=circuit,
        encoding=encoding,
        n=n,
        bit_width=bit_width,
        tau=tau,
        algorithm=None,
        schedule=None,
    )
