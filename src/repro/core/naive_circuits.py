"""The naive Theta(N^3)-gate baselines from the paper's introduction.

Two constructions are provided:

* :func:`build_naive_triangle_circuit` — the depth-2 circuit described
  verbatim in Section 1: one input ``x_ij`` per vertex pair, one gate
  ``g_ijk = [x_ij + x_ik + x_jk >= 3]`` per vertex triple, and one output
  gate ``[sum g_ijk >= tau]``.  Exactly ``C(N, 3) + 1`` gates — the size the
  subcubic circuits are measured against (experiment E4).
* :func:`build_naive_matmul_circuit` — the definition-based product circuit
  for integer matrices: one Lemma 3.3 product per ``(i, k, j)`` triple and a
  depth-2 Lemma 3.2 sum per output entry, i.e. ``Theta(N^3 b^2)`` gates in
  depth 3.  This is the integer-matrix counterpart of the naive baseline.
* :func:`build_naive_trace_circuit` — the same idea specialized to
  ``trace(A^3) >= tau``: triple products over all index triples and a single
  output gate, depth 2, ``Theta(N^3 b^3)`` gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np

from repro.arithmetic.comparator import build_ge_comparison
from repro.arithmetic.product import build_signed_product_banks, build_signed_products
from repro.arithmetic.signed import Rep, SignedValue
from repro.arithmetic.weighted_sum import build_signed_sum, build_signed_sum_banks
from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit
from repro.core.leaf_builder import matrix_of_input_banks, matrix_of_inputs
from repro.core.matmul_circuit import MatmulCircuit
from repro.core.trace_circuit import TraceCircuit, default_bit_width
from repro.util.encoding import MatrixEncoding

__all__ = [
    "NaiveTriangleCircuit",
    "build_naive_triangle_circuit",
    "build_naive_matmul_circuit",
    "build_naive_trace_circuit",
]


@dataclass
class NaiveTriangleCircuit:
    """The introduction's depth-2 triangle-threshold circuit."""

    circuit: ThresholdCircuit
    n: int
    tau: int
    edge_index: dict
    _compiled: Optional[CompiledCircuit] = field(default=None, repr=False)

    @property
    def compiled(self) -> CompiledCircuit:
        """Compiled form, built lazily.

        :class:`CompiledCircuit` consumes the circuit's template provenance
        when present, so the bulk-emitted triangle bank compiles through
        whichever path the provenance supports.
        """
        if self._compiled is None:
            self._compiled = CompiledCircuit(self.circuit)
        return self._compiled

    def encode(self, adjacency) -> np.ndarray:
        """Encode a symmetric 0/1 adjacency matrix onto the edge inputs."""
        adjacency = np.asarray(adjacency)
        if adjacency.shape != (self.n, self.n):
            raise ValueError(f"expected a {self.n}x{self.n} adjacency matrix")
        vec = np.zeros(self.circuit.n_inputs, dtype=np.int8)
        for (i, j), wire in self.edge_index.items():
            vec[wire] = 1 if adjacency[i, j] else 0
        return vec

    def evaluate(self, adjacency) -> bool:
        """Decide whether the graph has at least ``tau`` triangles."""
        result = self.compiled.evaluate(self.encode(adjacency))
        return bool(np.atleast_1d(result.outputs)[0])


def build_naive_triangle_circuit(
    n: int, tau: int, vectorize: bool = True
) -> NaiveTriangleCircuit:
    """Build the Section 1 depth-2 circuit with exactly ``C(n,3) + 1`` gates.

    With ``vectorize=True`` (default) the ``C(n,3)`` triangle gates and the
    output gate are emitted as two bulk array appends; ``vectorize=False``
    keeps the per-gate loop (the two paths build identical circuits).
    """
    if n < 3:
        raise ValueError(f"triangle counting needs at least 3 vertices, got {n}")
    builder = CircuitBuilder(name=f"naive-triangles-n{n}", vectorize=vectorize)
    pairs = list(combinations(range(n), 2))
    wires = builder.allocate_inputs(len(pairs), "edges")
    edge_index = {pair: wire for pair, wire in zip(pairs, wires)}

    # Duck-typed guard (a CountingBuilder or any builder without the
    # attribute must fall back to the per-gate path, not raise).
    if getattr(builder, "stamper", None) is not None:
        # Triangle gate (i, j, k) reads edges (i,j), (i,k), (j,k); the wire
        # triples are assembled as one flat array in combinations order.
        triples = np.fromiter(
            (
                edge_index[pair]
                for i, j, k in combinations(range(n), 3)
                for pair in ((i, j), (i, k), (j, k))
            ),
            dtype=np.int64,
        )
        n_triangles = len(triples) // 3
        offsets = np.arange(n_triangles + 1, dtype=np.int64) * 3
        triangle_ids = builder.add_gates(
            triples,
            offsets,
            np.ones(len(triples), dtype=np.int64),
            np.full(n_triangles, 3, dtype=np.int64),
            tag="naive/triangle",
            canonicalize=False,
        )
        output_ids = builder.add_gates(
            triangle_ids,
            np.asarray([0, n_triangles], dtype=np.int64),
            np.ones(n_triangles, dtype=np.int64),
            np.asarray([tau], dtype=np.int64),
            tag="naive/output",
            canonicalize=False,
        )
        output = int(output_ids[0])
    else:
        triangle_gates: List[int] = []
        for i, j, k in combinations(range(n), 3):
            sources = [edge_index[(i, j)], edge_index[(i, k)], edge_index[(j, k)]]
            triangle_gates.append(
                builder.add_gate(sources, [1, 1, 1], 3, tag="naive/triangle")
            )
        output = builder.add_gate(
            triangle_gates, [1] * len(triangle_gates), tau, tag="naive/output"
        )
    builder.set_outputs([output], [f"triangles >= {tau}"])
    circuit = builder.build()
    circuit.metadata.update(
        {
            "kind": "naive-triangles",
            "n": n,
            "tau": tau,
        }
    )
    return NaiveTriangleCircuit(circuit=circuit, n=n, tau=tau, edge_index=edge_index)


def build_naive_matmul_circuit(
    n: int,
    bit_width: Optional[int] = None,
    stages: int = 1,
    vectorize: bool = True,
    banked: bool = True,
) -> MatmulCircuit:
    """Definition-based product circuit: ``C_ij = sum_k A_ik B_kj`` (depth 3).

    ``stages`` selects the Theorem 4.1 staged addition circuits for the
    output sums (``stages=1`` is the paper's depth-2 Lemma 3.2 path);
    ``vectorize=False`` forces the legacy per-gate construction and
    ``banked=False`` the stamped-but-scalar stage interface (all paths
    build bit-identical circuits).
    """
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    builder = CircuitBuilder(
        name=f"naive-matmul-n{n}", vectorize=vectorize, banked=banked
    )
    a_wires = builder.allocate_inputs(n * n * 2 * bit_width, "A")
    b_wires = builder.allocate_inputs(n * n * 2 * bit_width, "B")
    encoding_a = MatrixEncoding(n, bit_width, offset=a_wires[0])
    encoding_b = MatrixEncoding(n, bit_width, offset=b_wires[0])

    entries = np.empty((n, n), dtype=object)
    if builder.use_banks:
        # Banked pipeline: the n inner products of an entry are one factor
        # gather per matrix and one stamped batch; the entry sum consumes
        # the product bank rows as its terms.  Only the n^2 output entries
        # ever materialize as scalar objects.
        bank_a = matrix_of_input_banks(encoding_a)
        bank_b = matrix_of_input_banks(encoding_b)
        row_banks = [
            bank_a.gather(np.arange(i * n, (i + 1) * n, dtype=np.int64))
            for i in range(n)
        ]
        col_banks = [
            bank_b.gather(np.arange(j, n * n, n, dtype=np.int64)) for j in range(n)
        ]
        # One spread term: the n product rows are n consecutive sum terms.
        sum_rows = np.arange(n, dtype=np.int64)[None, :]
        for i in range(n):
            factors_a = row_banks[i]
            for j in range(n):
                products = build_signed_product_banks(
                    builder,
                    [factors_a, col_banks[j]],
                    tag="naive/product",
                )
                entry = build_signed_sum_banks(
                    builder,
                    [(products, sum_rows, 1)],
                    stages=stages,
                    tag="naive/sum",
                )
                entries[i, j] = entry.signed_binary(0)
    else:
        root_a = matrix_of_inputs(encoding_a)
        root_b = matrix_of_inputs(encoding_b)
        for i in range(n):
            for j in range(n):
                # One batched product call per output entry: the n inner
                # products share a bit layout, so the vectorizing builder
                # stamps them as one block before the entry's sum is emitted
                # (legacy order).
                products = build_signed_products(
                    builder,
                    [[root_a[i, k], root_b[k, j]] for k in range(n)],
                    tag="naive/product",
                )
                items = [(product, 1) for product in products]
                entries[i, j] = build_signed_sum(
                    builder, items, stages=stages, tag="naive/sum"
                )

    output_nodes: List[int] = []
    output_labels: List[str] = []
    for i in range(n):
        for j in range(n):
            entry = entries[i, j]
            for sign, part in (("+", entry.pos), ("-", entry.neg)):
                for position, node in zip(part.bit_positions, part.bit_nodes):
                    output_nodes.append(node)
                    output_labels.append(f"C[{i}][{j}]{sign}bit{position}")
    builder.set_outputs(output_nodes, output_labels)
    circuit = builder.build()
    circuit.metadata.update(
        {
            "kind": "naive-matmul",
            "n": n,
            "bit_width": bit_width,
            "stages": stages,
        }
    )
    return MatmulCircuit(
        circuit=circuit,
        encoding_a=encoding_a,
        encoding_b=encoding_b,
        entries=entries,
        n=n,
        bit_width=bit_width,
        algorithm=None,
        schedule=None,
    )


def build_naive_trace_circuit(
    n: int,
    tau: int,
    bit_width: Optional[int] = None,
    vectorize: bool = True,
    banked: bool = True,
) -> TraceCircuit:
    """Definition-based ``trace(A^3) >= tau`` circuit (depth 2, Theta(N^3) gates)."""
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    builder = CircuitBuilder(
        name=f"naive-trace-n{n}", vectorize=vectorize, banked=banked
    )
    wires = builder.allocate_inputs(n * n * 2 * bit_width, "A")
    encoding = MatrixEncoding(n, bit_width, offset=wires[0])

    pos_terms: List[Tuple[int, int]] = []
    neg_terms: List[Tuple[int, int]] = []
    if builder.use_banks:
        bank = matrix_of_input_banks(encoding)
        ks = np.arange(n, dtype=np.int64)
        for i in range(n):
            for j in range(n):
                # Instance k multiplies entries (i,j), (j,k), (k,i); the
                # degenerate diagonal triples (repeated entries) come back
                # as bank overrides from the in-place legacy fallback.
                products = build_signed_product_banks(
                    builder,
                    [
                        bank.gather(np.full(n, i * n + j, dtype=np.int64)),
                        bank.gather(j * n + ks),
                        bank.gather(ks * n + i),
                    ],
                    tag="naive/product",
                )
                for k in range(n):
                    value = products.signed_value(k)
                    pos_terms.extend(value.pos.terms)
                    neg_terms.extend(value.neg.terms)
    else:
        root = matrix_of_inputs(encoding)
        for i in range(n):
            for j in range(n):
                # Batch the n triples of one (i, j) row; degenerate diagonal
                # triples (repeated entries) transparently take the per-gate
                # fallback inside the stamping driver.
                products = build_signed_products(
                    builder,
                    [[root[i, j], root[j, k], root[k, i]] for k in range(n)],
                    tag="naive/product",
                )
                for product in products:
                    pos_terms.extend(product.pos.terms)
                    neg_terms.extend(product.neg.terms)
    total = SignedValue(Rep.from_terms(pos_terms), Rep.from_terms(neg_terms))
    output = build_ge_comparison(builder, total, tau, tag="naive/output")
    builder.set_outputs([output], [f"trace(A^3) >= {tau}"])
    circuit = builder.build()
    circuit.metadata.update(
        {
            "kind": "naive-trace",
            "n": n,
            "tau": tau,
            "bit_width": bit_width,
        }
    )
    return TraceCircuit(
        circuit=circuit,
        encoding=encoding,
        n=n,
        bit_width=bit_width,
        tau=tau,
        algorithm=None,
        schedule=None,
    )
