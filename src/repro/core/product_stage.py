"""The scalar-product stage between the leaf trees and the output stage.

Every fast matrix multiplication algorithm computes exactly
``N^{log_T r}`` scalar products — one per leaf path.  For the matrix-product
circuit each product has two factors (the corresponding leaves of T_A and
T_B); for the trace circuit there are three factors (the pairing functional
applied to A contributes the third, see equation (4) of the paper).  Both
cases are a single application of Lemma 3.3 per leaf, i.e. one extra layer.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.arithmetic.product import build_signed_products
from repro.arithmetic.signed import SignedBinaryNumber, SignedValue

__all__ = ["build_leaf_products"]

Path = Tuple[int, ...]


def build_leaf_products(
    builder,
    leaf_sets: Sequence[Dict[Path, SignedBinaryNumber]],
    tag: str = "products",
) -> Dict[Path, SignedValue]:
    """Multiply corresponding leaves of two or three trees (Lemma 3.3).

    Parameters
    ----------
    builder:
        A :class:`CircuitBuilder` or :class:`CountingBuilder`.
    leaf_sets:
        The per-tree leaf dictionaries produced by
        :func:`repro.core.leaf_builder.build_tree_levels`.  They must share
        exactly the same set of paths.

    Returns
    -------
    dict
        Path -> product value in representation form (depth 1 above the
        deepest leaf).
    """
    if len(leaf_sets) < 2:
        raise ValueError("the product stage needs at least two leaf trees")
    paths = set(leaf_sets[0])
    for other in leaf_sets[1:]:
        if set(other) != paths:
            raise ValueError("leaf trees disagree on the set of leaf paths")

    # One batched call over all leaves: consecutive leaves with identical
    # factor bit layouts are template-stamped together by the vectorizing
    # builder, in the same sorted-path order the per-leaf loop used.
    ordered_paths = sorted(paths)
    factors_list = [
        [leaves[path] for leaves in leaf_sets] for path in ordered_paths
    ]
    values = build_signed_products(builder, factors_list, tag=tag)
    return dict(zip(ordered_paths, values))
