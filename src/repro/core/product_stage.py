"""The scalar-product stage between the leaf trees and the output stage.

Every fast matrix multiplication algorithm computes exactly
``N^{log_T r}`` scalar products — one per leaf path.  For the matrix-product
circuit each product has two factors (the corresponding leaves of T_A and
T_B); for the trace circuit there are three factors (the pairing functional
applied to A contributes the third, see equation (4) of the paper).  Both
cases are a single application of Lemma 3.3 per leaf, i.e. one extra layer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.arithmetic.product import build_signed_product_banks, build_signed_products
from repro.arithmetic.signed import (
    RepBank,
    SignedBinaryNumber,
    SignedValue,
    SignedValueBank,
)

__all__ = ["build_leaf_products"]

Path = Tuple[int, ...]


def build_leaf_products(
    builder,
    leaf_sets: Sequence[Dict[Path, SignedBinaryNumber]],
    tag: str = "products",
) -> Dict[Path, SignedValue]:
    """Multiply corresponding leaves of two or three trees (Lemma 3.3).

    Parameters
    ----------
    builder:
        A :class:`CircuitBuilder` or :class:`CountingBuilder`.
    leaf_sets:
        The per-tree leaf dictionaries produced by
        :func:`repro.core.leaf_builder.build_tree_levels`.  They must share
        exactly the same set of paths.

    Returns
    -------
    dict
        Path -> product value in representation form (depth 1 above the
        deepest leaf).
    """
    if len(leaf_sets) < 2:
        raise ValueError("the product stage needs at least two leaf trees")
    paths = set(leaf_sets[0])
    for other in leaf_sets[1:]:
        if set(other) != paths:
            raise ValueError("leaf trees disagree on the set of leaf paths")

    ordered_paths = sorted(paths)
    if ordered_paths and isinstance(
        leaf_sets[0][ordered_paths[0]], SignedValueBank
    ):
        return _build_leaf_product_banks(builder, leaf_sets, ordered_paths, tag)

    # One batched call over all leaves: consecutive leaves with identical
    # factor bit layouts are template-stamped together by the vectorizing
    # builder, in the same sorted-path order the per-leaf loop used.
    factors_list = [
        [leaves[path] for leaves in leaf_sets] for path in ordered_paths
    ]
    values = build_signed_products(builder, factors_list, tag=tag)
    return dict(zip(ordered_paths, values))


def _build_leaf_product_banks(
    builder,
    leaf_sets: Sequence[Dict[Path, SignedValueBank]],
    ordered_paths: List[Path],
    tag: str,
) -> Dict[Path, SignedValueBank]:
    """Banked product stage: stack same-layout leaf runs, one stamp per run.

    The leaves arrive as single-row bank views; consecutive paths whose
    layouts agree across all trees are vertically stacked into one factor
    bank per tree and multiplied in a single banked emission (same sorted
    order, hence the same gate stream as the scalar grouping path).
    """

    def signature(path):
        return tuple(
            (
                id(leaves[path].pos.weights),
                id(leaves[path].neg.weights),
                leaves[path].overrides is None,
            )
            for leaves in leaf_sets
        )

    results: Dict[Path, SignedValueBank] = {}
    start = 0
    total = len(ordered_paths)
    while start < total:
        sig = signature(ordered_paths[start])
        end = start + 1
        while end < total and signature(ordered_paths[end]) == sig:
            end += 1
        group = ordered_paths[start:end]
        if any(leaves[group[0]].overrides for leaves in leaf_sets):
            # Override rows carry per-row layouts whose node-matrix entries
            # are meaningless; the whole (override-homogeneous, see the
            # signature) run goes through the scalar path instead of being
            # stacked as if it were clean.
            factors_list = [
                [leaves[path].signed_binary(0) for leaves in leaf_sets]
                for path in group
            ]
            values = build_signed_products(builder, factors_list, tag=tag)
            banked = SignedValueBank.from_scalars(values)
            for j, path in enumerate(group):
                results[path] = banked.row_any(j)
            start = end
            continue
        factor_banks = []
        for leaves in leaf_sets:
            views = [leaves[path] for path in group]
            first = views[0]
            if len(views) == 1:
                factor_banks.append(first)
            else:
                factor_banks.append(
                    SignedValueBank(
                        RepBank(
                            np.concatenate([v.pos.nodes for v in views], axis=0),
                            first.pos.weights,
                            first.pos.positions,
                            first.pos.width,
                        ),
                        RepBank(
                            np.concatenate([v.neg.nodes for v in views], axis=0),
                            first.neg.weights,
                            first.neg.positions,
                            first.neg.width,
                        ),
                    )
                )
        bank = build_signed_product_banks(builder, factor_banks, tag=tag)
        for j, path in enumerate(group):
            results[path] = bank.row_any(j)
        start = end
    return results
