"""Bottom-up recombination of the product tree T_AB (Lemmas 4.6 and 4.7).

Each node of T_AB represents the product of the matrices at the
corresponding nodes of T_A and T_B; the leaves are the scalar products of
the product stage and the root is the matrix product ``C = AB``.  The
recursion of the fast multiplication algorithm gives, for a node at level
``g`` and its descendants at the next selected level ``h`` (``delta = h-g``),

    block_{(p, q)} of the node = sum over length-delta paths sigma of
        (prod_t  w[p_t, q_t, i_t]) * (matrix of descendant sigma)

where ``(p_t, q_t)`` are the base-T digits of the block position.  The inner
sums are Lemma 3.2 circuits, two layers per selected level, exactly
mirroring the top-down leaf stage.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.arithmetic.signed import SignedBinaryNumber, SignedValue, SignedValueBank
from repro.arithmetic.weighted_sum import build_signed_sums, build_signed_sums_cellwise
from repro.core.schedule import LevelSchedule
from repro.core.trees import edge_matrices, iter_paths, relative_functional
from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["build_product_tree"]

Path = Tuple[int, ...]


def _as_signed_value(entry) -> SignedValue:
    if isinstance(entry, SignedValue):
        return entry
    if isinstance(entry, SignedBinaryNumber):
        return entry.to_signed_value()
    raise TypeError(f"unsupported circuit value type: {type(entry)!r}")


def build_product_tree(
    builder,
    algorithm: BilinearAlgorithm,
    leaf_products: Dict[Path, SignedValue],
    schedule: LevelSchedule,
    n: int,
    stages: int = 1,
    tag: str = "TAB",
) -> np.ndarray:
    """Recombine leaf products into the entries of ``C = AB``.

    Returns an ``n x n`` object array of :class:`SignedBinaryNumber` holding
    the binary expansion (positive and negative part) of each entry of the
    product matrix.
    """
    t = algorithm.t
    leaf_level = schedule.leaf_level
    if t ** leaf_level != n:
        raise ValueError(
            f"schedule leaf level {leaf_level} does not match matrix size {n}"
        )
    edges = edge_matrices(algorithm, "C")
    banked = bool(leaf_products) and isinstance(
        next(iter(leaf_products.values())), SignedValueBank
    )

    # Values at the deepest level: 1x1 matrices holding the leaf products.
    # In the banked pipeline the cells hold single-row bank views instead of
    # scalar values; the per-block sums then go through the cellwise banked
    # emitter (parent matrices mix block layouts, so no uniform matrix bank).
    current: Dict[Path, np.ndarray] = {}
    for path, value in leaf_products.items():
        cell = np.empty((1, 1), dtype=object)
        cell[0, 0] = value
        current[path] = cell

    levels = list(schedule.levels)
    for g, h in zip(reversed(levels[:-1]), reversed(levels[1:])):
        delta = h - g
        k_h = n // t ** h  # dimension of the (already computed) level-h matrices
        k_g = n // t ** g  # dimension of the level-g matrices being built
        level_tag = f"{tag}/level{g}"

        # For each block position (p, q) of the T^delta grid, the list of
        # (sub-path, coefficient) pairs contributing to that block.
        block_terms: Dict[Tuple[int, int], List[Tuple[Path, int]]] = defaultdict(list)
        for sigma in iter_paths(algorithm.r, delta):
            functional = relative_functional(edges, sigma)
            for position, coeff in functional.items():
                block_terms[position].append((sigma, coeff))

        parent_paths = sorted({path[:g] for path in current})
        new: Dict[Path, np.ndarray] = {}
        for parent_path in parent_paths:
            parent = np.empty((k_g, k_g), dtype=object)
            grid = t ** delta
            for p in range(grid):
                for q in range(grid):
                    terms = block_terms.get((p, q), [])
                    # The k_h^2 cells of one (p, q) block share the same
                    # (sigma, coeff) term list, i.e. one weight signature —
                    # batch them so the vectorizing builder stamps the block
                    # from a single template, in the legacy (x, y) order.
                    items_list = [
                        [
                            (current[parent_path + sigma][x, y], coeff)
                            if banked
                            else (
                                _as_signed_value(
                                    current[parent_path + sigma][x, y]
                                ),
                                coeff,
                            )
                            for sigma, coeff in terms
                        ]
                        for x in range(k_h)
                        for y in range(k_h)
                    ]
                    if banked:
                        cells = build_signed_sums_cellwise(
                            builder, items_list, stages=stages, tag=level_tag
                        )
                    else:
                        cells = build_signed_sums(
                            builder, items_list, stages=stages, tag=level_tag
                        )
                    for index, cell in enumerate(cells):
                        parent[p * k_h + index // k_h, q * k_h + index % k_h] = cell
            new[parent_path] = parent
        current = new

    if list(current.keys()) != [()]:
        raise AssertionError("recombination did not terminate at the root")
    root = current[()]
    if banked:
        # Materialize the n x n scalar entries for the output stage; the n^2
        # conversions are the only per-cell objects the banked pipeline ever
        # creates.
        entries = np.empty(root.shape, dtype=object)
        for i in range(root.shape[0]):
            for j in range(root.shape[1]):
                entries[i, j] = root[i, j].signed_binary(0)
        return entries
    return root
