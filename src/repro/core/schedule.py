"""Level-selection schedules (Lemma 4.3, Theorems 4.4 and 4.5).

A schedule is the increasing sequence of tree levels
``0 = h_0 < h_1 < ... < h_t = log_T N`` the circuit actually materializes.
The paper's key insight is that the geometric choice
``h_i = ceil((1 - gamma^i) * rho)`` balances the per-level gate counts
(Lemma 4.3), with

* ``rho = log_T N`` giving the O(log log N)-depth, O~(N^omega)-gate circuits
  of Theorems 4.4 / 4.8, and
* ``rho = log_T N + eps * log_{alpha*beta} N`` with
  ``eps = gamma^d * log_T(alpha*beta) / (1 - gamma)`` giving the
  constant-depth circuits of Theorems 4.5 / 4.9 with at most ``d`` selected
  levels and gate exponent ``omega + c * gamma^d``.

The module also provides the schedules the paper mentions only to dismiss —
the single-jump "direct" schedule of the Section 4.2 motivation / Theorem 4.1
and the uniform "every k-th level" schedule — so the ablation experiment E13
can quantify the difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.sparsity import SideParameters, sparsity_parameters
from repro.util.intmath import ilog

__all__ = [
    "LevelSchedule",
    "loglog_schedule",
    "constant_depth_schedule",
    "direct_schedule",
    "every_k_schedule",
    "schedule_for",
]


@dataclass(frozen=True)
class LevelSchedule:
    """An increasing sequence of selected tree levels, ``levels[0] == 0``."""

    levels: Tuple[int, ...]
    kind: str = "custom"
    rho: Optional[float] = None
    gamma: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.levels or self.levels[0] != 0:
            raise ValueError(f"a schedule must start at level 0, got {self.levels}")
        for a, b in zip(self.levels, self.levels[1:]):
            if b <= a:
                raise ValueError(f"schedule levels must strictly increase, got {self.levels}")

    @property
    def t_steps(self) -> int:
        """Number of level transitions (the paper's ``t``)."""
        return len(self.levels) - 1

    @property
    def leaf_level(self) -> int:
        """The deepest selected level (must equal ``log_T N`` when used)."""
        return self.levels[-1]

    def deltas(self) -> List[int]:
        """The per-transition jumps ``h_i - h_{i-1}``."""
        return [b - a for a, b in zip(self.levels, self.levels[1:])]

    def describe(self) -> str:
        """Short human-readable summary."""
        return f"{self.kind} schedule, t={self.t_steps}, levels={list(self.levels)}"


def _geometric_levels(rho: float, gamma: float, leaf_level: int) -> List[int]:
    """Evaluate ``h_i = ceil((1 - gamma^i) rho)`` until the leaf level is reached."""
    levels: List[int] = [0]
    i = 1
    # gamma == 0 degenerates to a single jump straight to the leaves.
    if gamma <= 0.0:
        return [0, leaf_level]
    while levels[-1] < leaf_level:
        h = math.ceil((1.0 - gamma ** i) * rho)
        h = min(h, leaf_level)
        if h > levels[-1]:
            levels.append(h)
        i += 1
        if i > 10 * leaf_level + 64:
            # Safety net: rho too small for the geometric sequence to reach
            # the leaves (cannot happen for the theorem parameters).
            levels.append(leaf_level)
    return levels


def _leaf_level(algorithm: BilinearAlgorithm, n: int) -> int:
    try:
        return ilog(n, algorithm.t)
    except ValueError as exc:
        raise ValueError(
            f"matrix dimension {n} must be a power of the base dimension T={algorithm.t}"
        ) from exc


def loglog_schedule(
    algorithm: BilinearAlgorithm,
    n: int,
    side: str = "A",
) -> LevelSchedule:
    """The Theorem 4.4 / 4.8 schedule: ``rho = log_T N``, ``t = O(log log N)``."""
    leaf_level = _leaf_level(algorithm, n)
    params = _side(algorithm, side)
    rho = float(leaf_level)
    levels = _geometric_levels(rho, params.gamma, leaf_level)
    return LevelSchedule(tuple(levels), kind="loglog", rho=rho, gamma=params.gamma)


def constant_depth_schedule(
    algorithm: BilinearAlgorithm,
    n: int,
    d: int,
    side: str = "A",
) -> LevelSchedule:
    """The Theorem 4.5 / 4.9 schedule with at most ``d`` level transitions.

    Uses ``rho = log_T N + eps log_{alpha beta} N`` with
    ``eps = gamma^d log_T(alpha beta) / (1 - gamma)``; the paper shows the
    geometric sequence then reaches the leaves within ``d`` steps.
    """
    if d < 1:
        raise ValueError(f"d must be a positive integer, got {d}")
    leaf_level = _leaf_level(algorithm, n)
    params = _side(algorithm, side)
    gamma = params.gamma
    if gamma <= 0.0:
        return LevelSchedule((0, leaf_level), kind="constant-depth", rho=float(leaf_level), gamma=gamma)
    alpha_beta = float(params.alpha_beta)
    log_t_ab = math.log(alpha_beta) / math.log(algorithm.t)
    log_ab_n = math.log(n) / math.log(alpha_beta)
    eps = (gamma ** d) * log_t_ab / (1.0 - gamma)
    rho = leaf_level + eps * log_ab_n
    levels = _geometric_levels(rho, gamma, leaf_level)
    schedule = LevelSchedule(tuple(levels), kind="constant-depth", rho=rho, gamma=gamma)
    if schedule.t_steps > d:
        # The ceiling in h_i can add one extra step for tiny N; fold the last
        # two transitions together to honour the depth budget.
        levels = list(schedule.levels[: d]) + [leaf_level]
        schedule = LevelSchedule(tuple(levels), kind="constant-depth", rho=rho, gamma=gamma)
    return schedule


def direct_schedule(algorithm: BilinearAlgorithm, n: int) -> LevelSchedule:
    """Single jump from the root to the leaves (Section 4.2 motivation, Theorem 4.1)."""
    leaf_level = _leaf_level(algorithm, n)
    return LevelSchedule((0, leaf_level), kind="direct")


def every_k_schedule(algorithm: BilinearAlgorithm, n: int, k: int) -> LevelSchedule:
    """The uniform schedule ``h_i = i*k`` the paper notes is suboptimal."""
    if k < 1:
        raise ValueError(f"k must be a positive integer, got {k}")
    leaf_level = _leaf_level(algorithm, n)
    levels = list(range(0, leaf_level, k)) + [leaf_level]
    return LevelSchedule(tuple(levels), kind=f"every-{k}")


def schedule_for(
    algorithm: BilinearAlgorithm,
    n: int,
    depth_parameter: Optional[int] = None,
    side: str = "A",
) -> LevelSchedule:
    """Convenience dispatcher: constant-depth when ``depth_parameter`` is given,
    otherwise the O(log log N) schedule."""
    if depth_parameter is None:
        return loglog_schedule(algorithm, n, side=side)
    return constant_depth_schedule(algorithm, n, depth_parameter, side=side)


def _side(algorithm: BilinearAlgorithm, side: str) -> SideParameters:
    params = sparsity_parameters(algorithm)
    if side == "A":
        return params.side_A
    if side == "B":
        return params.side_B
    if side == "C":
        return params.side_C
    raise ValueError(f"side must be 'A', 'B' or 'C', got {side!r}")
