"""Subcubic constant-depth circuits for ``trace(A^3) >= tau`` (Theorems 4.4, 4.5).

The construction follows Section 4.3 of the paper:

1. compute the leaves of T_A and T_B (here B = A) through the selected
   levels of the schedule — depth ``2 t``;
2. compute, in parallel, the leaves of the pairing tree: the same tree
   structure driven by the output coefficients ``w`` with root ``A^T``
   (equation (4) rearranged: ``trace(A^3) = sum_k a_k b_k d_k`` where ``d_k``
   is a {-1,1}-weighted sum of entries of A);
3. multiply the three scalars of every leaf with a depth-1 Lemma 3.3
   circuit;
4. a single output gate adds all product representations and compares
   against ``tau``.

Total depth: ``2 t + 2`` with the Lemma 4.3 schedules (``t <= d`` for the
constant-depth schedule, comfortably within the paper's ``2d + 5`` bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arithmetic.comparator import build_ge_comparison, build_ge_comparison_banks
from repro.arithmetic.signed import Rep, SignedValue
from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import CompiledCircuit
from repro.core.leaf_builder import (
    build_tree_levels,
    matrix_of_input_banks,
    matrix_of_inputs,
)
from repro.core.product_stage import build_leaf_products
from repro.core.schedule import LevelSchedule, schedule_for
from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2
from repro.util.bits import bits
from repro.util.encoding import MatrixEncoding
from repro.util.matrices import as_exact_array

__all__ = ["TraceCircuit", "assemble_trace_circuit", "build_trace_circuit", "default_bit_width"]


def default_bit_width(n: int) -> int:
    """The paper's O(log N)-bit entry model: ``max(1, bits(n - 1))`` bits."""
    return max(1, bits(max(n - 1, 0)))


def assemble_trace_circuit(
    builder,
    n: int,
    tau: int,
    bit_width: int,
    algorithm: BilinearAlgorithm,
    schedule: LevelSchedule,
    stages: int = 1,
) -> MatrixEncoding:
    """Emit the trace-threshold circuit into ``builder`` and return the encoding.

    ``builder`` may be a :class:`CircuitBuilder` (real construction) or a
    :class:`~repro.circuits.counting.CountingBuilder` (dry-run gate count).
    """
    wires = builder.allocate_inputs(n * n * 2 * bit_width, "A")
    offset = wires[0] if wires else 0
    encoding = MatrixEncoding(n, bit_width, offset=offset)

    banked = getattr(builder, "use_banks", False)
    if banked:
        root_a = matrix_of_input_banks(encoding)
        # The pairing tree's root is A^T (equation (4)): same bank, rows
        # permuted to transpose order.
        root_pairing = matrix_of_input_banks(encoding, transpose=True)
    else:
        root_a = matrix_of_inputs(encoding)
        root_pairing = root_a.T

    leaves_a = build_tree_levels(
        builder, algorithm, "A", root_a, schedule, stages=stages, tag="TA"
    )
    leaves_b = build_tree_levels(
        builder, algorithm, "B", root_a, schedule, stages=stages, tag="TB"
    )
    leaves_pair = build_tree_levels(
        builder, algorithm, "C", root_pairing, schedule, stages=stages, tag="TC"
    )

    products = build_leaf_products(
        builder, [leaves_a, leaves_b, leaves_pair], tag="trace/product"
    )

    if banked:
        output = build_ge_comparison_banks(
            builder, products.values(), tau, tag="trace/output"
        )
    else:
        pos_terms = []
        neg_terms = []
        for value in products.values():
            pos_terms.extend(value.pos.terms)
            neg_terms.extend(value.neg.terms)
        total = SignedValue(Rep.from_terms(pos_terms), Rep.from_terms(neg_terms))
        output = build_ge_comparison(builder, total, tau, tag="trace/output")
    builder.set_outputs([output], [f"trace(A^3) >= {tau}"])
    return encoding


@dataclass
class TraceCircuit:
    """A constructed trace-threshold circuit plus everything needed to use it.

    Evaluation routes through the execution engine (:mod:`repro.engine`), so
    repeated queries against structurally identical circuits share compiled
    programs via the engine's cache.  Pass ``engine`` to isolate a query
    from the process-wide default (e.g. to force a backend).
    """

    circuit: ThresholdCircuit
    encoding: MatrixEncoding
    n: int
    bit_width: int
    tau: int
    algorithm: BilinearAlgorithm
    schedule: LevelSchedule
    stages: int = 1
    engine: Optional[object] = field(default=None, repr=False)
    _compiled: Optional[CompiledCircuit] = field(default=None, repr=False)

    @property
    def compiled(self) -> CompiledCircuit:
        """The compiled (layered sparse) form, built lazily and cached.

        Retained for backward compatibility; new code should evaluate
        through the engine-backed :meth:`evaluate` / :meth:`evaluate_batch`.
        """
        if self._compiled is None:
            self._compiled = CompiledCircuit(self.circuit)
        return self._compiled

    def _engine(self):
        from repro.engine import default_engine

        return self.engine if self.engine is not None else default_engine()

    def compile(self, backend: Optional[str] = None):
        """Precompile through the engine (cache-shared with evaluation).

        Hands the construction's template provenance through to the engine,
        so stamped circuits take the template-streaming compile path.
        """
        return self._engine().compile(self.circuit, backend=backend)

    def evaluate(self, matrix) -> bool:
        """Run the circuit on an integer matrix and return its decision."""
        inputs = self.encoding.encode(matrix)
        result = self._engine().evaluate(self.circuit, inputs)
        return bool(np.atleast_1d(result.outputs)[0])

    def evaluate_batch(self, matrices) -> np.ndarray:
        """Vectorized evaluation of several matrices at once.

        An empty batch is a no-op returning an empty decision vector (the
        scheduler handles zero-width blocks, but there is nothing to encode).
        """
        matrices = list(matrices)
        if not matrices:
            return np.zeros(0, dtype=bool)
        batch = np.stack([self.encoding.encode(m) for m in matrices], axis=1)
        result = self._engine().evaluate(self.circuit, batch)
        return result.outputs[0].astype(bool)

    def submit_batch(self, matrices):
        """Asynchronous :meth:`evaluate_batch`: a future of the decisions.

        Dispatches through :meth:`Engine.submit`, so on an engine configured
        with workers the batch pipelines through the persistent evaluation
        service alongside other in-flight queries; serial engines complete
        the future inline.  An empty batch resolves immediately.
        """
        from concurrent.futures import Future

        from repro.engine.service import chain_future

        matrices = list(matrices)
        if not matrices:
            future: Future = Future()
            future.set_running_or_notify_cancel()
            future.set_result(np.zeros(0, dtype=bool))
            return future
        batch = np.stack([self.encoding.encode(m) for m in matrices], axis=1)
        inner = self._engine().submit(self.circuit, batch)
        return chain_future(inner, lambda result: result.outputs[0].astype(bool))

    @staticmethod
    def reference_trace(matrix) -> int:
        """Exact ``trace(A^3)`` (the oracle the circuit is validated against)."""
        a = as_exact_array(matrix)
        return int(np.trace(a @ a @ a))

    def reference(self, matrix) -> bool:
        """Exact decision ``trace(A^3) >= tau``."""
        return self.reference_trace(matrix) >= self.tau


def build_trace_circuit(
    n: int,
    tau: int,
    bit_width: Optional[int] = None,
    algorithm: Optional[BilinearAlgorithm] = None,
    schedule: Optional[LevelSchedule] = None,
    depth_parameter: Optional[int] = None,
    stages: int = 1,
    share_gates: bool = False,
    engine=None,
    vectorize: bool = True,
    banked: bool = True,
) -> TraceCircuit:
    """Build the Theorem 4.4 / 4.5 circuit deciding ``trace(A^3) >= tau``.

    Parameters
    ----------
    n:
        Matrix dimension (must be a power of the algorithm's base dimension).
    tau:
        The threshold compared against the trace.
    bit_width:
        Bits per signed entry magnitude; defaults to the O(log N) model.
    algorithm:
        Bilinear base-case algorithm (default: Strassen).
    schedule:
        Explicit level schedule; by default the Theorem 4.5 schedule for
        ``depth_parameter`` (or the Theorem 4.4 log-log schedule when
        ``depth_parameter`` is None).
    depth_parameter:
        The paper's ``d``; ignored when ``schedule`` is given.
    stages:
        Number of stages per weighted sum (1 = depth-2 Lemma 3.2 sums).
    share_gates:
        Enable structural gate sharing in the builder (ablation knob).
    engine:
        Execution engine used by :meth:`TraceCircuit.evaluate`; defaults to
        the process-wide :func:`repro.engine.default_engine`.
    vectorize:
        True (default) emits gadgets through the columnar bulk/stamping
        path; False forces the legacy per-gate path.  Both construct
        bit-identical circuits (equal ``structural_hash``).
    banked:
        True (default) additionally passes whole value banks between the
        construction stages (the array-native ``Rep``/``SignedValue``
        interface); False keeps the stamped-but-scalar stage interface.
        All three paths construct bit-identical circuits.
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    bit_width = bit_width if bit_width is not None else default_bit_width(n)
    schedule = (
        schedule
        if schedule is not None
        else schedule_for(algorithm, n, depth_parameter=depth_parameter)
    )
    builder = CircuitBuilder(
        name=f"trace-{algorithm.name}-n{n}",
        share_gates=share_gates,
        vectorize=vectorize,
        banked=banked,
    )
    encoding = assemble_trace_circuit(
        builder, n, tau, bit_width, algorithm, schedule, stages=stages
    )
    circuit = builder.build()
    circuit.metadata.update(
        {
            "kind": "trace",
            "n": n,
            "tau": tau,
            "bit_width": bit_width,
            "algorithm": algorithm.name,
            "schedule": list(schedule.levels),
            "stages": stages,
        }
    )
    return TraceCircuit(
        circuit=circuit,
        encoding=encoding,
        n=n,
        bit_width=bit_width,
        tau=tau,
        algorithm=algorithm,
        schedule=schedule,
        stages=stages,
        engine=engine,
    )
