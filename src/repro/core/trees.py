"""The r-ary trees of Figure 2: T_A, T_B and the C-side functional tree.

A node of T_A at level ``h`` is identified by its *path* — the sequence
``(i_1, ..., i_h)`` of multiplication indices from the root — and represents
a weighted sum of ``N/T^h x N/T^h`` blocks of the root matrix A.  The weight
of block ``(p, q)`` (indices in the ``T^h x T^h`` block grid) is the product
of base-case coefficients picked up along the path; Figure 2's example
``(A12 - A22)12 - (A12 - A22)22`` is the Strassen node with path ``(7, 1)``
(1-indexed as in the paper).

Three trees share this structure and differ only in which coefficient
tensor labels the edges:

* ``side="A"`` uses ``u[i]`` — the tree T_A of the paper,
* ``side="B"`` uses ``v[i]`` — the tree T_B,
* ``side="C"`` uses ``w[:, :, i]`` — the tree of functionals that pairs the
  leaf products back into outputs.  For the trace circuit its root is A^T
  (equation (4) of the paper); for the product circuit the same coefficients
  drive the bottom-up recombination of T_AB (Lemma 4.6).

Only *relative* functionals between two selected levels are ever
materialized, which is exactly what the level-selection technique of
Section 4 needs.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.fastmm.bilinear import BilinearAlgorithm
from repro.util.intmath import prod

__all__ = [
    "Side",
    "edge_matrices",
    "edge_term_counts",
    "iter_paths",
    "relative_functional",
    "path_size",
    "functional_weight_sum",
    "subtree_size_sum",
    "leaf_functionals",
]

Side = str  # "A", "B" or "C"
Path = Tuple[int, ...]
Functional = Dict[Tuple[int, int], int]


def edge_matrices(algorithm: BilinearAlgorithm, side: Side) -> List[np.ndarray]:
    """Return the T x T coefficient matrix labelling edge ``i`` for a side."""
    if side == "A":
        return [np.asarray(algorithm.u[i]) for i in range(algorithm.r)]
    if side == "B":
        return [np.asarray(algorithm.v[i]) for i in range(algorithm.r)]
    if side == "C":
        return [np.asarray(algorithm.w[:, :, i]) for i in range(algorithm.r)]
    raise ValueError(f"side must be 'A', 'B' or 'C', got {side!r}")


def edge_term_counts(algorithm: BilinearAlgorithm, side: Side) -> List[int]:
    """The per-edge term counts: a_i, b_i or c_i of Definition 2.1."""
    return [int((mat != 0).sum()) for mat in edge_matrices(algorithm, side)]


def iter_paths(r: int, length: int) -> Iterator[Path]:
    """All ``r**length`` paths of the given length (lexicographic order)."""
    return itertools.product(range(r), repeat=length)


def relative_functional(edges: Sequence[np.ndarray], path: Sequence[int]) -> Functional:
    """Coefficients of a node's matrix over the blocks of an ancestor's matrix.

    ``edges`` are the T x T per-multiplication coefficient matrices of the
    side; ``path`` is the sequence of multiplication indices leading from the
    ancestor down to the node.  The returned dictionary maps block indices
    ``(p, q)`` in the ``T^len(path)`` grid of the ancestor's matrix to the
    (nonzero) integer coefficient of that block.  Coefficients that cancel to
    zero are dropped.
    """
    functional: Functional = {(0, 0): 1}
    if not path:
        return functional
    t = edges[0].shape[0]
    for index in path:
        mat = edges[index]
        new: Functional = {}
        nonzero = np.argwhere(mat != 0)
        for (p, q), coeff in functional.items():
            for a, b in nonzero:
                key = (p * t + int(a), q * t + int(b))
                value = new.get(key, 0) + coeff * int(mat[a, b])
                if value:
                    new[key] = value
                elif key in new:
                    del new[key]
        functional = new
    return functional


def path_size(term_counts: Sequence[int], path: Sequence[int]) -> int:
    """The paper's ``size(u)``: the product of edge labels along the path.

    This counts block *appearances* (the quantity bounded by equation (3));
    the number of blocks with a nonzero net coefficient can only be smaller
    (cancellations), and the circuit builders use the latter.
    """
    return prod(term_counts[i] for i in path)


def functional_weight_sum(functional: Functional) -> int:
    """Sum of absolute coefficients — bounds the value growth of the node."""
    return sum(abs(c) for c in functional.values())


def subtree_size_sum(term_counts: Sequence[int], delta: int) -> int:
    """``sum over paths of length delta of path_size`` = ``(sum term_counts)**delta``.

    This is equation (3) (and (5) for the C side) of the paper, proved there
    via the multinomial theorem; here it is simply the closed form, used both
    by the analytic gate-count model and as a test oracle against explicit
    enumeration.
    """
    return sum(term_counts) ** delta


def leaf_functionals(
    algorithm: BilinearAlgorithm,
    side: Side,
    length: int,
) -> Iterator[Tuple[Path, Functional]]:
    """Iterate ``(path, functional relative to the root)`` for all level-``length`` nodes."""
    edges = edge_matrices(algorithm, side)
    for path in iter_paths(algorithm.r, length):
        yield path, relative_functional(edges, path)
