"""Execution engine: the compiled-circuit runtime of the reproduction.

This subpackage owns everything between "a ThresholdCircuit exists" and
"results came back for a batch of inputs":

* :mod:`repro.engine.config` — :class:`EngineConfig`, the runtime knobs;
* :mod:`repro.engine.cache` — the LRU compile cache keyed by the circuit's
  structural hash;
* :mod:`repro.engine.diskcache` — the persistent on-disk artifact store
  (checksummed, atomically published, memory-mapped restores) that lets a
  fresh process or worker warm-start instead of recompiling;
* :mod:`repro.engine.backends` — pluggable sparse / dense / exact backends
  behind a common protocol, with auto-selection from circuit stats;
* :mod:`repro.engine.scheduler` — chunked and process-parallel batch
  evaluation (per-call pool);
* :mod:`repro.engine.service` — the resident :class:`EvaluationService`:
  a persistent worker pool with install-once programs, shared-memory
  batch transport, a futures-based submission API, and a hardening
  ladder (deadlines, bounded retry, stall detection, degradation);
* :mod:`repro.engine.faults` — :class:`FaultPlan` injection points for
  tests and soak runs, plus :class:`DeadlineExceeded`;
* :mod:`repro.engine.soak` — the invariant soak harness hammering a
  resident service under a live fault plan;
* :mod:`repro.engine.spiking` — the spiking-mode activity/energy evaluator;
* :mod:`repro.engine.engine` — the :class:`Engine` facade tying it together.

The legacy entry points (``repro.circuits.simulate``, ``TraceCircuit``,
``TriangleQuery``) route through :func:`default_engine`, so existing code
transparently gains caching and backend selection.
"""

from repro.engine.backends import (
    Backend,
    BackendError,
    CompiledProgram,
    DenseBackend,
    ExactBackend,
    SparseBackend,
    backend_registry,
    compile_circuit,
    get_backend,
    select_backend_name,
)
from repro.engine.cache import CacheInfo, CompileCache
from repro.engine.config import BACKEND_NAMES, EngineConfig
from repro.engine.diskcache import (
    ARTIFACT_VERSION,
    ArtifactEntry,
    ArtifactStoreStats,
    DiskArtifactStore,
    default_artifact_dir,
)
from repro.engine.engine import Engine, default_engine, set_default_engine
from repro.engine.faults import (
    DeadlineExceeded,
    FaultPlan,
    aggressive_plan,
    fault_plan_from_env,
)
from repro.engine.scheduler import (
    evaluate_batched,
    iter_column_chunks,
    narrowed_chunk_size,
    run_serial,
)
from repro.engine.service import (
    EvaluationService,
    ServiceClosed,
    ServiceStats,
    as_completed,
    chain_future,
    transform_executor,
)
from repro.engine.spiking import ActivityPlan, SpikeTrace, compute_spike_trace

__all__ = [
    "ARTIFACT_VERSION",
    "ActivityPlan",
    "ArtifactEntry",
    "ArtifactStoreStats",
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "CacheInfo",
    "CompileCache",
    "CompiledProgram",
    "DeadlineExceeded",
    "DenseBackend",
    "DiskArtifactStore",
    "Engine",
    "EngineConfig",
    "EvaluationService",
    "ExactBackend",
    "FaultPlan",
    "ServiceClosed",
    "ServiceStats",
    "SparseBackend",
    "SpikeTrace",
    "aggressive_plan",
    "as_completed",
    "backend_registry",
    "chain_future",
    "compile_circuit",
    "compute_spike_trace",
    "default_artifact_dir",
    "default_engine",
    "evaluate_batched",
    "fault_plan_from_env",
    "get_backend",
    "iter_column_chunks",
    "narrowed_chunk_size",
    "run_serial",
    "select_backend_name",
    "set_default_engine",
    "transform_executor",
]
