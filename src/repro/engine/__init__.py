"""Execution engine: the compiled-circuit runtime of the reproduction.

This subpackage owns everything between "a ThresholdCircuit exists" and
"results came back for a batch of inputs":

* :mod:`repro.engine.config` — :class:`EngineConfig`, the runtime knobs;
* :mod:`repro.engine.cache` — the LRU compile cache keyed by the circuit's
  structural hash;
* :mod:`repro.engine.backends` — pluggable sparse / dense / exact backends
  behind a common protocol, with auto-selection from circuit stats;
* :mod:`repro.engine.scheduler` — chunked and process-parallel batch
  evaluation (per-call pool);
* :mod:`repro.engine.service` — the resident :class:`EvaluationService`:
  a persistent worker pool with install-once programs, shared-memory
  batch transport, and a futures-based submission API;
* :mod:`repro.engine.spiking` — the spiking-mode activity/energy evaluator;
* :mod:`repro.engine.engine` — the :class:`Engine` facade tying it together.

The legacy entry points (``repro.circuits.simulate``, ``TraceCircuit``,
``TriangleQuery``) route through :func:`default_engine`, so existing code
transparently gains caching and backend selection.
"""

from repro.engine.backends import (
    Backend,
    BackendError,
    CompiledProgram,
    DenseBackend,
    ExactBackend,
    SparseBackend,
    backend_registry,
    compile_circuit,
    get_backend,
    select_backend_name,
)
from repro.engine.cache import CacheInfo, CompileCache
from repro.engine.config import BACKEND_NAMES, EngineConfig
from repro.engine.engine import Engine, default_engine, set_default_engine
from repro.engine.scheduler import (
    evaluate_batched,
    iter_column_chunks,
    narrowed_chunk_size,
)
from repro.engine.service import (
    EvaluationService,
    ServiceClosed,
    ServiceStats,
    as_completed,
    chain_future,
    transform_executor,
)
from repro.engine.spiking import ActivityPlan, SpikeTrace, compute_spike_trace

__all__ = [
    "ActivityPlan",
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "CacheInfo",
    "CompileCache",
    "CompiledProgram",
    "DenseBackend",
    "Engine",
    "EngineConfig",
    "EvaluationService",
    "ExactBackend",
    "ServiceClosed",
    "ServiceStats",
    "SparseBackend",
    "SpikeTrace",
    "as_completed",
    "backend_registry",
    "chain_future",
    "compile_circuit",
    "compute_spike_trace",
    "default_engine",
    "evaluate_batched",
    "get_backend",
    "iter_column_chunks",
    "narrowed_chunk_size",
    "select_backend_name",
    "set_default_engine",
    "transform_executor",
]
