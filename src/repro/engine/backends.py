"""Pluggable evaluation backends for the execution engine.

Every backend lowers a :class:`~repro.circuits.simulator.LayerPlan` into a
*compiled program*: a picklable object holding only arrays and ints (so the
batch scheduler can ship it to worker processes) that maps a 0/1 input block
to the 0/1 values of every node.  Three backends cover the practical space:

``sparse``
    One scipy CSR matrix per depth layer.  Wins on large circuits, where the
    wire structure is genuinely sparse and CSR keeps the arithmetic to the
    realized wires.
``dense``
    One dense numpy matrix per layer — float64 (BLAS GEMM, still bit-exact)
    while every worst-case sum stays below ``2**53``, int64 otherwise.  For
    small or shallow circuits the per-call overhead of CSR (index juggling,
    format dispatch) dominates the flops; a dense GEMM over a few hundred
    nodes is much faster.
``exact``
    Arbitrary-precision object-dtype evaluation, vectorized over the batch
    but looping over gates.  The only backend that is correct when a gate's
    worst-case weighted sum overflows int64; always exact, never fast.

Selection is automatic per circuit (:func:`select_backend_name`) driven by
the circuit's :class:`~repro.circuits.circuit.CircuitStats` and the plan's
overflow verdict, or forced through the engine config.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.circuits.circuit import CircuitStats, ThresholdCircuit
from repro.circuits.simulator import LayerPlan, build_layer_plan, csr_layer_matrix
from repro.engine.config import EngineConfig

__all__ = [
    "Backend",
    "BackendError",
    "CompiledProgram",
    "DenseBackend",
    "ExactBackend",
    "SparseBackend",
    "backend_registry",
    "compile_circuit",
    "get_backend",
    "select_backend_name",
]


class BackendError(ValueError):
    """Raised when a circuit cannot be compiled for the requested backend."""


@runtime_checkable
class CompiledProgram(Protocol):
    """A circuit lowered to one backend's storage format.

    Programs are self-contained (no reference back to the circuit object) so
    they can be pickled into worker processes by the batch scheduler.
    """

    backend_name: str
    n_inputs: int
    n_nodes: int
    outputs: List[int]

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Map a ``(n_inputs, batch)`` 0/1 block to ``(n_nodes, batch)`` int8."""
        ...


@runtime_checkable
class Backend(Protocol):
    """A compiler from circuits to :class:`CompiledProgram` objects."""

    name: str

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> CompiledProgram:
        ...


def _require_safe(plan: LayerPlan, backend: str) -> None:
    if not plan.int64_safe:
        raise BackendError(
            f"circuit overflows int64; the {backend!r} backend would be inexact "
            "(use backend='exact' or 'auto')"
        )


# --------------------------------------------------------------------- sparse
class _MatrixProgram:
    """Shared run loop for the sparse and dense backends.

    ``layers`` holds ``(nodes, matrix, thresholds)`` triples; only the matrix
    storage format differs between the two backends.  ``values_dtype`` is the
    dtype of the node-value working buffer: int64 for the integer paths,
    float64 for the BLAS-backed dense path (exact while every weighted sum
    stays below ``2**53``; values are 0.0/1.0 and sums are integral floats).
    """

    def __init__(
        self,
        backend_name: str,
        n_inputs: int,
        n_nodes: int,
        outputs: List[int],
        layers: List[Tuple[np.ndarray, object, np.ndarray]],
        values_dtype=np.int64,
    ) -> None:
        self.backend_name = backend_name
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.outputs = outputs
        self.layers = layers
        self.values_dtype = values_dtype

    def run(self, inputs: np.ndarray) -> np.ndarray:
        node_values = np.zeros(
            (self.n_nodes, inputs.shape[1]), dtype=self.values_dtype
        )
        node_values[: self.n_inputs, :] = inputs
        for nodes, matrix, thresholds in self.layers:
            sums = matrix @ node_values
            node_values[nodes, :] = sums >= thresholds[:, None]
        return node_values.astype(np.int8)


class SparseBackend:
    """CSR-per-layer compilation (the original simulator fast path)."""

    name = "sparse"

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> _MatrixProgram:
        plan = plan if plan is not None else build_layer_plan(circuit)
        _require_safe(plan, self.name)
        layers = []
        for spec in plan.layers:
            layers.append(
                (
                    spec.nodes,
                    csr_layer_matrix(spec, plan.n_nodes),
                    np.asarray(spec.thresholds, dtype=np.int64),
                )
            )
        return _MatrixProgram(
            self.name, plan.n_inputs, plan.n_nodes, list(circuit.outputs), layers
        )


# ---------------------------------------------------------------------- dense
class DenseBackend:
    """Dense numpy matrices per layer — fastest when circuits are small.

    When every weighted sum fits exactly in float64 (magnitude below
    ``2**53`` — true for all circuits this repository constructs) the
    matrices are stored as float64 so the per-layer product runs on BLAS;
    results are still bit-exact because 0/1 values, integer weights and
    integral partial sums are all exactly representable.  Larger (but still
    int64-safe) circuits fall back to integer matrices.
    """

    name = "dense"

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> _MatrixProgram:
        plan = plan if plan is not None else build_layer_plan(circuit)
        _require_safe(plan, self.name)
        dtype = np.float64 if plan.float64_exact else np.int64
        layers = []
        for spec in plan.layers:
            matrix = np.zeros((spec.n_gates, plan.n_nodes), dtype=dtype)
            if len(spec.data):
                # (row, col) pairs are unique: every emission path merges
                # duplicate sources during canonicalization.
                matrix[spec.rows, spec.cols] = np.asarray(spec.data, dtype=np.int64)
            layers.append(
                (
                    spec.nodes,
                    matrix,
                    np.asarray(spec.thresholds, dtype=np.int64).astype(dtype),
                )
            )
        return _MatrixProgram(
            self.name,
            plan.n_inputs,
            plan.n_nodes,
            list(circuit.outputs),
            layers,
            values_dtype=dtype,
        )


# ---------------------------------------------------------------------- exact
class _ExactProgram:
    """Arbitrary-precision program: object dtype, vectorized over the batch."""

    backend_name = "exact"

    def __init__(
        self,
        n_inputs: int,
        n_nodes: int,
        outputs: List[int],
        gates: List[Tuple[int, np.ndarray, np.ndarray, int]],
    ) -> None:
        self.backend_name = "exact"
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.outputs = outputs
        self.gates = gates  # (node, sources int64, weights object, threshold)

    def run(self, inputs: np.ndarray) -> np.ndarray:
        batch = inputs.shape[1]
        values = np.zeros((self.n_nodes, batch), dtype=object)
        # Coerce through int64 first: validated inputs are 0/1 but may arrive
        # as floats, and a float leaking into the object products would poison
        # the arbitrary-precision arithmetic with float64 rounding.
        values[: self.n_inputs, :] = inputs.astype(np.int64).astype(object)
        for node, sources, weights, threshold in self.gates:
            if sources.size:
                sums = (weights[:, None] * values[sources, :]).sum(axis=0)
                fired = sums >= threshold
            else:
                fired = np.full(batch, 0 >= threshold)
            # astype(object) boxes Python ints, keeping later products exact.
            values[node, :] = np.where(fired, 1, 0).astype(object)
        return values.astype(np.int8)


class ExactBackend:
    """Gate-by-gate arbitrary-precision fallback (always applicable)."""

    name = "exact"

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> _ExactProgram:
        plan = plan if plan is not None else build_layer_plan(circuit)
        # Read straight from the columnar store: slicing the flat arrays per
        # gate avoids materializing Gate objects for what is inherently a
        # gate-by-gate program.  Weights are boxed to Python ints (object
        # dtype) so the evaluation arithmetic is arbitrary-precision.
        cols = circuit.columnar()
        src_list = cols.sources.tolist()
        wts_list = cols.weights.tolist()
        off_list = cols.offsets.tolist()
        thr_list = cols.thresholds.tolist()
        n_inputs = circuit.n_inputs
        gates = []
        for spec in plan.layers:
            for node in spec.nodes.tolist():
                index = node - n_inputs
                lo, hi = off_list[index], off_list[index + 1]
                weights = np.empty(hi - lo, dtype=object)
                weights[:] = wts_list[lo:hi]
                gates.append(
                    (
                        node,
                        np.asarray(src_list[lo:hi], dtype=np.int64),
                        weights,
                        thr_list[index],
                    )
                )
        return _ExactProgram(
            plan.n_inputs, plan.n_nodes, list(circuit.outputs), gates
        )


# ------------------------------------------------------------------ selection
_BACKENDS: Dict[str, Backend] = {
    backend.name: backend
    for backend in (SparseBackend(), DenseBackend(), ExactBackend())
}


def backend_registry() -> Dict[str, Backend]:
    """The registered concrete backends by name (copy; mutate freely)."""
    return dict(_BACKENDS)


def get_backend(name: str) -> Backend:
    """Look up a concrete backend (``"auto"`` is resolved by the engine)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None


def select_backend_name(
    plan: LayerPlan, stats: CircuitStats, config: EngineConfig
) -> str:
    """Pick the concrete backend for one circuit (the ``"auto"`` heuristic).

    Overflowing circuits must go exact.  Otherwise the dense backend wins
    when the circuit is small enough that dense layer matrices stay cheap, or
    wire-dense enough that CSR buys nothing; everything else goes sparse.
    Forcing a specific backend is the engine's job — this function only
    encodes the heuristic.
    """
    if not plan.int64_safe:
        return "exact"
    if plan.n_nodes <= config.dense_node_limit:
        return "dense"
    if stats.size and stats.edges / (stats.size * plan.n_nodes) >= config.dense_density:
        return "dense"
    return "sparse"


def compile_circuit(
    circuit: ThresholdCircuit,
    name: str,
    plan: Optional[LayerPlan] = None,
) -> CompiledProgram:
    """Compile a circuit for a concrete backend name."""
    return get_backend(name).compile(circuit, plan=plan)
