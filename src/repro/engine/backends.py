"""Pluggable evaluation backends for the execution engine.

Every backend lowers a :class:`~repro.circuits.simulator.LayerPlan` into a
*compiled program*: a picklable object holding only arrays and ints (so the
batch scheduler can ship it to worker processes) that maps a 0/1 input block
to the 0/1 values of every node.  Three backends cover the practical space:

``sparse``
    One scipy CSR matrix per depth layer.  Wins on large circuits, where the
    wire structure is genuinely sparse and CSR keeps the arithmetic to the
    realized wires.
``dense``
    One dense numpy matrix per layer — float64 (BLAS GEMM, still bit-exact)
    while every worst-case sum stays below ``2**53``, int64 otherwise.  For
    small or shallow circuits the per-call overhead of CSR (index juggling,
    format dispatch) dominates the flops; a dense GEMM over a few hundred
    nodes is much faster.
``exact``
    Arbitrary-precision object-dtype evaluation, vectorized over the batch
    but looping over gates.  The only backend that is correct when a gate's
    worst-case weighted sum overflows int64; always exact, never fast.

Selection is automatic per circuit (:func:`select_backend_name`) driven by
the circuit's :class:`~repro.circuits.circuit.CircuitStats` and the plan's
overflow verdict, or forced through the engine config.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np
from scipy import sparse

from repro.circuits.circuit import CircuitStats, ThresholdCircuit
from repro.circuits.store import segment_sum
from repro.circuits.simulator import (
    LayerPlan,
    TemplatePlan,
    build_layer_plan,
    build_template_plan,
    csr_layer_matrix,
)
from repro.circuits.template import TemplateBlock
from repro.engine.config import EngineConfig
from repro.obs import get_registry

__all__ = [
    "Backend",
    "BackendError",
    "CompiledProgram",
    "DenseBackend",
    "ExactBackend",
    "SparseBackend",
    "backend_registry",
    "compile_circuit",
    "compile_with_fallback",
    "get_backend",
    "select_backend_name",
    "template_plan_for",
]


class BackendError(ValueError):
    """Raised when a circuit cannot be compiled for the requested backend."""


@runtime_checkable
class CompiledProgram(Protocol):
    """A circuit lowered to one backend's storage format.

    Programs are self-contained (no reference back to the circuit object) so
    they can be pickled into worker processes by the batch scheduler.
    """

    backend_name: str
    n_inputs: int
    n_nodes: int
    outputs: List[int]

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Map a ``(n_inputs, batch)`` 0/1 block to ``(n_nodes, batch)`` int8."""
        ...


@runtime_checkable
class Backend(Protocol):
    """A compiler from circuits to :class:`CompiledProgram` objects."""

    name: str

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> CompiledProgram:
        ...


def _require_safe(plan: LayerPlan, backend: str) -> None:
    if not plan.int64_safe:
        raise BackendError(
            f"circuit overflows int64; the {backend!r} backend would be inexact "
            "(use backend='exact' or 'auto')"
        )


# --------------------------------------------------------------------- sparse
class _MatrixProgram:
    """Shared run loop for the sparse and dense backends.

    ``layers`` holds ``(nodes, matrix, thresholds)`` triples; only the matrix
    storage format differs between the two backends.  ``values_dtype`` is the
    dtype of the node-value working buffer: int64 for the integer paths,
    float64 for the BLAS-backed dense path (exact while every weighted sum
    stays below ``2**53``; values are 0.0/1.0 and sums are integral floats).
    """

    def __init__(
        self,
        backend_name: str,
        n_inputs: int,
        n_nodes: int,
        outputs: List[int],
        layers: List[Tuple[np.ndarray, object, np.ndarray]],
        values_dtype=np.int64,
    ) -> None:
        self.backend_name = backend_name
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.outputs = outputs
        self.layers = layers
        self.values_dtype = values_dtype

    def run(self, inputs: np.ndarray) -> np.ndarray:
        node_values = np.zeros(
            (self.n_nodes, inputs.shape[1]), dtype=self.values_dtype
        )
        node_values[: self.n_inputs, :] = inputs
        registry = get_registry()
        if registry.debug:
            # Debug-mode telemetry: time every layer GEMM.  Kept off the
            # default path — the span per layer would dominate tiny layers.
            gemm = registry.histogram("backend.layer_gemm_s", backend=self.backend_name)
            for nodes, matrix, thresholds in self.layers:
                start = time.perf_counter()
                sums = matrix @ node_values
                node_values[nodes, :] = sums >= thresholds[:, None]
                gemm.observe(time.perf_counter() - start)
            return node_values.astype(np.int8)
        for nodes, matrix, thresholds in self.layers:
            sums = matrix @ node_values
            node_values[nodes, :] = sums >= thresholds[:, None]
        return node_values.astype(np.int8)


class SparseBackend:
    """CSR-per-layer compilation (the original simulator fast path)."""

    name = "sparse"

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> _MatrixProgram:
        plan = plan if plan is not None else build_layer_plan(circuit)
        _require_safe(plan, self.name)
        layers = []
        for spec in plan.layers:
            layers.append(
                (
                    spec.nodes,
                    csr_layer_matrix(spec, plan.n_nodes),
                    np.asarray(spec.thresholds, dtype=np.int64),
                )
            )
        return _MatrixProgram(
            self.name, plan.n_inputs, plan.n_nodes, list(circuit.outputs), layers
        )

    def compile_template(self, plan: TemplatePlan) -> "_TemplateProgram":
        """Template-tiled compile: CSR layer matrices per *template*."""
        _require_safe(plan, self.name)
        return _compile_template_matrix(plan, self.name, dense=False)


# ---------------------------------------------------------------------- dense
class DenseBackend:
    """Dense numpy matrices per layer — fastest when circuits are small.

    When every weighted sum fits exactly in float64 (magnitude below
    ``2**53`` — true for all circuits this repository constructs) the
    matrices are stored as float64 so the per-layer product runs on BLAS;
    results are still bit-exact because 0/1 values, integer weights and
    integral partial sums are all exactly representable.  Larger (but still
    int64-safe) circuits fall back to integer matrices.
    """

    name = "dense"

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> _MatrixProgram:
        plan = plan if plan is not None else build_layer_plan(circuit)
        _require_safe(plan, self.name)
        dtype = np.float64 if plan.float64_exact else np.int64
        layers = []
        for spec in plan.layers:
            matrix = np.zeros((spec.n_gates, plan.n_nodes), dtype=dtype)
            if len(spec.data):
                # (row, col) pairs are unique: every emission path merges
                # duplicate sources during canonicalization.
                matrix[spec.rows, spec.cols] = np.asarray(spec.data, dtype=np.int64)
            layers.append(
                (
                    spec.nodes,
                    matrix,
                    np.asarray(spec.thresholds, dtype=np.int64).astype(dtype),
                )
            )
        return _MatrixProgram(
            self.name,
            plan.n_inputs,
            plan.n_nodes,
            list(circuit.outputs),
            layers,
            values_dtype=dtype,
        )

    def compile_template(self, plan: TemplatePlan) -> "_TemplateProgram":
        """Template-tiled compile: dense layer matrices per *template*.

        Local matrices have ``n_params + n_gates`` columns (not
        ``n_nodes``), so the dense form stays cheap however large the host
        circuit is; the float64/int64 dtype rule matches :meth:`compile`.
        """
        _require_safe(plan, self.name)
        return _compile_template_matrix(plan, self.name, dense=True)


# ---------------------------------------------------------------------- exact
class _ExactProgram:
    """Arbitrary-precision program: object dtype, vectorized over the batch."""

    backend_name = "exact"

    def __init__(
        self,
        n_inputs: int,
        n_nodes: int,
        outputs: List[int],
        gates: List[Tuple[int, np.ndarray, np.ndarray, int]],
    ) -> None:
        self.backend_name = "exact"
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.outputs = outputs
        self.gates = gates  # (node, sources int64, weights object, threshold)

    def run(self, inputs: np.ndarray) -> np.ndarray:
        batch = inputs.shape[1]
        values = np.zeros((self.n_nodes, batch), dtype=object)
        # Coerce through int64 first: validated inputs are 0/1 but may arrive
        # as floats, and a float leaking into the object products would poison
        # the arbitrary-precision arithmetic with float64 rounding.
        values[: self.n_inputs, :] = inputs.astype(np.int64).astype(object)
        for node, sources, weights, threshold in self.gates:
            if sources.size:
                sums = (weights[:, None] * values[sources, :]).sum(axis=0)
                fired = sums >= threshold
            else:
                fired = np.full(batch, 0 >= threshold)
            # astype(object) boxes Python ints, keeping later products exact.
            values[node, :] = np.where(fired, 1, 0).astype(object)
        return values.astype(np.int8)


class ExactBackend:
    """Gate-by-gate arbitrary-precision fallback (always applicable)."""

    name = "exact"

    def compile(
        self, circuit: ThresholdCircuit, plan: Optional[LayerPlan] = None
    ) -> _ExactProgram:
        plan = plan if plan is not None else build_layer_plan(circuit)
        # Read straight from the columnar store: slicing the flat arrays per
        # gate avoids materializing Gate objects for what is inherently a
        # gate-by-gate program.  Weights are boxed to Python ints (object
        # dtype) so the evaluation arithmetic is arbitrary-precision.
        cols = circuit.columnar()
        src_list = cols.sources.tolist()
        wts_list = cols.weights.tolist()
        off_list = cols.offsets.tolist()
        thr_list = cols.thresholds.tolist()
        n_inputs = circuit.n_inputs
        gates = []
        for spec in plan.layers:
            for node in spec.nodes.tolist():
                index = node - n_inputs
                lo, hi = off_list[index], off_list[index + 1]
                weights = np.empty(hi - lo, dtype=object)
                weights[:] = wts_list[lo:hi]
                gates.append(
                    (
                        node,
                        np.asarray(src_list[lo:hi], dtype=np.int64),
                        weights,
                        thr_list[index],
                    )
                )
        return _ExactProgram(
            plan.n_inputs, plan.n_nodes, list(circuit.outputs), gates
        )

    def compile_template(self, plan: TemplatePlan) -> "_TemplateExactProgram":
        """Template-tiled exact compile (always applicable)."""
        return _compile_template_exact(plan)


# ----------------------------------------------------------- template tiling
def _template_layer_matrices(template, dense: bool, dtype):
    """Per-relative-depth layer matrices of one compiled template.

    Each matrix has shape ``(layer gates, n_params + n_gates)`` — columns
    are the template's *local* slots, so one matrix serves every stamped
    copy.  Built once per distinct template per compile (the plan shares
    ``CompiledTemplate`` objects across that template's blocks).
    """
    layers = []
    for lgates, rows, cols, data, thresholds in template.layers:
        if dense:
            matrix = np.zeros((len(lgates), template.n_locals), dtype=dtype)
            if len(data):
                matrix[rows, cols] = np.asarray(data, dtype=np.int64)
        else:
            matrix = sparse.csr_matrix(
                (
                    np.asarray(data, dtype=np.int64),
                    (rows, cols),
                ),
                shape=(len(lgates), template.n_locals),
            )
        layers.append(
            (
                template.n_params + lgates,  # V rows to write
                matrix,
                np.asarray(thresholds, dtype=np.int64).astype(dtype),
            )
        )
    return layers


class _TemplateProgram:
    """Template-tiled program shared by the sparse and dense backends.

    Segments are evaluated in node-id order (a topological order).  A
    template segment keeps one local value matrix ``V`` of shape
    ``(n_params + n_gates, k * batch)``: parameter rows are gathered from
    the already-computed node values, the template's layer matrices run on
    all ``k`` stamps at once, and the gate rows scatter back into the
    block's node-id range.  Residual segments evaluate from their COO
    slices with one gather plus a segment reduction per depth layer.
    """

    def __init__(
        self,
        backend_name: str,
        n_inputs: int,
        n_nodes: int,
        outputs: List[int],
        segments: List[tuple],
        values_dtype=np.int64,
    ) -> None:
        self.backend_name = backend_name
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.outputs = outputs
        self.segments = segments
        self.values_dtype = values_dtype

    def run(self, inputs: np.ndarray) -> np.ndarray:
        batch = inputs.shape[1]
        node_values = np.zeros((self.n_nodes, batch), dtype=self.values_dtype)
        node_values[: self.n_inputs, :] = inputs
        registry = get_registry()
        # Debug-mode telemetry only: per-template-layer GEMM timings.
        gemm = (
            registry.histogram("backend.layer_gemm_s", backend=self.backend_name)
            if registry.debug
            else None
        )
        for kind, payload in self.segments:
            if kind == "tpl":
                base, k, params, n_params, n_gates, layers = payload
                local = np.zeros(
                    (n_params + n_gates, k * batch), dtype=self.values_dtype
                )
                if n_params:
                    # params.T is (n_params, k); the gather yields
                    # (n_params, k, batch), flattened stamp-major so column
                    # i * batch + b is copy i's batch column b.
                    local[:n_params] = node_values[params.T].reshape(
                        n_params, k * batch
                    )
                for v_rows, matrix, thresholds in layers:
                    start = time.perf_counter() if gemm is not None else 0.0
                    sums = matrix @ local
                    local[v_rows] = sums >= thresholds[:, None]
                    if gemm is not None:
                        gemm.observe(time.perf_counter() - start)
                # Gate j of copy i lives at node base + i * n_gates + j.
                node_values[base : base + k * n_gates] = (
                    local[n_params:]
                    .reshape(n_gates, k, batch)
                    .transpose(1, 0, 2)
                    .reshape(k * n_gates, batch)
                )
            else:
                for nodes, cols, data, offsets, thresholds in payload:
                    sums = segment_sum(
                        data[:, None] * node_values[cols], offsets
                    )
                    node_values[nodes] = sums >= thresholds[:, None]
        return node_values.astype(np.int8)


class _TemplateExactProgram:
    """Arbitrary-precision template-tiled program (object dtype).

    Loops over each template's *local* gates once, vectorized over all
    stamps and the batch — the copy count k never re-enters the Python
    loop, which is the exact-path analogue of the matrix tiling above.
    """

    backend_name = "exact"

    def __init__(
        self,
        n_inputs: int,
        n_nodes: int,
        outputs: List[int],
        segments: List[tuple],
    ) -> None:
        self.backend_name = "exact"
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.outputs = outputs
        self.segments = segments

    def run(self, inputs: np.ndarray) -> np.ndarray:
        batch = inputs.shape[1]
        values = np.zeros((self.n_nodes, batch), dtype=object)
        values[: self.n_inputs, :] = inputs.astype(np.int64).astype(object)
        for kind, payload in self.segments:
            if kind == "tpl":
                base, k, params, n_params, n_gates, local_gates = payload
                local = np.zeros((n_params + n_gates, k * batch), dtype=object)
                if n_params:
                    local[:n_params] = values[params.T].reshape(
                        n_params, k * batch
                    )
                for j, (lsrc, weights, threshold) in enumerate(local_gates):
                    if lsrc.size:
                        sums = (weights[:, None] * local[lsrc, :]).sum(axis=0)
                        fired = sums >= threshold
                    else:
                        fired = np.full(k * batch, 0 >= threshold)
                    local[n_params + j, :] = np.where(fired, 1, 0).astype(object)
                values[base : base + k * n_gates] = (
                    local[n_params:]
                    .reshape(n_gates, k, batch)
                    .transpose(1, 0, 2)
                    .reshape(k * n_gates, batch)
                )
            else:
                for node, sources, weights, threshold in payload:
                    if sources.size:
                        sums = (weights[:, None] * values[sources, :]).sum(axis=0)
                        fired = sums >= threshold
                    else:
                        fired = np.full(batch, 0 >= threshold)
                    values[node, :] = np.where(fired, 1, 0).astype(object)
        return values.astype(np.int8)


def _compile_template_matrix(
    plan: TemplatePlan, backend_name: str, dense: bool
) -> _TemplateProgram:
    dtype = np.float64 if (dense and plan.float64_exact) else np.int64
    shared: Dict[int, list] = {}
    segments: List[tuple] = []
    for segment in plan.segments:
        if isinstance(segment, TemplateBlock):
            template = segment.template
            layers = shared.get(id(template))
            if layers is None:
                layers = _template_layer_matrices(template, dense, dtype)
                shared[id(template)] = layers
            segments.append(
                (
                    "tpl",
                    (
                        segment.base,
                        segment.k,
                        segment.params,
                        template.n_params,
                        template.n_gates,
                        layers,
                    ),
                )
            )
        else:
            layers = [
                (
                    layer.nodes,
                    layer.cols,
                    np.asarray(layer.data, dtype=np.int64).astype(dtype),
                    layer.offsets,
                    np.asarray(layer.thresholds, dtype=np.int64).astype(dtype),
                )
                for layer in segment.layers
            ]
            segments.append(("coo", layers))
    return _TemplateProgram(
        backend_name,
        plan.n_inputs,
        plan.n_nodes,
        list(plan.outputs),
        segments,
        values_dtype=dtype if dense else np.int64,
    )


def _object_weights(weights) -> np.ndarray:
    """Box a weight slice into an object array of Python ints."""
    values = weights.tolist() if isinstance(weights, np.ndarray) else list(weights)
    out = np.empty(len(values), dtype=object)
    out[:] = [int(v) for v in values]
    return out


def _compile_template_exact(plan: TemplatePlan) -> _TemplateExactProgram:
    shared: Dict[int, list] = {}
    segments: List[tuple] = []
    for segment in plan.segments:
        if isinstance(segment, TemplateBlock):
            template = segment.template
            local_gates = shared.get(id(template))
            if local_gates is None:
                src_list = template.sources.tolist()
                off_list = template.offsets.tolist()
                thr_list = template.thresholds.tolist()
                local_gates = []
                for j in range(template.n_gates):
                    lo, hi = off_list[j], off_list[j + 1]
                    local_gates.append(
                        (
                            np.asarray(src_list[lo:hi], dtype=np.int64),
                            _object_weights(template.weights[lo:hi]),
                            int(thr_list[j]),
                        )
                    )
                shared[id(template)] = local_gates
            segments.append(
                (
                    "tpl",
                    (
                        segment.base,
                        segment.k,
                        segment.params,
                        template.n_params,
                        template.n_gates,
                        local_gates,
                    ),
                )
            )
        else:
            gates = []
            for layer in segment.layers:
                off_list = layer.offsets.tolist()
                thr_list = (
                    layer.thresholds.tolist()
                    if isinstance(layer.thresholds, np.ndarray)
                    else list(layer.thresholds)
                )
                for row, node in enumerate(layer.nodes.tolist()):
                    lo, hi = off_list[row], off_list[row + 1]
                    gates.append(
                        (
                            node,
                            layer.cols[lo:hi],
                            _object_weights(layer.data[lo:hi]),
                            int(thr_list[row]),
                        )
                    )
            segments.append(("coo", gates))
    return _TemplateExactProgram(
        plan.n_inputs, plan.n_nodes, list(plan.outputs), segments
    )


# ------------------------------------------------------------------ selection
_BACKENDS: Dict[str, Backend] = {
    backend.name: backend
    for backend in (SparseBackend(), DenseBackend(), ExactBackend())
}


def backend_registry() -> Dict[str, Backend]:
    """The registered concrete backends by name (copy; mutate freely)."""
    return dict(_BACKENDS)


def get_backend(name: str) -> Backend:
    """Look up a concrete backend (``"auto"`` is resolved by the engine)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None


def select_backend_name(
    plan: Union[LayerPlan, TemplatePlan], stats: CircuitStats, config: EngineConfig
) -> str:
    """Pick the concrete backend for one circuit (the ``"auto"`` heuristic).

    Overflowing circuits must go exact.  Otherwise the dense backend wins
    when the circuit is small enough that dense layer matrices stay cheap, or
    wire-dense enough that CSR buys nothing; everything else goes sparse.
    Forcing a specific backend is the engine's job — this function only
    encodes the heuristic.  Both plan forms carry the fields it reads
    (``int64_safe``, ``n_nodes``), so template and CSR compiles of the same
    circuit always resolve to the same backend.
    """
    if not plan.int64_safe:
        return "exact"
    if plan.n_nodes <= config.dense_node_limit:
        return "dense"
    if stats.size and stats.edges / (stats.size * plan.n_nodes) >= config.dense_density:
        return "dense"
    return "sparse"


def template_plan_for(
    circuit: ThresholdCircuit, config: Optional[EngineConfig] = None
) -> Optional[TemplatePlan]:
    """The template plan the engine's config rules select, or None.

    The single gating rule (``template_compile`` switch + ``min_cover``
    threshold) shared by :meth:`Engine.compile`, :func:`compile_circuit`
    and the simulator's :class:`~repro.circuits.simulator.CompiledCircuit`,
    so the documented fallback behavior cannot drift between entry points.
    """
    cfg = config if config is not None else EngineConfig()
    if not cfg.template_compile:
        return None
    return build_template_plan(circuit, min_cover=cfg.template_min_cover)


def compile_with_fallback(
    backend: Backend,
    circuit: ThresholdCircuit,
    template_plan: Optional[TemplatePlan] = None,
    plan: Optional[LayerPlan] = None,
) -> Tuple[CompiledProgram, Optional[LayerPlan]]:
    """Compile via the template path when possible, else the CSR plan.

    Returns ``(program, layer_plan)`` where ``layer_plan`` is None exactly
    when the template path compiled (the caller then has no global
    depth-layer view); a backend without ``compile_template`` falls back to
    the CSR plan, building it on demand.
    """
    if template_plan is not None and hasattr(backend, "compile_template"):
        return backend.compile_template(template_plan), None
    if plan is None:
        plan = build_layer_plan(circuit)
    return backend.compile(circuit, plan=plan), plan


def compile_circuit(
    circuit: ThresholdCircuit,
    name: str,
    plan: Optional[LayerPlan] = None,
    template_plan: Optional[TemplatePlan] = None,
    config: Optional[EngineConfig] = None,
) -> CompiledProgram:
    """Compile a circuit for a concrete backend name.

    When the circuit carries template provenance (and no explicit CSR
    ``plan`` was handed in) the template-streaming path is used; circuits
    without provenance — or backends without a ``compile_template`` — fall
    back to the CSR path automatically.  ``config`` governs the same two
    knobs the engine honors (``template_compile``, ``template_min_cover``);
    None applies the default config, so this entry point and
    :meth:`Engine.compile` route identically.
    """
    backend = get_backend(name)
    if plan is None and template_plan is None:
        template_plan = template_plan_for(circuit, config)
    program, _ = compile_with_fallback(backend, circuit, template_plan, plan)
    return program
