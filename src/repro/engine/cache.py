"""LRU compile cache for the execution engine.

Compiling a circuit costs a Python pass over every wire; evaluating a cached
program costs one structural hash (O(edges) of hashing, amortised by the
hash cache on :class:`~repro.circuits.circuit.ThresholdCircuit`).  The cache
is keyed by ``(structural_hash, backend_name)`` so the same circuit compiled
for two backends occupies two slots, and re-building an identical circuit
from scratch — the common pattern in parameter sweeps — still hits.

The key deliberately does *not* distinguish how the program was compiled:
a template-streaming compile and a classic CSR compile of structurally
identical circuits are bit-identical programs, so they must alias to one
slot (a ``banked=False`` rebuild hits the entry a template compile stored,
and vice versa).  That aliasing is only sound because ``structural_hash``
covers the full structure (inputs, every gate, outputs) and is invalidated
on mutation — anything cheaper would risk serving a stale program after an
eviction/refill cycle, which ``tests/test_engine.py`` pins down.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.obs import get_registry

__all__ = ["CacheInfo", "CompileCache"]

CacheKey = Tuple[str, str]  # (structural hash, backend name)


def _backend_of(key: Hashable) -> str:
    """The backend label of a cache key (engine keys are (hash, backend))."""
    if isinstance(key, tuple) and len(key) == 2:
        return str(key[1])
    return "unknown"


@dataclass(frozen=True)
class CacheInfo:
    """Counters describing cache behaviour since construction."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
        }


class CompileCache:
    """A small LRU map from cache keys to compiled backend programs."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached program for ``key`` (refreshing recency) or None."""
        registry = get_registry()
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            if registry.enabled:
                registry.counter("cache.misses", backend=_backend_of(key)).inc()
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        if registry.enabled:
            registry.counter("cache.hits", backend=_backend_of(key)).inc()
        return entry

    def put(self, key: Hashable, value: object) -> None:
        """Insert a compiled program, evicting the least recently used one."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        registry = get_registry()
        while len(self._entries) > self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._evictions += 1
            if registry.enabled:
                registry.counter(
                    "cache.evictions", backend=_backend_of(evicted_key)
                ).inc()

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def info(self) -> CacheInfo:
        """Snapshot of the hit/miss/eviction counters."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )
