"""LRU compile cache for the execution engine.

Compiling a circuit costs a Python pass over every wire; evaluating a cached
program costs one structural hash (O(edges) of hashing, amortised by the
hash cache on :class:`~repro.circuits.circuit.ThresholdCircuit`).  The cache
is keyed by ``(structural_hash, backend_name)`` so the same circuit compiled
for two backends occupies two slots, and re-building an identical circuit
from scratch — the common pattern in parameter sweeps — still hits.

The key deliberately does *not* distinguish how the program was compiled:
a template-streaming compile and a classic CSR compile of structurally
identical circuits are bit-identical programs, so they must alias to one
slot (a ``banked=False`` rebuild hits the entry a template compile stored,
and vice versa).  That aliasing is only sound because ``structural_hash``
covers the full structure (inputs, every gate, outputs) and is invalidated
on mutation — anything cheaper would risk serving a stale program after an
eviction/refill cycle, which ``tests/test_engine.py`` pins down.

The aliasing also fixes the eviction accounting: a ``put`` of an
already-present key (the alias case) refreshes recency and replaces the
value without ever entering the eviction loop, so ``info().evictions`` only
counts entries actually pushed out — and ``capacity=0`` stores nothing and
never pops from an empty map.

When a :class:`~repro.engine.diskcache.DiskArtifactStore` is attached, a
memory miss probes the disk before reporting failure: a checksummed artifact
restores (counted under ``diskcache.*`` metrics, not as a memory hit), is
re-inserted into the memory LRU, and is returned without recompiling.
Fresh ``put``s symmetrically spill to disk so later processes warm-start.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Tuple

from repro.obs import get_registry

__all__ = ["CacheInfo", "CompileCache"]

CacheKey = Tuple[str, str]  # (structural hash, backend name)


def _backend_of(key: Hashable) -> str:
    """The backend label of a cache key (engine keys are (hash, backend))."""
    if isinstance(key, tuple) and len(key) == 2:
        return str(key[1])
    return "unknown"


def _is_engine_key(key: Hashable) -> bool:
    """Whether the key has the (structural_hash, backend) disk-cacheable shape."""
    return (
        isinstance(key, tuple)
        and len(key) == 2
        and isinstance(key[0], str)
        and isinstance(key[1], str)
    )


@dataclass(frozen=True)
class CacheInfo:
    """Counters describing cache behaviour since construction."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    disk_hits: int = 0
    disk_misses: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
        }


class CompileCache:
    """A small LRU map from cache keys to compiled backend programs.

    ``disk`` optionally attaches a
    :class:`~repro.engine.diskcache.DiskArtifactStore`; ``spill`` maps a
    cached value to the picklable program to persist (or None to skip) and
    ``restore`` maps a restored program plus its key back to the cached
    value shape.  Both default to the identity, so the cache also works
    directly on bare programs.
    """

    def __init__(
        self,
        capacity: int,
        *,
        disk: Optional[object] = None,
        spill: Optional[Callable[[object], Optional[object]]] = None,
        restore: Optional[Callable[[object, CacheKey], object]] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.disk = disk
        self._spill = spill if spill is not None else (lambda value: value)
        self._restore = restore if restore is not None else (lambda program, key: program)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._disk_misses = 0

    def _insert(self, key: Hashable, value: object) -> None:
        """Store under LRU discipline; no-op when capacity is 0.

        A refresh of an already-present key (template/CSR aliases share one
        slot) never evicts: the map size is unchanged, so the eviction loop
        body is unreachable and the counters stay put.
        """
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        registry = get_registry()
        while len(self._entries) > self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._evictions += 1
            if registry.enabled:
                registry.counter(
                    "cache.evictions", backend=_backend_of(evicted_key)
                ).inc()

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value for ``key`` (refreshing recency) or None.

        A memory miss with a disk store attached probes the artifact store;
        a verified artifact restores into the memory LRU and is returned.
        Disk traffic is counted separately (``disk_hits``/``disk_misses``)
        — a disk restore is *not* a memory hit.
        """
        registry = get_registry()
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            if registry.enabled:
                registry.counter("cache.hits", backend=_backend_of(key)).inc()
            return entry
        self._misses += 1
        if registry.enabled:
            registry.counter("cache.misses", backend=_backend_of(key)).inc()
        if self.disk is not None and _is_engine_key(key):
            program = self.disk.get(key[0], key[1])
            if program is not None:
                self._disk_hits += 1
                value = self._restore(program, key)
                self._insert(key, value)
                return value
            self._disk_misses += 1
        return None

    def put(self, key: Hashable, value: object, *, spill: bool = True) -> None:
        """Insert a compiled program, evicting the least recently used one.

        With a disk store attached the program is also spilled (even when
        ``capacity=0`` keeps nothing in memory); ``spill=False`` skips that
        — used when re-inserting a value that just came *from* disk.
        """
        if self.disk is not None and spill and _is_engine_key(key):
            program = self._spill(value)
            if program is not None:
                self.disk.put(key[0], key[1], program)
        self._insert(key, value)

    def clear(self) -> None:
        """Drop every in-memory entry (counters and disk artifacts persist)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def info(self) -> CacheInfo:
        """Snapshot of the hit/miss/eviction counters."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
        )
