"""Execution-engine configuration.

An :class:`EngineConfig` bundles every knob of the runtime: which backend to
compile circuits for, how large the compile cache may grow, how wide the
column chunks of a batch evaluation are, and when to shard chunks across a
process pool.  The defaults are tuned for the circuits this repository
builds (thousands of gates, batches up to a few thousand inputs) and can be
overridden per :class:`~repro.engine.engine.Engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .faults import FaultPlan

__all__ = ["BACKEND_NAMES", "EngineConfig"]

#: The backends the engine can compile for, plus the auto-selection sentinel.
BACKEND_NAMES: Tuple[str, ...] = ("auto", "sparse", "dense", "exact")


@dataclass(frozen=True)
class EngineConfig:
    """Immutable runtime configuration for an :class:`~repro.engine.Engine`.

    Attributes
    ----------
    backend:
        ``"auto"`` (pick per circuit from its stats), or force ``"sparse"``
        (scipy CSR), ``"dense"`` (numpy matrices — float64 BLAS while sums
        stay exactly representable, int64 fallback) or ``"exact"``
        (arbitrary-precision object dtype).
    cache_size:
        Maximum number of compiled circuits kept in the LRU compile cache;
        0 disables caching.
    chunk_size:
        Column-block width of batched evaluation.  Batches wider than this
        are evaluated in chunks so per-layer intermediates stay cache-sized.
    max_workers:
        Shard chunks across a ``multiprocessing`` pool of this many workers.
        0 or 1 evaluates serially in-process.
    parallel_threshold:
        Minimum batch width before the pool is spun up; smaller batches are
        always evaluated serially (a pool costs more than it saves there).
    dense_node_limit:
        Auto-selection: circuits with at most this many nodes use the dense
        backend, where the CSR overhead dominates the actual arithmetic.
    dense_density:
        Auto-selection: circuits whose wire density (edges per gate-node
        pair) is at least this also go dense, whatever their size.
    template_compile:
        When True (default), circuits carrying template provenance compile
        through the template-streaming path (one layer plan per stamped
        gadget template, tiled across stamps) instead of re-reading the
        consolidated CSR.  Bit-identical to the CSR path; disable to force
        the classic compile (ablation / debugging).
    template_min_cover:
        Minimum fraction of gates that must be covered by template blocks
        before the template path is taken; sparsely-stamped circuits below
        it compile via the CSR path, which amortizes better there.
    persistent_pool:
        When True (default) and ``max_workers > 1``, batched evaluation
        routes through the resident :class:`~repro.engine.service.EvaluationService`
        — workers stay alive across calls and compiled programs are
        installed once per worker.  False falls back to the per-call pool
        of :func:`~repro.engine.scheduler.evaluate_batched` (ablation /
        debugging).
    shared_memory_min_bytes:
        Batches whose input block is at least this many bytes are shipped
        to service workers through ``multiprocessing.shared_memory``
        (inputs staged once, output columns written in place); smaller
        batches are pickled over the queues, which is cheaper than two
        block setups there.
    service_queue_depth:
        Maximum number of outstanding jobs the service accepts before
        ``submit`` blocks — the backpressure bound on pipelined queries.
    service_store_size:
        Capacity of each service worker's LRU program store (distinct
        ``(structural_hash, backend)`` programs held resident per worker).
    service_task_attempts:
        Maximum times one task may be attempted (first dispatch + retries
        after worker deaths, lost results, or shm attach failures) before
        its job fails.
    service_retry_backoff_s:
        Base delay before re-dispatching a failed task attempt; doubles per
        attempt (exponential backoff).  0 retries immediately.
    service_respawn_budget:
        How many times each worker slot may be respawned after a death or
        stall kill.  A slot over budget is retired; when every slot is
        retired the service degrades to in-process serial execution instead
        of failing jobs (see ``stats().degraded``).
    service_heartbeat_s:
        Interval at which service workers post heartbeat messages.  0
        disables heartbeats (and with them stall detection — only worker
        *death* is then detected).
    service_stall_timeout_s:
        A worker whose current task has run at least this long without a
        fresh heartbeat is presumed wedged: it is killed and respawned and
        the task retried.  Also bounds lost-result detection (a healthy,
        idle worker whose dispatched task is this old gets the task
        re-dispatched).  0 disables stall detection.
    fault_plan:
        Optional :class:`~repro.engine.faults.FaultPlan` injected into this
        service's workers and dispatcher.  **Tests and soak runs only** —
        never set in production configuration.
    verify_compile:
        When True, every circuit is statically verified
        (:func:`repro.statics.verify_circuit` — structure, template
        provenance, interval analysis, plan cross-checks) before it is
        compiled; a failing circuit raises
        :class:`~repro.statics.verifier.StaticVerificationError` instead of
        producing a program.  A debug gate (off by default): the full pass
        costs roughly one compile, so enable it in tests, fuzzing, and when
        ingesting circuits from untrusted producers.
    artifact_cache:
        When True, the engine attaches a disk-backed
        :class:`~repro.engine.diskcache.DiskArtifactStore` to its compile
        cache: memory misses probe the artifact directory before
        recompiling, fresh compiles spill back, and service workers
        warm-start from disk instead of taking a program install over the
        queue.  Off by default — opt in per engine (or via the CLI
        ``--artifact-cache`` flags) so tests and one-shot runs stay
        hermetic.
    artifact_dir:
        Directory of the artifact store.  None uses
        :func:`~repro.engine.diskcache.default_artifact_dir`
        (``$REPRO_ARTIFACT_DIR`` or ``~/.cache/repro/artifacts``).
    artifact_max_bytes:
        Size cap for the artifact directory: after each spill the oldest
        artifacts (by ``mtime``; restores refresh it, so this is LRU) are
        pruned until the total payload fits.  None (default) never prunes.
    telemetry:
        When True, constructing an :class:`~repro.engine.engine.Engine`
        activates the **process-wide** metrics registry (``repro.obs``):
        compile/evaluate spans, cache and scheduler counters, and per-worker
        service metrics are recorded and exportable via
        ``repro.obs.get_registry().snapshot()`` / ``.render()``.  False (the
        default) leaves the registry alone — a shared no-op unless
        ``REPRO_TELEMETRY=1`` or ``repro.obs.enable()`` turned it on —
        so the disabled path costs nothing on hot loops.
    """

    backend: str = "auto"
    cache_size: int = 32
    chunk_size: int = 2048
    max_workers: int = 0
    parallel_threshold: int = 1024
    dense_node_limit: int = 512
    dense_density: float = 0.25
    template_compile: bool = True
    template_min_cover: float = 0.25
    persistent_pool: bool = True
    shared_memory_min_bytes: int = 1 << 20
    service_queue_depth: int = 16
    service_store_size: int = 16
    service_task_attempts: int = 5
    service_retry_backoff_s: float = 0.05
    service_respawn_budget: int = 8
    service_heartbeat_s: float = 0.5
    service_stall_timeout_s: float = 30.0
    fault_plan: Optional[FaultPlan] = None
    verify_compile: bool = False
    artifact_cache: bool = False
    artifact_dir: Optional[str] = None
    artifact_max_bytes: Optional[int] = None
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {self.max_workers}")
        if self.parallel_threshold < 1:
            raise ValueError(
                f"parallel_threshold must be >= 1, got {self.parallel_threshold}"
            )
        if self.dense_node_limit < 0:
            raise ValueError(
                f"dense_node_limit must be >= 0, got {self.dense_node_limit}"
            )
        if not self.dense_density > 0.0:  # also rejects NaN
            raise ValueError(
                f"dense_density must be > 0, got {self.dense_density}"
            )
        if not (0.0 <= self.template_min_cover <= 1.0):
            raise ValueError(
                f"template_min_cover must be in [0, 1], got {self.template_min_cover}"
            )
        if self.shared_memory_min_bytes < 0:
            raise ValueError(
                "shared_memory_min_bytes must be >= 0, "
                f"got {self.shared_memory_min_bytes}"
            )
        if self.service_queue_depth < 1:
            raise ValueError(
                f"service_queue_depth must be >= 1, got {self.service_queue_depth}"
            )
        if self.service_store_size < 1:
            raise ValueError(
                f"service_store_size must be >= 1, got {self.service_store_size}"
            )
        if self.service_task_attempts < 1:
            raise ValueError(
                f"service_task_attempts must be >= 1, got {self.service_task_attempts}"
            )
        if self.service_retry_backoff_s < 0:
            raise ValueError(
                "service_retry_backoff_s must be >= 0, "
                f"got {self.service_retry_backoff_s}"
            )
        if self.service_respawn_budget < 0:
            raise ValueError(
                f"service_respawn_budget must be >= 0, got {self.service_respawn_budget}"
            )
        if self.service_heartbeat_s < 0:
            raise ValueError(
                f"service_heartbeat_s must be >= 0, got {self.service_heartbeat_s}"
            )
        if self.service_stall_timeout_s < 0:
            raise ValueError(
                "service_stall_timeout_s must be >= 0, "
                f"got {self.service_stall_timeout_s}"
            )
        if self.artifact_dir is not None and not isinstance(self.artifact_dir, str):
            raise TypeError(
                f"artifact_dir must be a str or None, got {type(self.artifact_dir).__name__}"
            )
        if self.artifact_max_bytes is not None and self.artifact_max_bytes < 0:
            raise ValueError(
                f"artifact_max_bytes must be >= 0 or None, got {self.artifact_max_bytes}"
            )
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise TypeError(
                f"fault_plan must be a FaultPlan or None, got {type(self.fault_plan).__name__}"
            )

    def with_overrides(self, **changes) -> "EngineConfig":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)
