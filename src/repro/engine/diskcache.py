"""Disk-backed compile-artifact store: cold-start elimination for the engine.

Compiled programs (template-streamed or CSR, any backend) are picklable —
the evaluation service already ships them to workers — but they die with
the process, so every restart and every new host re-pays the full compile.
This module persists them under a directory keyed by
``(structural_hash, backend, artifact_version)`` so a later process (or a
freshly-spawned service worker) restores in milliseconds what originally
took seconds to compile.

Two properties make the store safe to share between unrelated processes:

* **Atomic publication.**  An artifact is staged as a sibling
  ``.tmp-*`` directory and published with a single ``os.replace``.  A
  crashed writer leaves only ``.tmp-*`` litter (swept by :meth:`prune`
  and at store construction); a concurrent writer loses the rename race
  with ``ENOTEMPTY`` and discards its own staging directory.  Torn state
  can therefore only ever exist under a temp name no reader looks at.

* **Checksummed reads.**  ``meta.json`` records the artifact version and
  a SHA-256 per payload file; :meth:`get` re-verifies all of them before
  unpickling anything.  A stale, truncated or tampered artifact is
  rejected (and deleted) rather than trusted — the process then simply
  recompiles and republishes.

Large arrays inside a program (layer matrices, CSR index arrays, template
parameter rows) are externalized to ``.npy`` files via
``numpy.lib.format.open_memmap`` and restored with ``mmap_mode="r"``, so a
restore costs a small pickle plus page-cache-backed maps instead of a full
deserialization — and workers on the same host share the pages.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.format import open_memmap

from repro.obs import get_registry

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactEntry",
    "ArtifactStoreStats",
    "DiskArtifactStore",
    "default_artifact_dir",
]

#: Bump when the on-disk artifact layout (or anything that would make an
#: old pickle unsafe to trust) changes; old artifacts become invisible.
ARTIFACT_VERSION = 1

_META_FORMAT = "repro-compiled-artifact"
_META_NAME = "meta.json"
_PROGRAM_NAME = "program.pkl"
_CIRCUIT_NAME = "circuit.json"
_PACK_NAME = "pack.bin"
_TMP_PREFIX = ".tmp-"
#: Arrays at least this large get their own ``.npy`` memmap file; smaller
#: ones are packed together into one sidecar (a template program carries
#: thousands of kilobyte-sized parameter rows — pickling them inline made
#: the restore-time unpickle the dominant cost).
_SPILL_MIN_BYTES = 4096
#: Pack-file entries are aligned so restored views satisfy any dtype.
_PACK_ALIGN = 64
#: Staging directories older than this are presumed abandoned by a crashed
#: writer and are swept; young ones may belong to a live concurrent writer.
_TMP_SWEEP_AGE_S = 3600.0


def default_artifact_dir() -> str:
    """The artifact directory used when the config leaves it unset.

    ``REPRO_ARTIFACT_DIR`` overrides; otherwise a per-user cache directory.
    """
    env = os.environ.get("REPRO_ARTIFACT_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "artifacts")


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class _SpillingPickler(pickle.Pickler):
    """Pickler that externalizes arrays out of the program pickle.

    Arrays of ``_SPILL_MIN_BYTES`` and up each get their own ``.npy`` file
    (restored as an independent memmap); smaller ones are packed, aligned,
    into one ``pack.bin`` sidecar and restored as zero-copy views of a
    single shared map — a template program carries thousands of small
    parameter rows, and unpickling them inline dominated restore latency.

    Shared arrays (the same ndarray object referenced from several
    segments) spill once and restore as one shared object — ``persistent_id``
    is consulted *before* the pickle memo, so the dedup map here is what
    preserves sharing across the spill.
    """

    def __init__(self, file: io.BufferedIOBase, directory: str) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._directory = directory
        self._spilled: Dict[int, Tuple[Tuple[Any, ...], Any]] = {}
        self._pack = io.BytesIO()
        self._packed = False
        self.array_names: List[str] = []

    def persistent_id(self, obj: Any) -> Optional[Tuple[Any, ...]]:
        if (
            not isinstance(obj, np.ndarray)
            or obj.dtype.hasobject
            or obj.nbytes == 0
        ):
            return None
        cached = self._spilled.get(id(obj))
        if cached is not None:
            return cached[0]
        pid: Tuple[Any, ...]
        if obj.nbytes >= _SPILL_MIN_BYTES:
            name = f"{len(self.array_names)}.npy"
            out = open_memmap(
                os.path.join(self._directory, name),
                mode="w+",
                dtype=obj.dtype,
                shape=obj.shape,
            )
            out[...] = obj
            out.flush()
            del out
            self.array_names.append(name)
            pid = ("npy", name)
        elif type(obj) is np.ndarray:
            order = (
                "F"
                if obj.flags.f_contiguous and not obj.flags.c_contiguous
                else "C"
            )
            self._pack.write(b"\0" * (-self._pack.tell() % _PACK_ALIGN))
            offset = self._pack.tell()
            self._pack.write(obj.tobytes(order=order))
            # The full descriptor rides inside the pid (and hence inside
            # the checksummed pickle): restore needs no manifest file.
            pid = ("pack", obj.dtype.str, obj.shape, offset, order)
            self._packed = True
        else:
            return None  # exotic ndarray subclass: let pickle handle it
        # Keep a reference alongside the pid: id() keys are only stable
        # while the object is alive.
        self._spilled[id(obj)] = (pid, obj)
        return pid

    def flush_pack(self) -> List[str]:
        """Write the small-array pack (if any); the file names written."""
        if not self._packed:
            return []
        pack_path = os.path.join(self._directory, _PACK_NAME)
        with open(pack_path, "wb") as handle:
            handle.write(self._pack.getbuffer())
            handle.flush()
            os.fsync(handle.fileno())
        return [_PACK_NAME]


class _RestoringUnpickler(pickle.Unpickler):
    """Unpickler that maps externalized arrays back in read-only."""

    def __init__(self, file: io.BufferedIOBase, directory: str) -> None:
        super().__init__(file)
        self._directory = directory
        self._loaded: Dict[Tuple[Any, ...], np.ndarray] = {}
        self._pack: Optional[np.memmap] = None
        self._dtypes: Dict[str, np.dtype] = {}

    def persistent_load(self, pid: Any) -> np.ndarray:
        # Hot path: a template program references thousands of packed
        # parameter rows, so this runs per reference — keep it tight.
        # Pack views are not identity-memoized: a doubly-referenced array
        # restores as two read-only views of the same map bytes, so the
        # data sharing (the part that matters) survives without paying a
        # dict round-trip on every one of those thousands of loads.
        if not isinstance(pid, tuple) or not pid:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        tag = pid[0]
        if tag == "pack" and len(pid) == 5:
            _, dtype_str, shape, offset, order = pid
            pack = self._pack
            if pack is None:
                pack = self._pack = np.memmap(
                    os.path.join(self._directory, _PACK_NAME),
                    dtype=np.uint8,
                    mode="r",
                )
            dtype = self._dtypes.get(dtype_str)
            if dtype is None:
                dtype = self._dtypes[dtype_str] = np.dtype(dtype_str)
            try:
                return np.ndarray(
                    shape, dtype=dtype, buffer=pack, offset=offset, order=order
                )
            except (TypeError, ValueError) as exc:
                raise pickle.UnpicklingError(
                    f"bad pack reference {pid!r}"
                ) from exc
        if tag == "npy" and len(pid) == 2:
            array = self._loaded.get(pid)
            if array is None:
                array = np.load(
                    os.path.join(self._directory, pid[1]),
                    mmap_mode="r",
                    allow_pickle=False,
                )
                self._loaded[pid] = array
            return array
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


@dataclass(frozen=True)
class ArtifactEntry:
    """One published artifact, as listed by :meth:`DiskArtifactStore.entries`."""

    structural_hash: str
    backend: str
    version: int
    path: str
    bytes: int
    mtime: float
    has_circuit: bool

    def as_dict(self) -> dict:
        return {
            "structural_hash": self.structural_hash,
            "backend": self.backend,
            "version": self.version,
            "bytes": self.bytes,
            "mtime": self.mtime,
            "has_circuit": self.has_circuit,
        }


@dataclass(frozen=True)
class ArtifactStoreStats:
    """Aggregate view of the on-disk store (for ``repro cache stats``)."""

    directory: str
    artifacts: int
    total_bytes: int
    tmp_dirs: int
    max_bytes: Optional[int]

    def as_dict(self) -> dict:
        return {
            "directory": self.directory,
            "artifacts": self.artifacts,
            "total_bytes": self.total_bytes,
            "tmp_dirs": self.tmp_dirs,
            "max_bytes": self.max_bytes,
        }


class DiskArtifactStore:
    """Crash-safe on-disk cache of compiled programs, keyed by
    ``(structural_hash, backend, artifact_version)``.

    ``max_bytes`` caps the store: after each :meth:`put` the
    oldest-``mtime`` artifacts are pruned until the total payload fits
    (reads refresh ``mtime``, so pruning is LRU).  ``fault_plan`` threads
    the test-only crash hook through (see
    :class:`~repro.engine.faults.FaultPlan.artifact_crash_writes`).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        max_bytes: Optional[int] = None,
        fault_plan: Optional[object] = None,
        sweep: bool = True,
    ) -> None:
        self.directory = os.path.abspath(directory or default_artifact_dir())
        self.max_bytes = max_bytes
        self._fault_plan = fault_plan
        self._crash_writes_left = int(
            getattr(fault_plan, "artifact_crash_writes", 0) or 0
        )
        os.makedirs(self.directory, exist_ok=True)
        if sweep:
            self.sweep_tmp()

    # ------------------------------------------------------------- key layout
    @staticmethod
    def _dir_name(structural_hash: str, backend: str) -> str:
        return f"{backend}-{structural_hash}-v{ARTIFACT_VERSION}"

    def _path_for(self, structural_hash: str, backend: str) -> str:
        return os.path.join(self.directory, self._dir_name(structural_hash, backend))

    def contains(self, structural_hash: str, backend: str) -> bool:
        """Whether a published artifact exists (no integrity check)."""
        return os.path.isfile(
            os.path.join(self._path_for(structural_hash, backend), _META_NAME)
        )

    # ------------------------------------------------------------------- put
    def put(
        self,
        structural_hash: str,
        backend: str,
        program: object,
        *,
        circuit: Optional[object] = None,
    ) -> bool:
        """Publish a compiled program; returns False if already present.

        The artifact is staged in a sibling temp directory and published
        with one ``os.replace``, so readers never observe a partial write
        and a concurrent writer of the same key simply loses the rename
        race.  ``circuit`` optionally bundles the source circuit JSON
        (used by ``repro cache warm`` to recompile for other backends).
        """
        final = self._path_for(structural_hash, backend)
        if os.path.isfile(os.path.join(final, _META_NAME)):
            return False
        registry = get_registry()
        start = time.perf_counter()
        tmpdir = tempfile.mkdtemp(prefix=_TMP_PREFIX, dir=self.directory)
        try:
            files: Dict[str, Dict[str, object]] = {}
            program_path = os.path.join(tmpdir, _PROGRAM_NAME)
            with open(program_path, "wb") as handle:
                pickler = _SpillingPickler(handle, tmpdir)
                pickler.dump(program)
                handle.flush()
                os.fsync(handle.fileno())
            names = [_PROGRAM_NAME] + pickler.array_names + pickler.flush_pack()
            if circuit is not None:
                from repro.circuits.serialize import circuit_to_dict

                circuit_path = os.path.join(tmpdir, _CIRCUIT_NAME)
                with open(circuit_path, "w", encoding="utf-8") as chandle:
                    json.dump(circuit_to_dict(circuit), chandle)
                names.append(_CIRCUIT_NAME)
            total = 0
            for name in names:
                path = os.path.join(tmpdir, name)
                size = os.path.getsize(path)
                total += size
                files[name] = {"sha256": _sha256_file(path), "bytes": size}
            meta = {
                "format": _META_FORMAT,
                "artifact_version": ARTIFACT_VERSION,
                "structural_hash": structural_hash,
                "backend": backend,
                "program_type": type(program).__name__,
                "payload_bytes": total,
                "files": files,
            }
            meta_path = os.path.join(tmpdir, _META_NAME)
            with open(meta_path, "w", encoding="utf-8") as mhandle:
                json.dump(meta, mhandle, indent=1, sort_keys=True)
                mhandle.flush()
                os.fsync(mhandle.fileno())
            if self._crash_writes_left > 0:
                # Fault-injection hook (tests only): die like a crashed
                # writer would — artifact fully staged but never published.
                self._crash_writes_left -= 1
                os._exit(3)
            try:
                os.replace(tmpdir, final)
            except OSError:
                # ENOTEMPTY/EEXIST: a concurrent writer published first.
                # Their artifact is bit-identical by construction (same
                # key covers the same program); discard ours.
                shutil.rmtree(tmpdir, ignore_errors=True)
                return False
        except BaseException:
            shutil.rmtree(tmpdir, ignore_errors=True)
            raise
        if registry.enabled:
            registry.counter("diskcache.spills", backend=backend).inc()
            registry.histogram("diskcache.spill_s", backend=backend).observe(
                time.perf_counter() - start
            )
        if self.max_bytes is not None:
            self.prune(max_bytes=self.max_bytes)
        return True

    # ------------------------------------------------------------------- get
    def _load_meta(
        self, path: str, structural_hash: str, backend: str
    ) -> Optional[dict]:
        """The artifact's metadata if it matches the key and layout, else
        None.  Structural checks only — no payload bytes are hashed here."""
        meta_path = os.path.join(path, _META_NAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            meta.get("format") != _META_FORMAT
            or meta.get("artifact_version") != ARTIFACT_VERSION
            or meta.get("structural_hash") != structural_hash
            or meta.get("backend") != backend
        ):
            return None
        files = meta.get("files")
        if not isinstance(files, dict) or _PROGRAM_NAME not in files:
            return None
        return meta

    def _file_ok(self, path: str, name: str, info: object) -> bool:
        """Whether one payload file matches its recorded size and digest."""
        if not isinstance(info, dict):
            return False
        file_path = os.path.join(path, name)
        try:
            if os.path.getsize(file_path) != info.get("bytes"):
                return False
            return _sha256_file(file_path) == info.get("sha256")
        except OSError:
            return False

    def _verify(self, path: str, structural_hash: str, backend: str) -> Optional[dict]:
        """The artifact's metadata if it is intact and current, else None."""
        meta = self._load_meta(path, structural_hash, backend)
        if meta is None:
            return None
        for name, info in meta["files"].items():
            if not self._file_ok(path, name, info):
                return None
        return meta

    def get(self, structural_hash: str, backend: str) -> Optional[object]:
        """Restore a program, or None on miss / failed integrity check.

        Success refreshes the artifact's ``mtime`` (the LRU clock pruning
        uses).  An artifact that fails verification is deleted so the
        caller's recompile can republish a good one.

        The checksum pass over the array sidecars runs concurrently with
        the unpickle (hashlib releases the GIL, so the overlap is real).
        That is safe because ordering is preserved where it matters: the
        program pickle — the one payload whose bytes *drive execution*
        when loaded — is fully verified before the unpickler touches it,
        while the sidecars are inert array bytes that the unpickler only
        maps.  The program is returned to the caller only after every
        sidecar digest has been confirmed.
        """
        registry = get_registry()
        path = self._path_for(structural_hash, backend)
        if not os.path.isfile(os.path.join(path, _META_NAME)):
            if registry.enabled:
                registry.counter("diskcache.misses", backend=backend).inc()
            return None
        start = time.perf_counter()

        def _reject() -> None:
            if registry.enabled:
                registry.counter("diskcache.rejected", backend=backend).inc()
            shutil.rmtree(path, ignore_errors=True)

        meta = self._load_meta(path, structural_hash, backend)
        if meta is None or not self._file_ok(
            path, _PROGRAM_NAME, meta["files"][_PROGRAM_NAME]
        ):
            _reject()
            return None
        sidecars = [
            (name, info)
            for name, info in meta["files"].items()
            if name != _PROGRAM_NAME
        ]
        sidecars_ok: List[bool] = []
        checker = threading.Thread(
            target=lambda: sidecars_ok.append(
                all(self._file_ok(path, name, info) for name, info in sidecars)
            ),
            daemon=True,
        )
        checker.start()
        try:
            with open(os.path.join(path, _PROGRAM_NAME), "rb") as handle:
                program = _RestoringUnpickler(handle, path).load()
        except (OSError, pickle.UnpicklingError, AttributeError, ImportError):
            checker.join()
            _reject()
            return None
        checker.join()
        if not (sidecars_ok and sidecars_ok[0]):
            _reject()
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        if registry.enabled:
            registry.counter("diskcache.hits", backend=backend).inc()
            registry.histogram("diskcache.restore_s", backend=backend).observe(
                time.perf_counter() - start
            )
        return program

    def get_circuit(self, structural_hash: str, backend: str) -> Optional[object]:
        """The bundled source circuit, if the artifact carries one.

        The checksum pass above already established byte integrity, so the
        circuit loads through the *trusted* fast path — re-running the
        structural verifier here would be the double validation this store
        exists to avoid.
        """
        path = self._path_for(structural_hash, backend)
        if self._verify(path, structural_hash, backend) is None:
            return None
        circuit_path = os.path.join(path, _CIRCUIT_NAME)
        if not os.path.isfile(circuit_path):
            return None
        from repro.circuits.serialize import load_circuit

        return load_circuit(circuit_path, trusted=True)

    # ---------------------------------------------------------------- listing
    def entries(self) -> List[ArtifactEntry]:
        """Every published artifact, oldest ``mtime`` first."""
        out: List[ArtifactEntry] = []
        try:
            listing = os.scandir(self.directory)
        except OSError:
            return out
        with listing:
            for entry in listing:
                if not entry.is_dir() or entry.name.startswith(_TMP_PREFIX):
                    continue
                meta_path = os.path.join(entry.path, _META_NAME)
                try:
                    with open(meta_path, "r", encoding="utf-8") as handle:
                        meta = json.load(handle)
                    mtime = entry.stat().st_mtime
                except (OSError, ValueError):
                    continue
                out.append(
                    ArtifactEntry(
                        structural_hash=str(meta.get("structural_hash", "")),
                        backend=str(meta.get("backend", "")),
                        version=int(meta.get("artifact_version", -1)),
                        path=entry.path,
                        bytes=int(meta.get("payload_bytes", 0)),
                        mtime=mtime,
                        has_circuit=_CIRCUIT_NAME in (meta.get("files") or {}),
                    )
                )
        out.sort(key=lambda e: e.mtime)
        return out

    def stats(self) -> ArtifactStoreStats:
        """Counts and byte totals for the store directory."""
        entries = self.entries()
        tmp_dirs = 0
        try:
            with os.scandir(self.directory) as listing:
                for entry in listing:
                    if entry.is_dir() and entry.name.startswith(_TMP_PREFIX):
                        tmp_dirs += 1
        except OSError:
            pass
        return ArtifactStoreStats(
            directory=self.directory,
            artifacts=len(entries),
            total_bytes=sum(e.bytes for e in entries),
            tmp_dirs=tmp_dirs,
            max_bytes=self.max_bytes,
        )

    # ---------------------------------------------------------------- pruning
    def sweep_tmp(self, max_age_s: float = _TMP_SWEEP_AGE_S) -> int:
        """Remove abandoned ``.tmp-*`` staging directories; returns count.

        Only directories older than ``max_age_s`` go — a younger one may
        belong to a writer that is still staging.
        """
        removed = 0
        now = time.time()
        try:
            listing = os.scandir(self.directory)
        except OSError:
            return 0
        with listing:
            for entry in listing:
                if not entry.is_dir() or not entry.name.startswith(_TMP_PREFIX):
                    continue
                try:
                    age = now - entry.stat().st_mtime
                except OSError:
                    continue
                if age >= max_age_s:
                    shutil.rmtree(entry.path, ignore_errors=True)
                    removed += 1
        return removed

    def prune(
        self,
        max_bytes: Optional[int] = None,
        *,
        tmp_max_age_s: float = _TMP_SWEEP_AGE_S,
    ) -> dict:
        """Sweep stale temp dirs, then evict oldest artifacts over the cap.

        ``max_bytes=None`` only sweeps.  Returns a summary dict (counts and
        resulting size) for the CLI.
        """
        swept = self.sweep_tmp(tmp_max_age_s)
        removed = 0
        entries = self.entries()
        total = sum(e.bytes for e in entries)
        if max_bytes is not None:
            registry = get_registry()
            for entry in entries:  # oldest mtime first
                if total <= max_bytes:
                    break
                shutil.rmtree(entry.path, ignore_errors=True)
                total -= entry.bytes
                removed += 1
                if registry.enabled:
                    registry.counter("diskcache.pruned", backend=entry.backend).inc()
        return {
            "tmp_swept": swept,
            "artifacts_removed": removed,
            "artifacts_left": len(entries) - removed,
            "total_bytes": total,
        }

    def clear(self) -> int:
        """Delete every artifact (and temp dir); returns how many went."""
        removed = 0
        try:
            listing = os.scandir(self.directory)
        except OSError:
            return 0
        with listing:
            for entry in listing:
                if entry.is_dir():
                    shutil.rmtree(entry.path, ignore_errors=True)
                    removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskArtifactStore({self.directory!r}, max_bytes={self.max_bytes!r})"
        )
