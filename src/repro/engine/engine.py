"""The execution engine facade.

An :class:`Engine` owns a compile cache and a configuration and turns
circuits plus input batches into results:

* :meth:`Engine.compile` — structural-hash cache lookup, backend
  auto-selection, compilation on miss;
* :meth:`Engine.evaluate` — batched evaluation through the chunked /
  process-parallel scheduler, returning the familiar
  :class:`~repro.circuits.simulator.SimulationResult`;
* :meth:`Engine.submit` — the same, as a future, pipelined through the
  persistent evaluation service;
* :meth:`Engine.spike_trace` — the spiking-mode activity trace.

When ``EngineConfig.persistent_pool`` is set (the default) and the config
asks for workers, parallel-eligible batches route through a lazily-started
resident :class:`~repro.engine.service.EvaluationService` instead of a
per-call pool: workers stay alive across calls and each compiled program is
installed once per worker, keyed by ``(structural_hash, backend)``.

A process-wide default engine (:func:`default_engine`) backs the
compatibility wrappers (``repro.circuits.simulate``, ``TraceCircuit``), so
callers that never mention the engine still share one compile cache.
"""

from __future__ import annotations

import time
import weakref
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import (
    SimulationResult,
    build_layer_plan,
    check_batch_inputs,
)
from repro.engine.backends import (
    CompiledProgram,
    compile_with_fallback,
    get_backend,
    select_backend_name,
    template_plan_for,
)
from repro.engine.cache import CacheInfo, CompileCache
from repro.engine.config import BACKEND_NAMES, EngineConfig
from repro.engine.diskcache import DiskArtifactStore
from repro.engine.scheduler import evaluate_batched, narrowed_chunk_size
from repro.engine.spiking import ActivityPlan, SpikeTrace, compute_spike_trace
from repro.obs import enable as enable_telemetry
from repro.obs import get_registry

__all__ = ["Engine", "default_engine", "set_default_engine"]


@dataclass
class _CacheEntry:
    """A compiled program plus the slim activity plan spiking mode needs.

    The full :class:`LayerPlan` (per-wire Python-int lists, O(edges) boxed
    ints) is deliberately *not* retained: it exists only during compilation.
    Template-streaming compiles never build the global depth-layer view, so
    ``activity`` is None there; lazily-built plans are memoized on the
    *engine* keyed by structural hash (never by mutating the entry, which
    may be shared across concurrent calls — and with ``cache_size=0`` the
    entry is discarded immediately, so an entry-level memo would silently
    rebuild the plan on every trace).  ``key`` is the compile-cache slot
    ``(structural_hash, backend)`` the program lives under; the service
    reuses it as the install-once program identity.
    """

    program: CompiledProgram
    activity: Optional[ActivityPlan]
    key: Tuple[str, str]


class Engine:
    """Multi-backend compiled-circuit runtime with an LRU compile cache."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        if self.config.telemetry:
            # Process-wide by design: metrics are one registry per process
            # (idempotent — a second engine joins the live registry).
            enable_telemetry()
        # The optional disk artifact store: memory misses probe it before
        # recompiling, fresh compiles spill back.  Restored entries carry
        # no activity plan (rebuilt lazily via _activity_plans) and do not
        # count as compile_calls — the whole point is that no backend ran.
        self._artifacts = (
            DiskArtifactStore(
                self.config.artifact_dir,
                max_bytes=self.config.artifact_max_bytes,
                fault_plan=self.config.fault_plan,
            )
            if self.config.artifact_cache
            else None
        )
        self._cache = CompileCache(
            self.config.cache_size,
            disk=self._artifacts,
            spill=lambda entry: entry.program,
            restore=lambda program, key: _CacheEntry(
                program=program, activity=None, key=key
            ),
        )
        # Remembered auto-selection verdicts (hash -> concrete backend name),
        # so an auto lookup costs one cache probe and one LRU slot, not two.
        self._auto_resolved: dict = {}
        # Lazily-built activity plans keyed by structural hash: survives
        # compile-cache evictions and cache_size=0, and never mutates cache
        # entries shared across calls.
        self._activity_plans: dict = {}
        # The resident evaluation service, started on the first parallel
        # evaluation when the config enables it; the finalizer guarantees
        # its workers stop when the engine is collected or at exit.
        self._service = None
        self._service_finalizer = None
        #: Number of actual backend compilations performed (cache misses that
        #: reached a backend).  Exposed so tests can assert cache behaviour.
        self.compile_calls = 0

    # ---------------------------------------------------------------- compile
    def _entry(
        self, circuit: ThresholdCircuit, backend: Optional[str] = None
    ) -> _CacheEntry:
        requested = backend if backend is not None else self.config.backend
        if requested not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {requested!r}; expected one of {BACKEND_NAMES}"
            )
        key_hash = circuit.structural_hash()
        # Entries live under the concrete backend name only; "auto" goes
        # through the remembered verdict so it shares the slot (and the
        # miss accounting) with forced lookups of the same backend.
        resolved = (
            self._auto_resolved.get(key_hash) if requested == "auto" else requested
        )
        if resolved is not None:
            entry = self._cache.get((key_hash, resolved))
            if entry is not None:
                return entry
        # Template-streaming compile: circuits built through the gadget
        # stamper carry their template blocks, and compiling one layer plan
        # per template (tiled across stamps) skips the consolidated-CSR
        # re-gather entirely.  Everything else — and any backend without a
        # compile_template — falls back to the classic CSR plan.  Both
        # compiles are bit-identical and share the (hash, backend) cache
        # slot, so a template compile can satisfy later CSR-built rebuilds
        # of the same circuit and vice versa.
        if self.config.verify_compile:
            # Debug gate: statically verify the circuit (structure,
            # provenance, interval analysis, plan cross-checks) before
            # spending a compile on it.  Imported lazily — the gate is off
            # by default and the statics package pulls in the simulator.
            from repro.statics import verify_circuit

            verify_circuit(circuit).raise_if_failed()
        registry = get_registry()
        compile_start = time.perf_counter() if registry.enabled else 0.0
        template_plan = template_plan_for(circuit, self.config)
        plan = None
        if template_plan is None:
            plan = build_layer_plan(circuit)
        if requested == "auto":
            selected = select_backend_name(
                template_plan if template_plan is not None else plan,
                circuit.stats(),
                self.config,
            )
            # Verdicts are cheap to recompute; keep the map bounded so a
            # long-lived engine seeing many distinct circuits cannot leak.
            if len(self._auto_resolved) >= max(64, 4 * self._cache.capacity):
                self._auto_resolved.clear()
            self._auto_resolved[key_hash] = selected
            if selected != resolved:
                # First time this circuit resolves: it may already be
                # compiled under the concrete name by a forced call.
                entry = self._cache.get((key_hash, selected))
                if entry is not None:
                    return entry
            resolved = selected
        program, used_plan = compile_with_fallback(
            get_backend(resolved), circuit, template_plan, plan
        )
        # Template compiles skip the global depth-layer view; the activity
        # plan is then built lazily from the circuit if a trace ever asks.
        activity = (
            None if used_plan is None else ActivityPlan.from_layer_plan(used_plan)
        )
        self.compile_calls += 1
        if registry.enabled:
            registry.histogram(
                "engine.compile_s",
                backend=resolved,
                path="template" if used_plan is None else "csr",
            ).observe(time.perf_counter() - compile_start)
        entry = _CacheEntry(
            program=program, activity=activity, key=(key_hash, resolved)
        )
        self._cache.put((key_hash, resolved), entry)
        return entry

    def compile(
        self, circuit: ThresholdCircuit, backend: Optional[str] = None
    ) -> CompiledProgram:
        """Return the compiled program for a circuit, using the cache.

        ``backend`` overrides the engine's configured backend for this call;
        ``"auto"`` resolves per circuit via the selection heuristic.
        """
        return self._entry(circuit, backend).program

    def compile_entry(
        self, circuit: ThresholdCircuit, backend: Optional[str] = None
    ) -> Tuple[CompiledProgram, Tuple[str, str]]:
        """Like :meth:`compile`, but also returns the resolved cache key.

        The key is ``(structural_hash, concrete_backend)`` — what the
        service uses as the install-once identity and the artifact store
        uses on disk — with ``"auto"`` already resolved, so callers (CLI
        warming, benchmarks) need no second hash or selection pass.
        """
        entry = self._entry(circuit, backend)
        return entry.program, entry.key

    # ---------------------------------------------------------------- service
    def _service_for(self):
        """The resident evaluation service, started on first use."""
        if self._service is None:
            from repro.engine.service import EvaluationService

            self._service = EvaluationService(self.config)
            # Bound to the *service*, not the engine: runs when the engine
            # is garbage-collected or at interpreter exit, stopping the
            # resident workers without keeping the engine alive.
            self._service_finalizer = weakref.finalize(
                self, EvaluationService.close, self._service, wait=False
            )
        return self._service

    def _service_eligible(self, batch: int) -> bool:
        """Mirror of the scheduler's pool gate, for the resident service.

        A batch of one column always runs inline (the scheduler would too),
        so both paths stay bit-and-route identical apart from pool reuse.
        """
        config = self.config
        return (
            config.persistent_pool
            and config.max_workers > 1
            and batch >= config.parallel_threshold
            and batch > 1
        )

    def _node_values(self, entry: _CacheEntry, inputs: np.ndarray) -> np.ndarray:
        """Batched node values via the service or the per-call scheduler."""
        registry = get_registry()
        if self._service_eligible(inputs.shape[1]):
            with registry.span(
                "engine.evaluate_s", route="service", backend=entry.key[1]
            ):
                return self._service_for().evaluate(
                    entry.program,
                    inputs,
                    key=entry.key,
                    chunk_size=narrowed_chunk_size(inputs.shape[1], self.config),
                )
        with registry.span("engine.evaluate_s", route="local", backend=entry.key[1]):
            return evaluate_batched(entry.program, inputs, self.config)

    def close(self) -> None:
        """Shut down the resident evaluation service, if one was started.

        The engine remains usable: the next parallel evaluation starts a
        fresh service.  Serial evaluation never needs this.
        """
        if self._service is not None:
            service, self._service = self._service, None
            if self._service_finalizer is not None:
                self._service_finalizer.detach()
                self._service_finalizer = None
            service.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- evaluate
    @staticmethod
    def _to_result(
        circuit: ThresholdCircuit, node_values: np.ndarray, squeeze: bool
    ) -> SimulationResult:
        batch = node_values.shape[1]
        outputs = (
            node_values[circuit.outputs, :]
            if circuit.outputs
            else np.zeros((0, batch), dtype=np.int8)
        )
        energy = node_values[circuit.n_inputs :, :].sum(axis=0).astype(np.int64)
        if squeeze:
            return SimulationResult(node_values[:, 0], outputs[:, 0], energy[0])
        return SimulationResult(node_values, outputs, energy)

    def evaluate(
        self,
        circuit: ThresholdCircuit,
        inputs: np.ndarray,
        backend: Optional[str] = None,
    ) -> SimulationResult:
        """Evaluate a circuit on one input vector or a ``(n_inputs, batch)``
        block, compiling (or fetching from cache) as needed."""
        inputs = np.asarray(inputs)
        squeeze = inputs.ndim == 1
        if squeeze:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        entry = self._entry(circuit, backend)
        registry = get_registry()
        if registry.enabled:
            registry.counter("engine.eval_columns", backend=entry.key[1]).inc(
                inputs.shape[1]
            )
        node_values = self._node_values(entry, inputs)
        return self._to_result(circuit, node_values, squeeze)

    def submit(
        self,
        circuit: ThresholdCircuit,
        inputs: np.ndarray,
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> "Future[SimulationResult]":
        """Pipelined :meth:`evaluate`: a future of the simulation result.

        Parallel-eligible batches are dispatched to the resident service and
        the future completes when the workers finish, so many independent
        queries (different circuits, different batches) overlap over one
        pool.  Everything else — serial configs, narrow batches — evaluates
        inline and returns an already-completed future, so callers can use
        one submission code path unconditionally.

        ``timeout`` (seconds) sets a per-job deadline on the service path:
        the future fails with :class:`~repro.engine.faults.DeadlineExceeded`
        once it passes, however wedged the pool might be.  Inline
        evaluations complete before ``submit`` returns, so a deadline has
        nothing to bound there and is ignored.
        """
        from repro.engine.service import chain_future, transform_executor

        inputs = np.asarray(inputs)
        squeeze = inputs.ndim == 1
        if squeeze:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        entry = self._entry(circuit, backend)
        registry = get_registry()
        if registry.enabled:
            registry.counter("engine.eval_columns", backend=entry.key[1]).inc(
                inputs.shape[1]
            )
        if self._service_eligible(inputs.shape[1]):
            with registry.span("engine.submit_s", route="service"):
                inner = self._service_for().submit(
                    entry.program,
                    inputs,
                    key=entry.key,
                    chunk_size=narrowed_chunk_size(inputs.shape[1], self.config),
                    timeout=timeout,
                )
            # The result transform gathers output rows and reduces the full
            # node matrix for energy — too heavy for the dispatcher thread
            # that completes service futures, so it runs on the shared
            # transform executor.
            return chain_future(
                inner,
                lambda values: self._to_result(circuit, values, squeeze),
                executor=transform_executor(),
            )
        future: "Future[SimulationResult]" = Future()
        future.set_running_or_notify_cancel()
        try:
            node_values = evaluate_batched(entry.program, inputs, self.config)
            future.set_result(self._to_result(circuit, node_values, squeeze))
        except Exception as exc:
            future.set_exception(exc)
        except BaseException as exc:
            # KeyboardInterrupt/SystemExit must reach the caller, not sit
            # unnoticed on the future; park a copy there for completeness.
            future.set_exception(exc)
            raise
        return future

    def _activity_plan(
        self, circuit: ThresholdCircuit, entry: _CacheEntry
    ) -> ActivityPlan:
        """The activity plan for a compiled entry, memoized by structural hash.

        CSR compiles carry the plan on the entry; template-streaming
        compiles build it lazily here, *once per circuit structure* — keyed
        by hash rather than stored on the (possibly uncached, possibly
        shared) entry, so ``cache_size=0`` engines do not rebuild the plan
        on every trace and cached entries are never mutated.
        """
        if entry.activity is not None:
            return entry.activity
        registry = get_registry()
        key_hash = entry.key[0]
        plan = self._activity_plans.get(key_hash)
        if registry.enabled:
            registry.counter(
                "engine.plan_memo." + ("misses" if plan is None else "hits")
            ).inc()
        if plan is None:
            plan = ActivityPlan.from_circuit(circuit)
            # Plans are cheap to rebuild; keep the map bounded so a
            # long-lived engine seeing many circuits cannot leak.
            if len(self._activity_plans) >= max(64, 4 * self._cache.capacity):
                self._activity_plans.clear()
            self._activity_plans[key_hash] = plan
        return plan

    def spike_trace(
        self,
        circuit: ThresholdCircuit,
        inputs: np.ndarray,
        backend: Optional[str] = None,
    ) -> SpikeTrace:
        """Spiking-mode evaluation: per-layer/per-gate spike and event counts."""
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        entry = self._entry(circuit, backend)
        activity = self._activity_plan(circuit, entry)
        node_values = self._node_values(entry, inputs)
        return compute_spike_trace(activity, node_values)

    # ------------------------------------------------------------------ cache
    @property
    def metrics(self):
        """The live metrics registry (the process-global one; see repro.obs)."""
        return get_registry()

    @property
    def artifact_store(self) -> Optional[DiskArtifactStore]:
        """The disk artifact store, when ``config.artifact_cache`` is on."""
        return self._artifacts

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters of the compile cache."""
        return self._cache.info()

    def clear_cache(self) -> None:
        """Drop all cached programs and verdicts (counters keep accumulating)."""
        self._cache.clear()
        self._auto_resolved.clear()
        self._activity_plans.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self._cache.info()
        return (
            f"Engine(backend={self.config.backend!r}, cached={info.size}, "
            f"hits={info.hits}, compiles={self.compile_calls})"
        )


_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine used by the compatibility wrappers."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Replace the process-wide engine; returns the previous one.

    Pass ``None`` to reset lazily to a fresh default-config engine.
    """
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
