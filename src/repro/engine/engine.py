"""The execution engine facade.

An :class:`Engine` owns a compile cache and a configuration and turns
circuits plus input batches into results:

* :meth:`Engine.compile` — structural-hash cache lookup, backend
  auto-selection, compilation on miss;
* :meth:`Engine.evaluate` — batched evaluation through the chunked /
  process-parallel scheduler, returning the familiar
  :class:`~repro.circuits.simulator.SimulationResult`;
* :meth:`Engine.spike_trace` — the spiking-mode activity trace.

A process-wide default engine (:func:`default_engine`) backs the
compatibility wrappers (``repro.circuits.simulate``, ``TraceCircuit``), so
callers that never mention the engine still share one compile cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import (
    SimulationResult,
    build_layer_plan,
    check_batch_inputs,
)
from repro.engine.backends import (
    CompiledProgram,
    compile_with_fallback,
    get_backend,
    select_backend_name,
    template_plan_for,
)
from repro.engine.cache import CacheInfo, CompileCache
from repro.engine.config import BACKEND_NAMES, EngineConfig
from repro.engine.scheduler import evaluate_batched
from repro.engine.spiking import ActivityPlan, SpikeTrace, compute_spike_trace

__all__ = ["Engine", "default_engine", "set_default_engine"]


@dataclass
class _CacheEntry:
    """A compiled program plus the slim activity plan spiking mode needs.

    The full :class:`LayerPlan` (per-wire Python-int lists, O(edges) boxed
    ints) is deliberately *not* retained: it exists only during compilation.
    Template-streaming compiles never build the global depth-layer view, so
    ``activity`` starts as None there and is filled lazily from the circuit
    on the first spike-trace request.
    """

    program: CompiledProgram
    activity: Optional[ActivityPlan]


class Engine:
    """Multi-backend compiled-circuit runtime with an LRU compile cache."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self._cache = CompileCache(self.config.cache_size)
        # Remembered auto-selection verdicts (hash -> concrete backend name),
        # so an auto lookup costs one cache probe and one LRU slot, not two.
        self._auto_resolved: dict = {}
        #: Number of actual backend compilations performed (cache misses that
        #: reached a backend).  Exposed so tests can assert cache behaviour.
        self.compile_calls = 0

    # ---------------------------------------------------------------- compile
    def _entry(
        self, circuit: ThresholdCircuit, backend: Optional[str] = None
    ) -> _CacheEntry:
        requested = backend if backend is not None else self.config.backend
        if requested not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {requested!r}; expected one of {BACKEND_NAMES}"
            )
        key_hash = circuit.structural_hash()
        # Entries live under the concrete backend name only; "auto" goes
        # through the remembered verdict so it shares the slot (and the
        # miss accounting) with forced lookups of the same backend.
        resolved = (
            self._auto_resolved.get(key_hash) if requested == "auto" else requested
        )
        if resolved is not None:
            entry = self._cache.get((key_hash, resolved))
            if entry is not None:
                return entry
        # Template-streaming compile: circuits built through the gadget
        # stamper carry their template blocks, and compiling one layer plan
        # per template (tiled across stamps) skips the consolidated-CSR
        # re-gather entirely.  Everything else — and any backend without a
        # compile_template — falls back to the classic CSR plan.  Both
        # compiles are bit-identical and share the (hash, backend) cache
        # slot, so a template compile can satisfy later CSR-built rebuilds
        # of the same circuit and vice versa.
        template_plan = template_plan_for(circuit, self.config)
        plan = None
        if template_plan is None:
            plan = build_layer_plan(circuit)
        if requested == "auto":
            selected = select_backend_name(
                template_plan if template_plan is not None else plan,
                circuit.stats(),
                self.config,
            )
            # Verdicts are cheap to recompute; keep the map bounded so a
            # long-lived engine seeing many distinct circuits cannot leak.
            if len(self._auto_resolved) >= max(64, 4 * self._cache.capacity):
                self._auto_resolved.clear()
            self._auto_resolved[key_hash] = selected
            if selected != resolved:
                # First time this circuit resolves: it may already be
                # compiled under the concrete name by a forced call.
                entry = self._cache.get((key_hash, selected))
                if entry is not None:
                    return entry
            resolved = selected
        program, used_plan = compile_with_fallback(
            get_backend(resolved), circuit, template_plan, plan
        )
        # Template compiles skip the global depth-layer view; the activity
        # plan is then built lazily from the circuit if a trace ever asks.
        activity = (
            None if used_plan is None else ActivityPlan.from_layer_plan(used_plan)
        )
        self.compile_calls += 1
        entry = _CacheEntry(program=program, activity=activity)
        self._cache.put((key_hash, resolved), entry)
        return entry

    def compile(
        self, circuit: ThresholdCircuit, backend: Optional[str] = None
    ) -> CompiledProgram:
        """Return the compiled program for a circuit, using the cache.

        ``backend`` overrides the engine's configured backend for this call;
        ``"auto"`` resolves per circuit via the selection heuristic.
        """
        return self._entry(circuit, backend).program

    # --------------------------------------------------------------- evaluate
    def evaluate(
        self,
        circuit: ThresholdCircuit,
        inputs: np.ndarray,
        backend: Optional[str] = None,
    ) -> SimulationResult:
        """Evaluate a circuit on one input vector or a ``(n_inputs, batch)``
        block, compiling (or fetching from cache) as needed."""
        inputs = np.asarray(inputs)
        squeeze = inputs.ndim == 1
        if squeeze:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        batch = inputs.shape[1]
        entry = self._entry(circuit, backend)
        node_values = evaluate_batched(entry.program, inputs, self.config)
        outputs = (
            node_values[circuit.outputs, :]
            if circuit.outputs
            else np.zeros((0, batch), dtype=np.int8)
        )
        energy = node_values[circuit.n_inputs :, :].sum(axis=0).astype(np.int64)
        if squeeze:
            return SimulationResult(node_values[:, 0], outputs[:, 0], energy[0])
        return SimulationResult(node_values, outputs, energy)

    def spike_trace(
        self,
        circuit: ThresholdCircuit,
        inputs: np.ndarray,
        backend: Optional[str] = None,
    ) -> SpikeTrace:
        """Spiking-mode evaluation: per-layer/per-gate spike and event counts."""
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs[:, None]
        check_batch_inputs(circuit, inputs)
        entry = self._entry(circuit, backend)
        if entry.activity is None:
            # Template-streaming compiles skip the global depth-layer pass;
            # build (and memoize on the entry) the activity view on the
            # first trace request only.
            entry.activity = ActivityPlan.from_circuit(circuit)
        node_values = evaluate_batched(entry.program, inputs, self.config)
        return compute_spike_trace(entry.activity, node_values)

    # ------------------------------------------------------------------ cache
    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters of the compile cache."""
        return self._cache.info()

    def clear_cache(self) -> None:
        """Drop all cached programs and verdicts (counters keep accumulating)."""
        self._cache.clear()
        self._auto_resolved.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self._cache.info()
        return (
            f"Engine(backend={self.config.backend!r}, cached={info.size}, "
            f"hits={info.hits}, compiles={self.compile_calls})"
        )


_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine used by the compatibility wrappers."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Replace the process-wide engine; returns the previous one.

    Pass ``None`` to reset lazily to a fresh default-config engine.
    """
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
