"""Fault injection for the evaluation service (tests and soak runs only).

The resident :class:`~repro.engine.service.EvaluationService` claims to
survive worker deaths, lost messages, wedged workers, shared-memory
breakage, and poisoned installs.  Claims like that rot unless something
exercises them continuously, so this module defines a picklable
:class:`FaultPlan` — a declarative set of injection points threaded into the
service's worker loop and dispatcher:

* **Process kills** — ``kill_before_task`` / ``kill_after_task`` make a
  worker ``os._exit`` around its N-th executed task (before running it, or
  after computing but before reporting), modeling OOM kills and native
  crashes with and without a result in flight.
* **Stalls** — ``stall_task`` + ``stall_seconds`` wedge a worker inside task
  execution, which only heartbeat-based stall detection (not death
  detection) can see.
* **Lost and corrupted messages** — ``drop_result_tasks`` silently discards
  a result, ``corrupt_result_tasks`` replaces it with a malformed message,
  ``drop_dispatch_tasks`` makes the *dispatcher* lose a request before it
  reaches the worker, and ``delay_result_s`` slows every report down.
* **Transport and install failures** — ``shm_attach_failures`` makes the
  first K shared-memory attaches raise, ``install_failures`` drops the
  first K program installs (the worker then keeps reporting the program
  missing until the parent's bounded reinstall budget runs out or a retry
  lands).

Ordinals are **1-based and worker-local** (each worker process counts its
own executed tasks), so a respawned worker re-arms the plan — a
``kill_before_task=9`` plan applies sustained kill pressure, not a single
crash.  ``workers`` restricts worker-side faults to specific worker indices.

Plans activate per service via ``EngineConfig(fault_plan=...)`` or — for
test processes only, never production configuration — the ``REPRO_FAULTS``
environment variable holding the JSON form of a plan.

:class:`DeadlineExceeded` also lives here: it is the error both the
service's per-job deadlines and the scheduler's serial deadline checks
raise, and this module is the one place they can both import it from
without a cycle.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields
from typing import Optional, Tuple

__all__ = [
    "DeadlineExceeded",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "aggressive_plan",
    "fault_plan_from_env",
]

#: Environment variable holding a JSON :class:`FaultPlan` (tests only).
FAULTS_ENV_VAR = "REPRO_FAULTS"


class DeadlineExceeded(TimeoutError):
    """A job (or serial evaluation) missed its deadline.

    Raised by ``EvaluationService.submit(..., timeout=...)`` futures and by
    :func:`repro.engine.scheduler.run_serial` when a deadline is passed.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Declarative injection points for one evaluation service.

    All task ordinals are 1-based counts of *executed* tasks, local to one
    worker process (a respawned worker starts counting again).  A field
    left at its default injects nothing.
    """

    #: ``os._exit`` before executing the worker's N-th task.
    kill_before_task: Optional[int] = None
    #: ``os._exit`` after computing the N-th task, before reporting it.
    kill_after_task: Optional[int] = None
    #: Sleep ``stall_seconds`` inside execution of the N-th task.
    stall_task: Optional[int] = None
    stall_seconds: float = 5.0
    #: Silently discard the result message of these task ordinals.
    drop_result_tasks: Tuple[int, ...] = ()
    #: Replace the result message of these ordinals with malformed garbage.
    corrupt_result_tasks: Tuple[int, ...] = ()
    #: Sleep this long before every result put (slow-worker pressure).
    delay_result_s: float = 0.0
    #: The first K shared-memory attaches in a worker raise.
    shm_attach_failures: int = 0
    #: The first K install messages in a worker are dropped.
    install_failures: int = 0
    #: The dispatcher silently drops these (service-global, 1-based)
    #: dispatch ordinals: the request never reaches the worker.
    drop_dispatch_tasks: Tuple[int, ...] = ()
    #: The first K artifact publications by a
    #: :class:`~repro.engine.diskcache.DiskArtifactStore` built from this
    #: plan ``os._exit`` after fully staging the artifact but before the
    #: atomic ``os.replace`` — a crashed writer, leaving only ``.tmp-*``
    #: litter that readers must never trust and ``prune`` must sweep.
    artifact_crash_writes: int = 0
    #: Restrict worker-side faults to these worker indices (None: all).
    workers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        # JSON round-trips hand us lists; normalize to hashable tuples.
        for name in ("drop_result_tasks", "corrupt_result_tasks", "drop_dispatch_tasks"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                value = tuple(value)
                object.__setattr__(self, name, value)
            for ordinal in value:
                if ordinal < 1:
                    raise ValueError(
                        f"{name} must hold 1-based ordinals, got {ordinal}"
                    )
        if self.workers is not None and not isinstance(self.workers, tuple):
            object.__setattr__(self, "workers", tuple(self.workers))
        for name in ("kill_before_task", "kill_after_task", "stall_task"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be a 1-based ordinal, got {value}")
        for name in ("stall_seconds", "delay_result_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("shm_attach_failures", "install_failures", "artifact_crash_writes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    # ------------------------------------------------------------- application
    def applies_to(self, worker_index: int) -> bool:
        """Whether worker-side faults of this plan target the given worker."""
        return self.workers is None or worker_index in self.workers

    # ------------------------------------------------------------ serialization
    def as_dict(self) -> dict:
        """JSON-ready form (tuples become lists); inverse of :meth:`from_dict`."""
        payload = asdict(self)
        for key, value in payload.items():
            if isinstance(value, tuple):
                payload[key] = list(value)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        return cls(**payload)

    def to_json(self) -> str:
        """Compact JSON form, accepted by :meth:`from_json` / ``REPRO_FAULTS``."""
        return json.dumps(self.as_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(f"fault plan JSON must be an object, got {type(payload).__name__}")
        return cls.from_dict(payload)


def fault_plan_from_env() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULTS`` (JSON), or None when unset/empty."""
    text = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not text:
        return None
    return FaultPlan.from_json(text)


def aggressive_plan() -> FaultPlan:
    """The kitchen-sink plan CI's short-mode soak runs under.

    The ordinals are ordered so one worker life hits every mechanism: a
    dropped result (2), a corrupted message (4), a sub-detection-threshold
    stall (6 — slow worker, not a wedge, so the life continues), then death
    at task 9, re-arming the plan in the respawned worker.  Only one kill
    variant appears because a worker dies at most once per life and the
    plan re-arms identically — the earliest fatal ordinal would always win,
    so ``kill_after_task`` / detection-threshold stalls are left to the
    targeted tests that can observe them in isolation.  Shared-memory
    attaches and an install also fail once per worker process, and every
    report is slightly delayed to keep result ordering honest.
    """
    return FaultPlan(
        kill_before_task=9,
        stall_task=6,
        stall_seconds=0.4,
        drop_result_tasks=(2,),
        corrupt_result_tasks=(4,),
        delay_result_s=0.01,
        shm_attach_failures=2,
        install_failures=1,
        drop_dispatch_tasks=(11,),
    )
