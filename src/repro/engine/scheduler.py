"""Batch scheduler: chunked and process-parallel circuit evaluation.

Arbitrarily wide input batches are split into column blocks so every
per-layer intermediate (``n_nodes x chunk`` int64) stays cache-sized, in the
spirit of the two-pass sharded evaluation of parallel connected-component
labeling: each chunk is an independent shard, and the final node-value
matrix is just the concatenation of the shard results (circuit evaluation
has no cross-column coupling, so no merge pass is needed).

When a pool is requested the compiled program is shipped to each worker via
the pool initializer — once per worker per call, not once per chunk — and
the workers stream chunk results back through ``imap``: chunk views are
generated lazily (the feeder pickles one at a time into the pipe) and each
result is written into the preallocated output as it arrives, so peak
parent-side memory stays near one chunk per worker instead of a full second
copy of the batch.  The pool itself is created per :func:`evaluate_batched`
call, so sharding only pays off when one batch is wide enough to amortize
the spawn; the engine gates it behind ``EngineConfig.parallel_threshold``.
For steady-state query traffic — many batches against installed programs —
use the resident pool of :class:`repro.engine.service.EvaluationService`,
which the engine routes to when ``EngineConfig.persistent_pool`` is set.
"""

from __future__ import annotations

import multiprocessing
from time import monotonic
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.engine.backends import CompiledProgram
from repro.engine.config import EngineConfig
from repro.engine.faults import DeadlineExceeded
from repro.obs import get_registry

__all__ = [
    "evaluate_batched",
    "iter_column_chunks",
    "narrowed_chunk_size",
    "run_serial",
]


def iter_column_chunks(width: int, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` column ranges covering ``range(width)``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, width, chunk_size):
        yield start, min(start + chunk_size, width)


def narrowed_chunk_size(batch: int, config: EngineConfig) -> int:
    """The pool chunk width: narrowed (if needed) so every worker gets one.

    The single narrowing rule shared by the per-call pool below and the
    engine's routing into the persistent service, so both parallel paths
    shard a blocking batch identically.
    """
    return min(config.chunk_size, max(1, -(-batch // max(1, config.max_workers))))


def run_serial(
    program: CompiledProgram,
    inputs: np.ndarray,
    *,
    chunk_size: int,
    out: Optional[np.ndarray] = None,
    deadline: Optional[float] = None,
) -> np.ndarray:
    """Evaluate serially in chunks, optionally into ``out``, with a deadline.

    The single in-process evaluation path shared by :func:`evaluate_batched`
    and the service's degraded mode.  ``deadline`` is a
    ``time.monotonic()`` instant checked between chunks (the granularity at
    which a pure-python caller can be interrupted at all);
    :class:`DeadlineExceeded` is raised once it has passed.  When ``out`` is
    None and the batch fits a single chunk the program's own result array is
    returned without an extra copy.
    """
    registry = get_registry()
    batch = inputs.shape[1]
    if deadline is not None and monotonic() > deadline:
        raise DeadlineExceeded(f"deadline passed before evaluating batch of {batch}")
    if out is None and batch <= chunk_size:
        if registry.enabled:
            registry.counter("scheduler.chunks", mode="serial").inc()
            with registry.span("scheduler.chunk_s"):
                return program.run(inputs)
        return program.run(inputs)
    if out is None:
        out = np.empty((program.n_nodes, batch), dtype=np.int8)
    ranges = list(iter_column_chunks(batch, chunk_size)) if batch else []
    if registry.enabled:
        registry.counter("scheduler.chunks", mode="serial").inc(len(ranges))
    for start, stop in ranges:
        if deadline is not None and monotonic() > deadline:
            raise DeadlineExceeded(
                f"deadline passed after {start} of {batch} columns"
            )
        if registry.enabled:
            with registry.span("scheduler.chunk_s"):
                out[:, start:stop] = program.run(inputs[:, start:stop])
        else:
            out[:, start:stop] = program.run(inputs[:, start:stop])
    return out


# Worker-side state: the compiled program is installed once per worker by the
# pool initializer so chunks only carry input columns across the pipe.
_WORKER_PROGRAM: Optional[CompiledProgram] = None


def _worker_init(program: CompiledProgram) -> None:
    global _WORKER_PROGRAM
    _WORKER_PROGRAM = program


def _worker_run(chunk: np.ndarray) -> np.ndarray:
    # A real exception, not an assert: the guard must survive ``python -O``.
    if _WORKER_PROGRAM is None:
        raise RuntimeError("worker pool used before initialization")
    return _WORKER_PROGRAM.run(chunk)


def evaluate_batched(
    program: CompiledProgram,
    inputs: np.ndarray,
    config: Optional[EngineConfig] = None,
) -> np.ndarray:
    """Run a compiled program over a ``(n_inputs, batch)`` block, chunked.

    Returns the full ``(n_nodes, batch)`` int8 node-value matrix.  Chunking
    follows ``config.chunk_size``; sharding across a process pool kicks in
    when ``config.max_workers > 1`` and the batch is at least
    ``config.parallel_threshold`` wide.  When sharding applies, the chunk
    width is narrowed (if needed) so every worker gets at least one chunk —
    callers never have to derive a chunk size from the worker count.
    """
    config = config if config is not None else EngineConfig()
    registry = get_registry()
    batch = inputs.shape[1]
    if batch == 0:
        # Zero-width batches short-circuit: nothing to chunk or shard.
        return np.empty((program.n_nodes, 0), dtype=np.int8)
    chunk_size = config.chunk_size
    parallel_ok = config.max_workers > 1 and batch >= config.parallel_threshold
    if parallel_ok:
        chunk_size = narrowed_chunk_size(batch, config)
    if batch <= chunk_size:
        return run_serial(program, inputs, chunk_size=chunk_size)

    ranges = list(iter_column_chunks(batch, chunk_size))
    if not (parallel_ok and len(ranges) > 1):
        return run_serial(program, inputs, chunk_size=chunk_size)
    node_values = np.empty((program.n_nodes, batch), dtype=np.int8)
    if registry.enabled:
        registry.counter("scheduler.chunks", mode="pool").inc(len(ranges))
        registry.counter("scheduler.pool_spawns").inc()
    processes = min(config.max_workers, len(ranges))
    with registry.span("scheduler.pool_s"):
        with multiprocessing.Pool(
            processes, initializer=_worker_init, initargs=(program,)
        ) as pool:
            # Chunk views are generated lazily and results written in
            # place as they stream back, so the parent never materializes
            # a second copy of the whole batch (``pool.map`` over a chunk
            # list did).
            chunk_views = (inputs[:, start:stop] for start, stop in ranges)
            for (start, stop), part in zip(
                ranges, pool.imap(_worker_run, chunk_views)
            ):
                node_values[:, start:stop] = part
    return node_values
