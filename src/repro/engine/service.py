"""Persistent evaluation service: a resident worker pool with install-once programs.

The per-call pool in :mod:`repro.engine.scheduler` re-pays the dominant
costs of process-parallel evaluation on *every* batch: spawning the pool and
shipping the compiled program to each worker.  That shape is exactly wrong
for the amortization story of the paper — build a circuit once, answer many
queries against it — so this module keeps the workers *resident*:

* Each worker process owns a small LRU **program store**.  A compiled
  program is installed once per ``(structural_hash, backend)`` per worker
  and thereafter referenced by that key, so steady-state requests carry
  only input columns.
* Wide batches travel through ``multiprocessing.shared_memory`` blocks
  (one for the inputs, one the workers write their output columns into);
  small batches fall back to pickling chunks over the queues, which is
  cheaper than two block setups there.  ``EngineConfig.shared_memory_min_bytes``
  draws the line.
* :meth:`EvaluationService.submit` returns a :class:`concurrent.futures.Future`,
  so many independent jobs — different circuits, different batches — pipeline
  over one pool; ``map`` and :func:`as_completed` ride on top.
* Workers that die (OOM-killed, segfaulted, externally killed) are detected
  when results go quiet or at the next dispatch, respawned with an empty
  store, and their in-flight tasks are re-dispatched; a worker answering a
  request for a key it no longer holds (LRU eviction, or a fresh process
  after a crash) triggers a targeted reinstall rather than an error.
* ``close()`` (also via the context-manager protocol) drains outstanding
  jobs, stops every worker, and releases the queues and any shared-memory
  blocks; a closed service rejects new submissions with :class:`ServiceClosed`.

The service never changes results: every task is ``program.run`` over a
column range, which is columnwise independent, so outputs are bit-identical
to serial evaluation whatever the sharding, transport, or interleaving.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from queue import Empty
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.scheduler import iter_column_chunks
from repro.obs import MetricsRegistry, get_registry, set_registry

__all__ = [
    "EvaluationService",
    "ServiceClosed",
    "ServiceStats",
    "as_completed",
    "chain_future",
    "transform_executor",
]


class ServiceClosed(RuntimeError):
    """Raised when work is submitted to a service that has been closed."""


@dataclass(frozen=True)
class ServiceStats:
    """Counters describing service behaviour since construction.

    A *view* over the service's metrics registry: the same numbers are
    available as ``service.*`` counter series in telemetry snapshots.  The
    snapshot is taken atomically under the dispatcher lock, so the fields
    are mutually consistent (``shm_jobs <= jobs``, etc.) even while jobs are
    being submitted and completed concurrently.
    """

    workers: int
    jobs: int
    tasks: int
    installs: int
    reinstalls: int
    shm_jobs: int
    worker_restarts: int

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "tasks": self.tasks,
            "installs": self.installs,
            "reinstalls": self.reinstalls,
            "shm_jobs": self.shm_jobs,
            "worker_restarts": self.worker_restarts,
        }


def chain_future(inner: Future, transform, executor=None) -> Future:
    """A future resolving to ``transform(inner.result())``.

    Errors propagate: an exception from ``inner`` (including cancellation)
    or from ``transform`` becomes the outer future's exception.  The
    transform runs on whatever thread completes ``inner`` (for service
    futures: the dispatcher), so it must be cheap — pass ``executor`` to run
    an expensive transform there instead of blocking the completing thread.
    """
    outer: Future = Future()
    outer.set_running_or_notify_cancel()

    def _apply(completed: Future) -> None:
        try:
            exception = completed.exception()
        except CancelledError as exc:
            outer.set_exception(exc)
            return
        if exception is not None:
            outer.set_exception(exception)
            return
        try:
            outer.set_result(transform(completed.result()))
        except BaseException as exc:
            outer.set_exception(exc)

    def _done(completed: Future) -> None:
        if executor is not None and not completed.cancelled():
            if completed.exception() is None:
                executor.submit(_apply, completed)
                return
        _apply(completed)

    inner.add_done_callback(_done)
    return outer


_TRANSFORM_EXECUTOR: Optional[ThreadPoolExecutor] = None
_TRANSFORM_LOCK = threading.Lock()


def transform_executor() -> ThreadPoolExecutor:
    """Shared single-thread executor for expensive future transforms.

    Driver-level decodes (e.g. reconstructing matmul products from node
    values, a Python-level pass over every output entry) run here so they
    never stall the service dispatcher thread that completes futures.
    """
    global _TRANSFORM_EXECUTOR
    with _TRANSFORM_LOCK:
        if _TRANSFORM_EXECUTOR is None:
            _TRANSFORM_EXECUTOR = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="service-transform"
            )
        return _TRANSFORM_EXECUTOR


# ----------------------------------------------------------------- worker side
def _attach_block(name: str) -> SharedMemory:
    """Attach to a parent-owned shared-memory block without claiming it.

    On Python < 3.13 attaching registers the segment with the resource
    tracker as if this process owned it, which makes worker exits unlink (or
    warn about) blocks the parent still manages; unregister defensively.
    """
    block = SharedMemory(name=name)
    try:  # pragma: no cover - depends on interpreter version details
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:
        pass
    return block


def _execute_task(program, payload) -> Optional[np.ndarray]:
    """Run one task payload; returns the chunk for pickle transport, else None."""
    kind = payload[0]
    if kind == "pickle":
        return program.run(payload[1])
    # ("shm", in_name, in_shape, in_dtype, out_name, out_shape, start, stop)
    _, in_name, in_shape, in_dtype, out_name, out_shape, start, stop = payload
    in_block = None
    out_block = None
    try:
        # Attach inside the try: if the parent unlinked the job's blocks
        # between the two attaches (sibling task failed the job), the first
        # mapping must still be closed — a leaked mapping in a resident
        # worker pins the freed segment's memory for the worker's lifetime.
        in_block = _attach_block(in_name)
        out_block = _attach_block(out_name)
        inputs = np.ndarray(in_shape, dtype=np.dtype(in_dtype), buffer=in_block.buf)
        outputs = np.ndarray(out_shape, dtype=np.int8, buffer=out_block.buf)
        outputs[:, start:stop] = program.run(inputs[:, start:stop])
        # Views into the buffers must be gone before close() or the memoryview
        # export check raises BufferError.
        del inputs, outputs
    finally:
        if in_block is not None:
            in_block.close()
        if out_block is not None:
            out_block.close()
    return None


def _payload_bytes(payload) -> int:
    """Transport bytes one task moves (inputs read plus outputs written)."""
    if payload[0] == "pickle":
        return int(payload[1].nbytes) * 2  # chunk over the pipe, result back
    # ("shm", in_name, in_shape, in_dtype, out_name, out_shape, start, stop)
    _, _, in_shape, in_dtype, _, out_shape, start, stop = payload
    width = stop - start
    in_bytes = in_shape[0] * width * np.dtype(in_dtype).itemsize
    out_bytes = out_shape[0] * width  # int8 output columns written in place
    return int(in_bytes + out_bytes)


def _drain_delta(registry: Optional[MetricsRegistry]) -> Optional[dict]:
    """This worker's metric delta since the last report (None when disabled)."""
    if registry is None:
        return None
    delta = registry.drain()
    if delta["counters"] or delta["gauges"] or delta["histograms"]:
        return delta
    return None


def _service_worker_main(
    worker_id, requests, results, store_capacity, telemetry=False
) -> None:
    """Loop of one resident worker: install programs, run tasks, report back.

    The local program store is a twin of the parent-side mirror: both evict
    LRU-first at ``store_capacity`` and both refresh recency on installs and
    runs, and since messages arrive in the order the parent dispatched them
    the two stay in lockstep.  A run for a key the store no longer holds
    (mirror drift, or a fresh process after a crash) is answered with a
    ``missing`` report so the parent reinstalls and re-dispatches.

    With ``telemetry`` on, the worker keeps its own lightweight registry
    (installs, store evictions, task latency, queue wait, transport bytes)
    and piggybacks the drained delta on every result message; the parent
    merges deltas tagged with this worker's id.  A delta rides exactly one
    message, so parent-side aggregates are monotone and a killed worker
    loses at most the few observations since its last report.
    """
    registry = MetricsRegistry() if telemetry else None
    if registry is not None:
        # Fresh registry for this process (the forked copy of the parent's
        # would re-report parent totals); debug-mode backend spans land here.
        set_registry(registry)
    store: "OrderedDict[object, object]" = OrderedDict()
    while True:
        message = requests.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "install":
            _, key, program = message
            store[key] = program
            store.move_to_end(key)
            if registry is not None:
                registry.counter("worker.installs").inc()
            while len(store) > store_capacity:
                store.popitem(last=False)
                if registry is not None:
                    registry.counter("worker.store_evictions").inc()
            continue
        # ("run", task_id, key, payload, dispatched_at)
        _, task_id, key, payload, dispatched_at = message
        program = store.get(key)
        if program is None:
            results.put(
                (worker_id, "missing", task_id, None, _drain_delta(registry))
            )
            continue
        store.move_to_end(key)
        try:
            if registry is not None:
                if dispatched_at is not None:
                    # Wall clock, not perf_counter: the dispatch stamp was
                    # taken in another process (same host, same clock).
                    registry.histogram("worker.queue_wait_s").observe(
                        max(0.0, time.time() - dispatched_at)
                    )
                registry.counter("worker.tasks").inc()
                registry.counter(
                    "worker.shm_bytes" if payload[0] == "shm" else "worker.pickle_bytes"
                ).inc(_payload_bytes(payload))
                start = time.perf_counter()
                chunk = _execute_task(program, payload)
                registry.histogram("worker.task_s").observe(
                    time.perf_counter() - start
                )
            else:
                chunk = _execute_task(program, payload)
            results.put((worker_id, "done", task_id, chunk, _drain_delta(registry)))
        except BaseException as exc:
            detail = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
            results.put(
                (
                    worker_id,
                    "error",
                    task_id,
                    (repr(exc), detail),
                    _drain_delta(registry),
                )
            )


# ----------------------------------------------------------------- parent side
class _Worker:
    """Parent-side handle of one resident worker process."""

    __slots__ = ("index", "process", "requests", "store", "inflight")

    def __init__(self, index, process, requests) -> None:
        self.index = index
        self.process = process
        self.requests = requests
        #: Mirror of the worker's LRU program store (keys only).
        self.store: "OrderedDict[object, bool]" = OrderedDict()
        #: Task ids currently dispatched to this worker.
        self.inflight: set = set()


#: Bound on retries per task, counting both missing-program reports (e.g. a
#: program that cannot be pickled into the worker, which only surfaces
#: asynchronously in the queue's feeder thread) and re-dispatches after a
#: worker death: a task that deterministically kills its worker (OOM,
#: native segfault) must fail the job instead of respawning forever.
_MAX_TASK_ATTEMPTS = 5


class _Task:
    # No back-reference to the dispatched worker: result handling must
    # attribute reports to the *reporting* worker id (a task may have been
    # re-dispatched meanwhile), and a stored handle would pin dead _Worker
    # objects alive for the task's lifetime.
    __slots__ = ("task_id", "job", "start", "stop", "attempts")

    def __init__(self, task_id, job, start, stop) -> None:
        self.task_id = task_id
        self.job = job
        self.start = start
        self.stop = stop
        self.attempts = 0


class _Job:
    """One submitted batch: a future plus the state to assemble its result."""

    __slots__ = (
        "future",
        "program",
        "key",
        "inputs",
        "in_shape",
        "in_dtype",
        "n_nodes",
        "batch",
        "pending",
        "out",
        "in_shm",
        "out_shm",
        "done",
        "started_at",
        "counted",
    )

    def __init__(self, future, program, key, inputs, n_nodes, batch) -> None:
        self.future = future
        self.program = program
        self.key = key
        self.inputs = inputs  # retained for pickle-mode (re-)dispatch; None for shm
        self.in_shape = inputs.shape
        self.in_dtype = str(inputs.dtype)
        self.n_nodes = n_nodes
        self.batch = batch
        self.pending: set = set()
        self.out: Optional[np.ndarray] = None  # pickle-mode assembly buffer
        self.in_shm: Optional[SharedMemory] = None
        self.out_shm: Optional[SharedMemory] = None
        self.done = False
        self.started_at: Optional[float] = None  # submit stamp (telemetry only)
        self.counted = False  # included in the outstanding-jobs gauge


class EvaluationService:
    """A resident pool evaluating compiled programs with install-once keys.

    Parameters
    ----------
    config:
        The engine configuration supplying every knob the service honors:
        ``max_workers`` (pool width; values < 2 still run one resident
        worker), ``chunk_size`` / column sharding, ``shared_memory_min_bytes``
        (transport cutover), ``service_queue_depth`` (bound on outstanding
        jobs; further ``submit`` calls block) and ``service_store_size``
        (per-worker LRU program-store capacity).
    context:
        Optional ``multiprocessing`` context; defaults to the platform
        default (fork on Linux, matching the per-call scheduler pool).
    registry:
        Optional metrics registry the service records into.  By default the
        process-global registry is used when telemetry is enabled; when it is
        not, the service keeps a private always-on registry so
        :meth:`stats` works regardless (its handful of counter updates per
        job cost the same as the plain ints they replaced).  Worker-side
        telemetry (per-task latency, queue wait, transport bytes, piggyback
        deltas) only activates when process-global telemetry is on at
        service construction.
    """

    def __init__(
        self, config: Optional[EngineConfig] = None, *, context=None, registry=None
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self._ctx = context if context is not None else get_context()
        self._lock = threading.RLock()
        self._results = self._ctx.Queue()
        self._task_ids = itertools.count()
        self._tasks: Dict[int, _Task] = {}
        # Future resolutions staged under the lock, applied outside it: a
        # future's done-callbacks (chain_future transforms, user callbacks)
        # must never run while the service lock is held.
        self._resolutions: List[tuple] = []
        self._job_slots = threading.BoundedSemaphore(self.config.service_queue_depth)
        self._auto_keys: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._anon_ids = itertools.count()
        self._closing = False
        self._closed = False
        global_registry = get_registry()
        if registry is not None:
            self._metrics = registry
        elif global_registry.enabled:
            self._metrics = global_registry
        else:
            self._metrics = MetricsRegistry()
        #: Whether workers carry registries and piggyback deltas (decided at
        #: construction — worker processes are spawned with this flag).
        self._telemetry = bool(getattr(self._metrics, "enabled", False)) and (
            registry is not None or global_registry.enabled
        )
        metrics = self._metrics
        self._c_jobs = metrics.counter("service.jobs")
        self._c_tasks = metrics.counter("service.tasks")
        self._c_installs = metrics.counter("service.installs")
        self._c_reinstalls = metrics.counter("service.reinstalls")
        self._c_shm_jobs = metrics.counter("service.shm_jobs")
        self._c_restarts = metrics.counter("service.worker_restarts")
        self._c_shm_bytes = metrics.counter("service.shm_bytes")
        self._c_pickle_bytes = metrics.counter("service.pickle_bytes")
        self._g_queue_depth = metrics.gauge("service.queue_depth")
        self._g_workers = metrics.gauge("service.workers")
        self._outstanding = 0
        n_workers = max(1, self.config.max_workers)
        self._workers: List[_Worker] = [
            self._spawn_worker(index) for index in range(n_workers)
        ]
        self._g_workers.set(n_workers)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="evaluation-service-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------- lifecycle
    def _spawn_worker(self, index: int) -> _Worker:
        requests = self._ctx.Queue()
        process = self._ctx.Process(
            target=_service_worker_main,
            args=(
                index,
                requests,
                self._results,
                self.config.service_store_size,
                self._telemetry,
            ),
            name=f"evaluation-service-worker-{index}",
            daemon=True,
        )
        process.start()
        return _Worker(index, process, requests)

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work, stop every worker, release all resources.

        ``wait=True`` (default) drains outstanding jobs first; ``wait=False``
        fails their futures with :class:`ServiceClosed` and terminates the
        workers immediately.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closing = True
            outstanding = list(
                {task.job for task in self._tasks.values() if not task.job.done}
            )
        if wait:
            for job in outstanding:
                try:
                    job.future.exception(timeout=timeout)
                except Exception:
                    pass
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task in list(self._tasks.values()):
                self._fail_job(task.job, ServiceClosed("service closed"))
            self._tasks.clear()
            workers = list(self._workers)
        self._flush_resolutions()
        for worker in workers:
            try:
                worker.requests.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        self._results.put(None)  # wake + stop the dispatcher
        self._dispatcher.join(timeout=timeout)
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.requests.close()
        self._results.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self):
        """The registry backing this service's counters (see repro.obs)."""
        return self._metrics

    def stats(self) -> ServiceStats:
        """Atomic snapshot of the service counters (a view over the registry).

        Taken under the dispatcher lock — the same lock every counter update
        is performed under — so the fields cannot tear against a concurrent
        ``submit`` (e.g. ``jobs`` incremented but ``shm_jobs`` not yet).
        """
        with self._lock:
            return ServiceStats(
                workers=len(self._workers),
                jobs=self._c_jobs.value,
                tasks=self._c_tasks.value,
                installs=self._c_installs.value,
                reinstalls=self._c_reinstalls.value,
                shm_jobs=self._c_shm_jobs.value,
                worker_restarts=self._c_restarts.value,
            )

    # ------------------------------------------------------------ submission
    def _key_for(self, program) -> object:
        """A stable per-program key when the caller did not supply one.

        Held weakly: the key dies with the program object, so id-style reuse
        cannot alias two different programs.
        """
        try:
            key = self._auto_keys.get(program)
            if key is None:
                key = ("anon", next(self._anon_ids))
                self._auto_keys[program] = key
            return key
        except TypeError:  # unweakrefable program object
            return ("anon", next(self._anon_ids))

    def submit(self, program, inputs, *, key=None, chunk_size=None) -> Future:
        """Schedule one batched evaluation; returns a future of node values.

        ``inputs`` is a ``(n_inputs, batch)`` block (a 1-D vector is promoted
        to one column; the result keeps the 2-D ``(n_nodes, batch)`` shape).
        ``key`` identifies the program across calls — the engine passes
        ``(structural_hash, backend)`` — so repeated submissions reuse the
        per-worker installs; omitted keys are derived per program object.
        Blocks while ``service_queue_depth`` jobs are already outstanding.

        Jobs are split into column tasks of ``chunk_size`` (default: the
        config's) — and *not* narrowed to the worker count: a pipelined
        query stream already keeps every worker busy with whole jobs, and
        sparse evaluation cost is largely per-chunk, so finer within-job
        sharding buys latency only when the pool is otherwise idle.  The
        engine passes its scheduler-narrowed width for blocking calls.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs[:, None]
        if inputs.ndim != 2:
            raise ValueError(f"inputs must be 1-D or 2-D, got shape {inputs.shape}")
        if self._closing or self._closed:
            raise ServiceClosed("cannot submit to a closed service")
        future: Future = Future()
        future.set_running_or_notify_cancel()
        batch = inputs.shape[1]
        if batch == 0:
            future.set_result(np.empty((program.n_nodes, 0), dtype=np.int8))
            return future
        if key is None:
            with self._lock:
                key = self._key_for(program)

        if chunk_size is None:
            chunk_size = self.config.chunk_size
        ranges = list(iter_column_chunks(batch, chunk_size))
        self._job_slots.acquire()
        job = _Job(future, program, key, inputs, program.n_nodes, batch)
        try:
            use_shm = inputs.nbytes >= self.config.shared_memory_min_bytes
            if use_shm:
                try:
                    self._setup_shared_memory(job, inputs)
                except (OSError, ValueError):  # no /dev/shm or exhausted space
                    use_shm = False
            if not use_shm:
                job.out = np.empty((job.n_nodes, batch), dtype=np.int8)
            with self._lock:
                if self._closing or self._closed:
                    raise ServiceClosed("cannot submit to a closed service")
                self._c_jobs.inc()
                if job.in_shm is not None:
                    self._c_shm_jobs.inc()
                    self._c_shm_bytes.inc(
                        int(inputs.nbytes) + job.n_nodes * batch
                    )
                else:
                    self._c_pickle_bytes.inc(int(inputs.nbytes))
                if self._telemetry:
                    job.started_at = time.perf_counter()
                job.counted = True
                self._outstanding += 1
                self._g_queue_depth.set(self._outstanding)
                for start, stop in ranges:
                    task = _Task(next(self._task_ids), job, start, stop)
                    job.pending.add(task.task_id)
                    self._tasks[task.task_id] = task
                    self._dispatch(task)
        except BaseException as exc:
            with self._lock:
                if not job.done:
                    self._fail_job(
                        job,
                        exc if isinstance(exc, Exception) else RuntimeError(repr(exc)),
                    )
            self._flush_resolutions()
            raise
        # Dispatching may have respawned a dead worker and failed another
        # job's over-retried tasks; resolve those futures lock-free too.
        self._flush_resolutions()
        return future

    def evaluate(self, program, inputs, *, key=None, chunk_size=None) -> np.ndarray:
        """Blocking :meth:`submit`: the ``(n_nodes, batch)`` node values."""
        return self.submit(program, inputs, key=key, chunk_size=chunk_size).result()

    def map(
        self, program, batches: Iterable, *, key=None, chunk_size=None
    ) -> Iterator[np.ndarray]:
        """Submit many batches of one program; yield results in order."""
        futures = [
            self.submit(program, batch, key=key, chunk_size=chunk_size)
            for batch in batches
        ]
        for future in futures:
            yield future.result()

    def _setup_shared_memory(self, job: _Job, inputs: np.ndarray) -> None:
        in_shm = SharedMemory(create=True, size=max(1, inputs.nbytes))
        try:
            out_shm = SharedMemory(create=True, size=max(1, job.n_nodes * job.batch))
        except BaseException:
            in_shm.close()
            in_shm.unlink()
            raise
        staged = np.ndarray(inputs.shape, dtype=inputs.dtype, buffer=in_shm.buf)
        staged[:] = inputs
        del staged
        job.in_shm = in_shm
        job.out_shm = out_shm
        # The block now owns the data; dispatch only needs shape and dtype.
        job.inputs = None

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, task: _Task) -> None:
        """Send one task to the least-loaded live worker (lock held)."""
        for worker in self._workers:
            if not worker.process.is_alive():
                self._respawn_worker(worker)
        worker = min(self._workers, key=lambda w: (len(w.inflight), w.index))
        self._install_if_needed(worker, task.job)
        worker.inflight.add(task.task_id)
        self._c_tasks.inc()
        worker.requests.put(
            (
                "run",
                task.task_id,
                task.job.key,
                self._payload_for(task),
                time.time() if self._telemetry else None,
            )
        )

    def _payload_for(self, task: _Task) -> tuple:
        job = task.job
        if job.in_shm is not None:
            return (
                "shm",
                job.in_shm.name,
                job.in_shape,
                job.in_dtype,
                job.out_shm.name,
                (job.n_nodes, job.batch),
                task.start,
                task.stop,
            )
        return ("pickle", job.inputs[:, task.start : task.stop])

    def _install_if_needed(self, worker: _Worker, job: _Job) -> None:
        """Mirror-checked install: ship the program once per worker per key."""
        if job.key not in worker.store:
            worker.requests.put(("install", job.key, job.program))
            self._c_installs.inc()
        worker.store[job.key] = True
        worker.store.move_to_end(job.key)
        while len(worker.store) > self.config.service_store_size:
            worker.store.popitem(last=False)

    def _respawn_worker(self, worker: _Worker) -> None:
        """Replace a dead worker and re-dispatch whatever it was running.

        Re-dispatches count against the task's attempt budget so a task that
        deterministically kills its worker (OOM, native crash) fails its job
        after :data:`_MAX_TASK_ATTEMPTS` instead of respawning forever.
        """
        self._c_restarts.inc()
        worker.process.join(timeout=0)
        worker.requests.close()
        replacement = self._spawn_worker(worker.index)
        self._workers[self._workers.index(worker)] = replacement
        orphaned = [
            self._tasks[task_id]
            for task_id in worker.inflight
            if task_id in self._tasks
        ]
        worker.inflight.clear()
        for task in orphaned:
            task.attempts += 1
            if task.attempts >= _MAX_TASK_ATTEMPTS:
                self._tasks.pop(task.task_id, None)
                self._fail_job(
                    task.job,
                    RuntimeError(
                        f"service task for program {task.job.key!r} was "
                        f"retried {task.attempts} times after worker "
                        "deaths; giving up (does this input crash the "
                        "worker?)"
                    ),
                )
            else:
                self._dispatch(task)

    # ---------------------------------------------------------------- results
    def _dispatch_loop(self) -> None:
        while True:
            try:
                item = self._results.get(timeout=0.2)
            except (Empty, OSError, ValueError):
                if self._closed:
                    return
                with self._lock:
                    if self._tasks:
                        # Results went quiet with work outstanding: check for
                        # dead workers and re-dispatch their tasks.
                        for worker in list(self._workers):
                            if worker.inflight and not worker.process.is_alive():
                                self._respawn_worker(worker)
                self._flush_resolutions()
                continue
            if item is None:
                self._flush_resolutions()
                return
            with self._lock:
                self._handle_result(item)
            self._flush_resolutions()

    def _handle_result(self, item) -> None:
        """Process one worker report (lock held; resolutions are staged)."""
        worker_id, kind, task_id, payload, delta = item
        if delta is not None:
            # Piggybacked worker metrics: merged exactly once per message,
            # tagged with the reporting worker's id.
            self._metrics.merge(delta, extra_labels={"worker_id": str(worker_id)})
        task = self._tasks.get(task_id)
        # Clear the inflight slot by the *reported* worker: tasks of an
        # already-failed job are gone from the registry but their ids must
        # still leave the live worker's inflight set, or least-loaded
        # dispatch is skewed away from it forever.
        reporter = next(
            (worker for worker in self._workers if worker.index == worker_id), None
        )
        if reporter is not None:
            reporter.inflight.discard(task_id)
        if task is None or task.job.done:
            # Late result of a failed/cancelled job.
            self._tasks.pop(task_id, None)
            return
        if kind == "missing":
            # The worker lost the program (store drift, or a fresh process
            # after a crash): drop the stale mirror entry so the next
            # dispatch reinstalls, then retry the task.
            self._c_reinstalls.inc()
            if reporter is not None:
                reporter.store.pop(task.job.key, None)
            task.attempts += 1
            if task.attempts >= _MAX_TASK_ATTEMPTS:
                self._tasks.pop(task_id, None)
                self._fail_job(
                    task.job,
                    RuntimeError(
                        "service could not install program "
                        f"{task.job.key!r} after {task.attempts} "
                        "attempts (is it picklable?)"
                    ),
                )
                return
            self._dispatch(task)
            return
        self._tasks.pop(task_id, None)
        if kind == "error":
            name, detail = payload
            self._fail_job(
                task.job,
                RuntimeError(f"service worker failed: {name}\n{detail}"),
            )
            return
        self._complete_task(task, payload)

    def _flush_resolutions(self) -> None:
        """Resolve staged futures with no lock held.

        Done-callbacks therefore never block the service's bookkeeping —
        though they still run on the dispatcher (or submitting) thread, so
        they should stay cheap and must not wait on further service results.
        """
        with self._lock:
            if not self._resolutions:
                return
            pending, self._resolutions = self._resolutions, []
        for future, value, exception in pending:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(value)

    def _complete_task(self, task: _Task, payload) -> None:
        job = task.job
        if job.out is not None and payload is not None:
            job.out[:, task.start : task.stop] = payload
        job.pending.discard(task.task_id)
        if job.pending:
            return
        job.done = True
        if job.out_shm is not None:
            result = np.ndarray(
                (job.n_nodes, job.batch), dtype=np.int8, buffer=job.out_shm.buf
            ).copy()
        else:
            result = job.out
        if job.started_at is not None:
            self._metrics.histogram("service.job_s").observe(
                time.perf_counter() - job.started_at
            )
        self._job_closed(job)
        self._release_job_resources(job)
        self._job_slots.release()
        self._resolutions.append((job.future, result, None))

    def _fail_job(self, job: _Job, exception: BaseException) -> None:
        if job.done:
            return
        job.done = True
        for task_id in list(job.pending):
            self._tasks.pop(task_id, None)
        job.pending.clear()
        self._job_closed(job)
        self._release_job_resources(job)
        self._job_slots.release()
        self._resolutions.append((job.future, None, exception))

    def _job_closed(self, job: _Job) -> None:
        """Maintain the outstanding-jobs gauge (lock held)."""
        if job.counted:
            job.counted = False
            self._outstanding -= 1
            self._g_queue_depth.set(self._outstanding)

    @staticmethod
    def _release_job_resources(job: _Job) -> None:
        for block in (job.in_shm, job.out_shm):
            if block is not None:
                try:
                    block.close()
                    block.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        job.in_shm = None
        job.out_shm = None
        job.inputs = None
        job.out = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"EvaluationService(workers={stats.workers}, jobs={stats.jobs}, "
            f"installs={stats.installs}, closed={self._closed})"
        )
