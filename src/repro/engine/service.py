"""Persistent evaluation service: a resident worker pool with install-once programs.

The per-call pool in :mod:`repro.engine.scheduler` re-pays the dominant
costs of process-parallel evaluation on *every* batch: spawning the pool and
shipping the compiled program to each worker.  That shape is exactly wrong
for the amortization story of the paper — build a circuit once, answer many
queries against it — so this module keeps the workers *resident*:

* Each worker process owns a small LRU **program store**.  A compiled
  program is installed once per ``(structural_hash, backend)`` per worker
  and thereafter referenced by that key, so steady-state requests carry
  only input columns.
* Wide batches travel through ``multiprocessing.shared_memory`` blocks
  (one for the inputs, one the workers write their output columns into);
  small batches fall back to pickling chunks over the queues, which is
  cheaper than two block setups there.  ``EngineConfig.shared_memory_min_bytes``
  draws the line.
* :meth:`EvaluationService.submit` returns a :class:`concurrent.futures.Future`,
  so many independent jobs — different circuits, different batches — pipeline
  over one pool; ``map`` and :func:`as_completed` ride on top.
* Workers that die (OOM-killed, segfaulted, externally killed) are detected
  when results go quiet or at the next dispatch, respawned with an empty
  store, and their in-flight tasks are re-dispatched; a worker answering a
  request for a key it no longer holds (LRU eviction, or a fresh process
  after a crash) triggers a targeted reinstall rather than an error.
* ``close()`` (also via the context-manager protocol) drains outstanding
  jobs, stops every worker, and releases the queues and any shared-memory
  blocks; a closed service rejects new submissions with :class:`ServiceClosed`.

Failure handling forms a ladder rather than a single recovery path:

* **Retry with backoff.**  A task attempt lost to a worker death, a lost
  result message, or a shared-memory attach failure is re-dispatched after
  an exponential backoff (``service_retry_backoff_s`` doubling per attempt),
  up to ``service_task_attempts`` total attempts before the job fails.
* **Stall detection.**  Workers post heartbeats (``service_heartbeat_s``)
  carrying the task they are currently executing; a worker wedged inside one
  task for longer than ``service_stall_timeout_s`` is killed and respawned —
  death detection alone never notices a hung-but-alive process.  The same
  clock recovers *lost results*: a worker heartbeating as idle while the
  parent still counts a long-dispatched task against it gets that task
  re-dispatched (a duplicate execution writes identical bytes to disjoint
  columns, so late twins are harmless).
* **Per-job deadlines.**  ``submit(..., timeout=...)`` fails the job's
  future with :class:`~repro.engine.faults.DeadlineExceeded` once the
  deadline passes, whatever state its tasks are in.
* **Degradation, not collapse.**  Each worker slot may be respawned at most
  ``service_respawn_budget`` times; a slot over budget is retired, and when
  the last slot retires the service *degrades*: outstanding and future jobs
  run serially in-process (``stats().degraded``, ``service.degraded_jobs``)
  instead of hanging callers or failing the engine.

Every injection point of :class:`~repro.engine.faults.FaultPlan` targets one
rung of that ladder; ``tests/soak_harness.py`` runs the whole ladder under a
live plan and asserts the results still match serial evaluation bit for bit.

The service never changes results: every task is ``program.run`` over a
column range, which is columnwise independent, so outputs are bit-identical
to serial evaluation whatever the sharding, transport, interleaving, or
injected faults.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from queue import Empty
from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.diskcache import DiskArtifactStore, default_artifact_dir
from repro.engine.faults import DeadlineExceeded, FaultPlan, fault_plan_from_env
from repro.engine.scheduler import iter_column_chunks, run_serial
from repro.obs import MetricsRegistry, get_registry, set_registry

__all__ = [
    "EvaluationService",
    "ServiceClosed",
    "ServiceStats",
    "as_completed",
    "chain_future",
    "transform_executor",
]


class ServiceClosed(RuntimeError):
    """Raised when work is submitted to a service that has been closed."""


@dataclass(frozen=True)
class ServiceStats:
    """Counters describing service behaviour since construction.

    A *view* over the service's metrics registry: the same numbers are
    available as ``service.*`` counter series in telemetry snapshots.  The
    snapshot is taken atomically under the dispatcher lock, so the fields
    are mutually consistent (``shm_jobs <= jobs``, etc.) even while jobs are
    being submitted and completed concurrently.
    """

    workers: int
    jobs: int
    tasks: int
    installs: int
    reinstalls: int
    shm_jobs: int
    worker_restarts: int
    retries: int = 0
    stall_kills: int = 0
    deadline_failures: int = 0
    protocol_errors: int = 0
    shm_fallbacks: int = 0
    retired_workers: int = 0
    degraded_jobs: int = 0
    degraded: bool = False
    disk_skipped_installs: int = 0

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "tasks": self.tasks,
            "installs": self.installs,
            "reinstalls": self.reinstalls,
            "shm_jobs": self.shm_jobs,
            "worker_restarts": self.worker_restarts,
            "retries": self.retries,
            "stall_kills": self.stall_kills,
            "deadline_failures": self.deadline_failures,
            "protocol_errors": self.protocol_errors,
            "shm_fallbacks": self.shm_fallbacks,
            "retired_workers": self.retired_workers,
            "degraded_jobs": self.degraded_jobs,
            "degraded": self.degraded,
            "disk_skipped_installs": self.disk_skipped_installs,
        }


def chain_future(inner: Future, transform, executor=None) -> Future:
    """A future resolving to ``transform(inner.result())``.

    Errors propagate: an exception from ``inner`` (including cancellation)
    or from ``transform`` becomes the outer future's exception.  The
    transform runs on whatever thread completes ``inner`` (for service
    futures: the dispatcher), so it must be cheap — pass ``executor`` to run
    an expensive transform there instead of blocking the completing thread.
    """
    outer: Future = Future()
    outer.set_running_or_notify_cancel()

    def _apply(completed: Future) -> None:
        try:
            exception = completed.exception()
        except CancelledError as exc:
            outer.set_exception(exc)
            return
        if exception is not None:
            outer.set_exception(exception)
            return
        try:
            outer.set_result(transform(completed.result()))
        except BaseException as exc:
            outer.set_exception(exc)

    def _done(completed: Future) -> None:
        if executor is not None and not completed.cancelled():
            if completed.exception() is None:
                executor.submit(_apply, completed)
                return
        _apply(completed)

    inner.add_done_callback(_done)
    return outer


_TRANSFORM_EXECUTOR: Optional[ThreadPoolExecutor] = None
_TRANSFORM_LOCK = threading.Lock()


def transform_executor() -> ThreadPoolExecutor:
    """Shared single-thread executor for expensive future transforms.

    Driver-level decodes (e.g. reconstructing matmul products from node
    values, a Python-level pass over every output entry) run here so they
    never stall the service dispatcher thread that completes futures.
    """
    global _TRANSFORM_EXECUTOR
    with _TRANSFORM_LOCK:
        if _TRANSFORM_EXECUTOR is None:
            _TRANSFORM_EXECUTOR = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="service-transform"
            )
        return _TRANSFORM_EXECUTOR


# ----------------------------------------------------------------- worker side
class _ShmAttachError(RuntimeError):
    """A shared-memory attach failed (segment gone, or an injected fault).

    Reported to the parent as a ``shm_error`` rather than a plain ``error``:
    the *task* is retryable — and after repeated attach failures the parent
    falls the whole job back to pickle transport — whereas a plain error
    fails the job.
    """


class _WorkerFaultState:
    """Worker-process-local application of a :class:`FaultPlan`.

    Tracks this process's executed-task ordinal (1-based; tasks whose
    program is missing don't count, matching the executed-tasks telemetry)
    and the remaining budget of the count-limited faults.  Lives only in
    test/soak worker processes — production workers carry ``None``.
    """

    __slots__ = ("plan", "registry", "executed", "installs_seen", "shm_failures_left")

    def __init__(self, plan: FaultPlan, registry) -> None:
        self.plan = plan
        self.registry = registry
        self.executed = 0
        self.installs_seen = 0
        self.shm_failures_left = plan.shm_attach_failures

    def _hit(self, kind: str) -> None:
        if self.registry is not None:
            self.registry.counter("faults.injected", kind=kind).inc()

    def drop_install(self) -> bool:
        self.installs_seen += 1
        if self.installs_seen <= self.plan.install_failures:
            self._hit("install")
            return True
        return False

    def begin_task(self) -> None:
        """Advance the executed ordinal and fire kill-before / stall faults."""
        self.executed += 1
        if self.plan.kill_before_task == self.executed:
            self._hit("kill_before")
            os._exit(3)
        if self.plan.stall_task == self.executed:
            self._hit("stall")
            time.sleep(self.plan.stall_seconds)

    def kill_after(self) -> None:
        if self.plan.kill_after_task == self.executed:
            self._hit("kill_after")
            os._exit(3)

    def take_shm_failure(self) -> bool:
        if self.shm_failures_left > 0:
            self.shm_failures_left -= 1
            self._hit("shm_attach")
            return True
        return False

    def drop_result(self) -> bool:
        if self.executed in self.plan.drop_result_tasks:
            self._hit("drop_result")
            return True
        return False

    def corrupt_result(self) -> bool:
        if self.executed in self.plan.corrupt_result_tasks:
            self._hit("corrupt_result")
            return True
        return False

    def delay_result(self) -> None:
        if self.plan.delay_result_s > 0:
            time.sleep(self.plan.delay_result_s)


def _attach_block(name: str, fault_state: Optional[_WorkerFaultState] = None) -> SharedMemory:
    """Attach to a parent-owned shared-memory block without claiming it.

    On Python < 3.13 attaching registers the segment with the resource
    tracker as if this process owned it, which makes worker exits unlink (or
    warn about) blocks the parent still manages; unregister defensively.
    """
    if fault_state is not None and fault_state.take_shm_failure():
        raise _ShmAttachError(f"injected shared-memory attach failure for {name!r}")
    try:
        block = SharedMemory(name=name)
    except FileNotFoundError as exc:
        # The parent unlinked the block (job failed elsewhere, or fell back
        # to pickle transport mid-flight): retryable, not a job failure.
        raise _ShmAttachError(f"shared-memory block {name!r} is gone") from exc
    try:  # pragma: no cover - depends on interpreter version details
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:
        pass
    return block


def _execute_task(
    program, payload, fault_state: Optional[_WorkerFaultState] = None
) -> Optional[np.ndarray]:
    """Run one task payload; returns the chunk for pickle transport, else None."""
    kind = payload[0]
    if kind == "pickle":
        return program.run(payload[1])
    # ("shm", in_name, in_shape, in_dtype, out_name, out_shape, start, stop)
    _, in_name, in_shape, in_dtype, out_name, out_shape, start, stop = payload
    in_block = None
    out_block = None
    try:
        # Attach inside the try: if the parent unlinked the job's blocks
        # between the two attaches (sibling task failed the job), the first
        # mapping must still be closed — a leaked mapping in a resident
        # worker pins the freed segment's memory for the worker's lifetime.
        in_block = _attach_block(in_name, fault_state)
        out_block = _attach_block(out_name, fault_state)
        inputs = np.ndarray(in_shape, dtype=np.dtype(in_dtype), buffer=in_block.buf)
        outputs = np.ndarray(out_shape, dtype=np.int8, buffer=out_block.buf)
        outputs[:, start:stop] = program.run(inputs[:, start:stop])
        # Views into the buffers must be gone before close() or the memoryview
        # export check raises BufferError.
        del inputs, outputs
    finally:
        if in_block is not None:
            in_block.close()
        if out_block is not None:
            out_block.close()
    return None


def _discard_queue(queue) -> None:
    """Tear down a queue whose reader may be gone, without risking a hang.

    ``Queue.close()`` alone leaves the feeder thread obligated to flush
    buffered items into the pipe; if the consumer died (killed worker, timed
    out dispatcher) that flush never completes and interpreter exit blocks on
    ``join_thread``.  Cancelling first says the buffered data may be dropped —
    by teardown time nobody will read it anyway.
    """
    try:
        queue.cancel_join_thread()
        queue.close()
    except (ValueError, OSError):  # pragma: no cover - already closed
        pass


def _payload_bytes(payload) -> int:
    """Transport bytes one task moves (inputs read plus outputs written)."""
    if payload[0] == "pickle":
        return int(payload[1].nbytes) * 2  # chunk over the pipe, result back
    # ("shm", in_name, in_shape, in_dtype, out_name, out_shape, start, stop)
    _, _, in_shape, in_dtype, _, out_shape, start, stop = payload
    width = stop - start
    in_bytes = in_shape[0] * width * np.dtype(in_dtype).itemsize
    out_bytes = out_shape[0] * width  # int8 output columns written in place
    return int(in_bytes + out_bytes)


def _drain_delta(registry: Optional[MetricsRegistry]) -> Optional[dict]:
    """This worker's metric delta since the last report (None when disabled)."""
    if registry is None:
        return None
    delta = registry.drain()
    if delta["counters"] or delta["gauges"] or delta["histograms"]:
        return delta
    return None


def _service_worker_main(
    worker_id,
    requests,
    results,
    store_capacity,
    telemetry=False,
    heartbeat_s=0.0,
    fault_plan=None,
    artifact_dir=None,
) -> None:
    """Loop of one resident worker: install programs, run tasks, report back.

    The local program store is a twin of the parent-side mirror: both evict
    LRU-first at ``store_capacity`` and both refresh recency on installs and
    runs, and since messages arrive in the order the parent dispatched them
    the two stay in lockstep.  A run for a key the store no longer holds
    (mirror drift, or a fresh process after a crash) is answered with a
    ``missing`` report so the parent reinstalls and re-dispatches.

    With ``heartbeat_s > 0`` a daemon thread posts
    ``(worker_id, "heartbeat", pid, current_task_id, None)`` at that
    interval; the pid lets the parent discard stale beats queued by a dead
    predecessor of the same slot, and the current task id is what makes a
    wedged-inside-a-task worker distinguishable from a merely busy one.

    With ``telemetry`` on, the worker keeps its own lightweight registry
    (installs, store evictions, task latency, queue wait, transport bytes)
    and piggybacks the drained delta on every result message; the parent
    merges deltas tagged with this worker's id.  A delta rides exactly one
    message, so parent-side aggregates are monotone and a killed worker
    loses at most the few observations since its last report.

    ``fault_plan`` (tests/soak only) threads a :class:`FaultPlan` through
    the loop via :class:`_WorkerFaultState`; production workers receive None
    and pay a single ``is None`` check per message.

    ``artifact_dir`` enables warm-starting: a run for a key the store does
    not hold first probes the disk artifact store and restores the program
    (memory-mapped, checksum-verified) instead of reporting ``missing`` —
    so a fresh or respawned worker installs nothing the host has compiled
    before, and the parent never re-ships those programs over the queue.
    """
    registry = MetricsRegistry() if telemetry else None
    if registry is not None:
        # Fresh registry for this process (the forked copy of the parent's
        # would re-report parent totals); debug-mode backend spans land here.
        set_registry(registry)
    faults = _WorkerFaultState(fault_plan, registry) if fault_plan is not None else None
    artifacts = None
    if artifact_dir:
        try:
            # No tmp sweep here: every worker constructing a store at spawn
            # would race the sweep against live parent-side writers.
            artifacts = DiskArtifactStore(artifact_dir, sweep=False)
        except OSError:  # pragma: no cover - unwritable dir: degrade to installs
            artifacts = None
    store: "OrderedDict[object, object]" = OrderedDict()
    current = [None]  # task id being executed, shared with the heartbeat thread
    stop_beating = threading.Event()
    if heartbeat_s > 0:
        pid = os.getpid()

        def _beat() -> None:
            while not stop_beating.wait(heartbeat_s):
                try:
                    results.put((worker_id, "heartbeat", pid, current[0], None))
                except Exception:  # pragma: no cover - queue torn down at exit
                    return

        threading.Thread(target=_beat, name="service-heartbeat", daemon=True).start()
    while True:
        message = requests.get()
        kind = message[0]
        if kind == "stop":
            stop_beating.set()
            break
        if kind == "install":
            _, key, program = message
            if faults is not None and faults.drop_install():
                continue
            store[key] = program
            store.move_to_end(key)
            if registry is not None:
                registry.counter("worker.installs").inc()
            while len(store) > store_capacity:
                store.popitem(last=False)
                if registry is not None:
                    registry.counter("worker.store_evictions").inc()
            continue
        # ("run", task_id, key, payload, dispatched_at)
        _, task_id, key, payload, dispatched_at = message
        program = store.get(key)
        if (
            program is None
            and artifacts is not None
            and isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], str)
            and isinstance(key[1], str)
        ):
            # Warm start: the parent skipped the install because the
            # program is on disk; restore it here (or after a respawn,
            # where the fresh process holds nothing the disk does not).
            program = artifacts.get(key[0], key[1])
            if program is not None:
                store[key] = program
                if registry is not None:
                    registry.counter("worker.disk_restores").inc()
                while len(store) > store_capacity:
                    store.popitem(last=False)
                    if registry is not None:
                        registry.counter("worker.store_evictions").inc()
        if program is None:
            results.put(
                (worker_id, "missing", task_id, None, _drain_delta(registry))
            )
            continue
        store.move_to_end(key)
        current[0] = task_id
        try:
            if faults is not None:
                faults.begin_task()
            if registry is not None:
                if dispatched_at is not None:
                    # Wall clock, not perf_counter: the dispatch stamp was
                    # taken in another process (same host, same clock).
                    registry.histogram("worker.queue_wait_s").observe(
                        max(0.0, time.time() - dispatched_at)  # statics: ignore[REP004]
                    )
                registry.counter("worker.tasks").inc()
                registry.counter(
                    "worker.shm_bytes" if payload[0] == "shm" else "worker.pickle_bytes"
                ).inc(_payload_bytes(payload))
                start = time.perf_counter()
                chunk = _execute_task(program, payload, faults)
                registry.histogram("worker.task_s").observe(
                    time.perf_counter() - start
                )
            else:
                chunk = _execute_task(program, payload, faults)
            if faults is not None:
                faults.kill_after()
                faults.delay_result()
                if faults.drop_result():
                    continue
                if faults.corrupt_result():
                    results.put(("corrupt-message",))
                    continue
            results.put((worker_id, "done", task_id, chunk, _drain_delta(registry)))
        except _ShmAttachError as exc:
            results.put(
                (worker_id, "shm_error", task_id, repr(exc), _drain_delta(registry))
            )
        except BaseException as exc:
            detail = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
            results.put(
                (
                    worker_id,
                    "error",
                    task_id,
                    (repr(exc), detail),
                    _drain_delta(registry),
                )
            )
        finally:
            current[0] = None


# ----------------------------------------------------------------- parent side
class _Worker:
    """Parent-side handle of one resident worker process."""

    __slots__ = (
        "index",
        "process",
        "requests",
        "store",
        "force_install",
        "inflight",
        "last_beat_at",
        "running",
    )

    def __init__(self, index, process, requests) -> None:
        self.index = index
        self.process = process
        self.requests = requests
        #: Mirror of the worker's LRU program store (keys only).
        self.store: "OrderedDict[object, bool]" = OrderedDict()
        #: Keys whose next install must ride the queue even though the
        #: artifact store claims to hold them: this worker reported
        #: ``missing`` after a skipped install, so its disk restore failed
        #: (pruned or corrupt artifact) and skipping again would loop.
        self.force_install: set = set()
        #: Task ids currently dispatched to this worker.
        self.inflight: set = set()
        #: Monotonic stamp of the last heartbeat whose pid matched this
        #: process (None before the first beat, or with heartbeats off).
        self.last_beat_at: Optional[float] = None
        #: ``(task_id, first_seen_at)`` the worker last reported executing —
        #: ``first_seen_at`` is the parent-side stamp of the first beat
        #: naming that task, the clock stall detection runs against.
        self.running: Optional[tuple] = None


#: Default bound on attempts per task (see
#: ``EngineConfig.service_task_attempts``, which overrides it), counting
#: missing-program reports (e.g. a program that cannot be pickled into the
#: worker, which only surfaces asynchronously in the queue's feeder thread),
#: re-dispatches after worker deaths, lost results, and shm attach failures:
#: a task that deterministically kills its worker (OOM, native segfault)
#: must fail the job instead of respawning forever.
_MAX_TASK_ATTEMPTS = 5


class _Task:
    # No back-reference to the dispatched worker: result handling must
    # attribute reports to the *reporting* worker id (a task may have been
    # re-dispatched meanwhile), and a stored handle would pin dead _Worker
    # objects alive for the task's lifetime.  ``last_worker`` is the bare
    # index, kept so a retry prefers a *different* worker (a task whose
    # worker wedges would otherwise chase the same injected stall forever).
    __slots__ = ("task_id", "job", "start", "stop", "attempts", "dispatched_at", "last_worker")

    def __init__(self, task_id, job, start, stop) -> None:
        self.task_id = task_id
        self.job = job
        self.start = start
        self.stop = stop
        self.attempts = 0
        self.dispatched_at: Optional[float] = None
        self.last_worker: Optional[int] = None


class _Job:
    """One submitted batch: a future plus the state to assemble its result."""

    __slots__ = (
        "future",
        "program",
        "key",
        "inputs",
        "in_shape",
        "in_dtype",
        "n_nodes",
        "batch",
        "pending",
        "out",
        "in_shm",
        "out_shm",
        "done",
        "started_at",
        "counted",
        "deadline",
        "degraded",
    )

    def __init__(self, future, program, key, inputs, n_nodes, batch) -> None:
        self.future = future
        self.program = program
        self.key = key
        self.inputs = inputs  # retained for pickle-mode (re-)dispatch; None for shm
        self.in_shape = inputs.shape
        self.in_dtype = str(inputs.dtype)
        self.n_nodes = n_nodes
        self.batch = batch
        self.pending: set = set()
        self.out: Optional[np.ndarray] = None  # pickle-mode assembly buffer
        self.in_shm: Optional[SharedMemory] = None
        self.out_shm: Optional[SharedMemory] = None
        self.done = False
        self.started_at: Optional[float] = None  # submit stamp (telemetry only)
        self.counted = False  # included in the outstanding-jobs gauge
        self.deadline: Optional[float] = None  # monotonic; None = no deadline
        self.degraded = False  # any part ran via in-process serial fallback


class EvaluationService:
    """A resident pool evaluating compiled programs with install-once keys.

    Parameters
    ----------
    config:
        The engine configuration supplying every knob the service honors:
        ``max_workers`` (pool width; values < 2 still run one resident
        worker), ``chunk_size`` / column sharding, ``shared_memory_min_bytes``
        (transport cutover), ``service_queue_depth`` (bound on outstanding
        jobs; further ``submit`` calls block) and ``service_store_size``
        (per-worker LRU program-store capacity).
    context:
        Optional ``multiprocessing`` context; defaults to the platform
        default (fork on Linux, matching the per-call scheduler pool).
    registry:
        Optional metrics registry the service records into.  By default the
        process-global registry is used when telemetry is enabled; when it is
        not, the service keeps a private always-on registry so
        :meth:`stats` works regardless (its handful of counter updates per
        job cost the same as the plain ints they replaced).  Worker-side
        telemetry (per-task latency, queue wait, transport bytes, piggyback
        deltas) only activates when process-global telemetry is on at
        service construction.
    """

    def __init__(
        self, config: Optional[EngineConfig] = None, *, context=None, registry=None
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self._ctx = context if context is not None else get_context()
        self._lock = threading.RLock()
        self._results = self._ctx.Queue()
        self._task_ids = itertools.count()
        self._tasks: Dict[int, _Task] = {}
        # Future resolutions staged under the lock, applied outside it: a
        # future's done-callbacks (chain_future transforms, user callbacks)
        # must never run while the service lock is held.
        self._resolutions: List[tuple] = []
        self._job_slots = threading.BoundedSemaphore(self.config.service_queue_depth)
        self._auto_keys: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._anon_ids = itertools.count()
        self._closing = False
        self._closed = False
        # Hardening state: scheduled retries (min-heap on due time), jobs
        # carrying deadlines, per-slot respawn counts, the serial backlog
        # degraded mode drains, and the fault plan (config first, then the
        # REPRO_FAULTS test hook).
        self._fault_plan: Optional[FaultPlan] = (
            self.config.fault_plan
            if self.config.fault_plan is not None
            else fault_plan_from_env()
        )
        # Warm-start state: the artifact directory workers restore from
        # (None disables the whole path), a parent-side store handle for
        # contains() probes, and a memo of keys known to be on disk so the
        # hot dispatch path does not stat() per job.
        self._artifact_dir: Optional[str] = (
            (self.config.artifact_dir or default_artifact_dir())
            if self.config.artifact_cache
            else None
        )
        self._artifacts: Optional[DiskArtifactStore] = (
            DiskArtifactStore(
                self._artifact_dir, max_bytes=self.config.artifact_max_bytes
            )
            if self._artifact_dir is not None
            else None
        )
        self._disk_resident: Set[object] = set()
        self._max_attempts = self.config.service_task_attempts
        self._retry_backoff_s = self.config.service_retry_backoff_s
        self._respawn_budget = self.config.service_respawn_budget
        self._heartbeat_s = self.config.service_heartbeat_s
        self._stall_timeout_s = self.config.service_stall_timeout_s
        self._retries: List[tuple] = []
        self._retry_seq = itertools.count()
        self._serial_backlog: List[_Task] = []
        self._deadline_jobs: Set[_Job] = set()
        self._slot_respawns: Dict[int, int] = {}
        self._degraded = False
        self._dispatch_count = 0
        self._next_tick = 0.0
        self._tick_interval = min(0.2, self._heartbeat_s) if self._heartbeat_s > 0 else 0.2
        global_registry = get_registry()
        if registry is not None:
            self._metrics = registry
        elif global_registry.enabled:
            self._metrics = global_registry
        else:
            self._metrics = MetricsRegistry()
        #: Whether workers carry registries and piggyback deltas (decided at
        #: construction — worker processes are spawned with this flag).
        self._telemetry = bool(getattr(self._metrics, "enabled", False)) and (
            registry is not None or global_registry.enabled
        )
        metrics = self._metrics
        self._c_jobs = metrics.counter("service.jobs")
        self._c_tasks = metrics.counter("service.tasks")
        self._c_installs = metrics.counter("service.installs")
        self._c_reinstalls = metrics.counter("service.reinstalls")
        self._c_disk_skipped = metrics.counter("service.disk_skipped_installs")
        self._c_shm_jobs = metrics.counter("service.shm_jobs")
        self._c_restarts = metrics.counter("service.worker_restarts")
        self._c_shm_bytes = metrics.counter("service.shm_bytes")
        self._c_pickle_bytes = metrics.counter("service.pickle_bytes")
        self._c_retries = metrics.counter("service.retries")
        self._c_stall_kills = metrics.counter("service.stall_kills")
        self._c_deadline_failures = metrics.counter("service.deadline_failures")
        self._c_protocol_errors = metrics.counter("service.protocol_errors")
        self._c_shm_fallbacks = metrics.counter("service.shm_fallbacks")
        self._c_retired = metrics.counter("service.retired_workers")
        self._c_degraded_jobs = metrics.counter("service.degraded_jobs")
        self._g_degraded = metrics.gauge("service.degraded")
        self._g_queue_depth = metrics.gauge("service.queue_depth")
        self._g_workers = metrics.gauge("service.workers")
        self._outstanding = 0
        n_workers = max(1, self.config.max_workers)
        self._workers: List[_Worker] = [
            self._spawn_worker(index) for index in range(n_workers)
        ]
        self._g_workers.set(n_workers)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="evaluation-service-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------- lifecycle
    def _spawn_worker(self, index: int) -> _Worker:
        requests = self._ctx.Queue()
        plan = self._fault_plan
        process = self._ctx.Process(
            target=_service_worker_main,
            args=(
                index,
                requests,
                self._results,
                self.config.service_store_size,
                self._telemetry,
                self._heartbeat_s,
                plan if plan is not None and plan.applies_to(index) else None,
                self._artifact_dir,
            ),
            name=f"evaluation-service-worker-{index}",
            daemon=True,
        )
        process.start()
        return _Worker(index, process, requests)

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work, stop every worker, release all resources.

        ``wait=True`` (default) drains outstanding jobs first; ``wait=False``
        fails their futures immediately.  Either way every in-flight future
        resolves — jobs the drain window didn't cover fail with a
        :class:`ServiceClosed` cause — and ``timeout`` bounds the *whole*
        shutdown (drain + dispatcher join + worker joins), not each step: a
        wedged worker is terminated, then killed, rather than waited on
        indefinitely.  Idempotent.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            if self._closed:
                return
            self._closing = True
            outstanding = list(
                {task.job for task in self._tasks.values() if not task.job.done}
            )
        if wait:
            for job in outstanding:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    job.future.exception(timeout=remaining)
                except Exception:
                    pass
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task in list(self._tasks.values()):
                self._fail_job(
                    task.job,
                    ServiceClosed("service closed with the job still in flight"),
                )
            self._tasks.clear()
            self._retries.clear()
            self._serial_backlog.clear()
            self._deadline_jobs.clear()
            workers = list(self._workers)
        self._flush_resolutions()
        for worker in workers:
            try:
                worker.requests.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        self._results.put(None)  # wake + stop the dispatcher
        self._dispatcher.join(timeout=max(0.1, deadline - time.monotonic()))
        for worker in workers:
            # First a bounded cooperative join, then force: a worker wedged
            # inside a task (or with a full request queue) must not turn
            # close() into an indefinite hang.
            worker.process.join(timeout=max(0.0, min(1.0, deadline - time.monotonic())))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=0.5)
            if worker.process.is_alive():  # pragma: no cover - ignores SIGTERM
                worker.process.kill()
                worker.process.join(timeout=1.0)
            _discard_queue(worker.requests)
        # The dispatcher (daemon) may still be mid-loop if the join above
        # timed out; discarding rather than flushing the results queue keeps
        # interpreter exit from waiting on its feeder thread.
        _discard_queue(self._results)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self):
        """The registry backing this service's counters (see repro.obs)."""
        return self._metrics

    def stats(self) -> ServiceStats:
        """Atomic snapshot of the service counters (a view over the registry).

        Taken under the dispatcher lock — the same lock every counter update
        is performed under — so the fields cannot tear against a concurrent
        ``submit`` (e.g. ``jobs`` incremented but ``shm_jobs`` not yet).
        """
        with self._lock:
            return ServiceStats(
                workers=len(self._workers),
                jobs=self._c_jobs.value,
                tasks=self._c_tasks.value,
                installs=self._c_installs.value,
                reinstalls=self._c_reinstalls.value,
                shm_jobs=self._c_shm_jobs.value,
                worker_restarts=self._c_restarts.value,
                retries=self._c_retries.value,
                stall_kills=self._c_stall_kills.value,
                deadline_failures=self._c_deadline_failures.value,
                protocol_errors=self._c_protocol_errors.value,
                shm_fallbacks=self._c_shm_fallbacks.value,
                retired_workers=self._c_retired.value,
                degraded_jobs=self._c_degraded_jobs.value,
                degraded=self._degraded,
                disk_skipped_installs=self._c_disk_skipped.value,
            )

    # ------------------------------------------------------------ submission
    def _key_for(self, program) -> object:
        """A stable per-program key when the caller did not supply one.

        Held weakly: the key dies with the program object, so id-style reuse
        cannot alias two different programs.
        """
        try:
            key = self._auto_keys.get(program)
            if key is None:
                key = ("anon", next(self._anon_ids))
                self._auto_keys[program] = key
            return key
        except TypeError:  # unweakrefable program object
            return ("anon", next(self._anon_ids))

    def submit(
        self, program, inputs, *, key=None, chunk_size=None, timeout=None
    ) -> Future:
        """Schedule one batched evaluation; returns a future of node values.

        ``inputs`` is a ``(n_inputs, batch)`` block (a 1-D vector is promoted
        to one column; the result keeps the 2-D ``(n_nodes, batch)`` shape).
        ``key`` identifies the program across calls — the engine passes
        ``(structural_hash, backend)`` — so repeated submissions reuse the
        per-worker installs; omitted keys are derived per program object.
        Blocks while ``service_queue_depth`` jobs are already outstanding.

        ``timeout`` (seconds) is a per-job deadline: once it passes, the
        future fails with :class:`~repro.engine.faults.DeadlineExceeded`
        whatever state the job's tasks are in — retries, a wedged worker, or
        degraded serial execution never turn into an unbounded wait.

        Jobs are split into column tasks of ``chunk_size`` (default: the
        config's) — and *not* narrowed to the worker count: a pipelined
        query stream already keeps every worker busy with whole jobs, and
        sparse evaluation cost is largely per-chunk, so finer within-job
        sharding buys latency only when the pool is otherwise idle.  The
        engine passes its scheduler-narrowed width for blocking calls.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs[:, None]
        if inputs.ndim != 2:
            raise ValueError(f"inputs must be 1-D or 2-D, got shape {inputs.shape}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0 or None, got {timeout}")
        if self._closing or self._closed:
            raise ServiceClosed("cannot submit to a closed service")
        future: Future = Future()
        future.set_running_or_notify_cancel()
        batch = inputs.shape[1]
        if batch == 0:
            future.set_result(np.empty((program.n_nodes, 0), dtype=np.int8))
            return future
        if key is None:
            with self._lock:
                key = self._key_for(program)

        if chunk_size is None:
            chunk_size = self.config.chunk_size
        deadline = time.monotonic() + timeout if timeout is not None else None
        if self._degraded:
            return self._submit_degraded(future, program, inputs, chunk_size, deadline)
        ranges = list(iter_column_chunks(batch, chunk_size))
        self._job_slots.acquire()
        job = _Job(future, program, key, inputs, program.n_nodes, batch)
        job.deadline = deadline
        try:
            use_shm = inputs.nbytes >= self.config.shared_memory_min_bytes
            if use_shm:
                try:
                    self._setup_shared_memory(job, inputs)
                except (OSError, ValueError):  # no /dev/shm or exhausted space
                    use_shm = False
            if not use_shm:
                job.out = np.empty((job.n_nodes, batch), dtype=np.int8)
            with self._lock:
                if self._closing or self._closed:
                    raise ServiceClosed("cannot submit to a closed service")
                self._c_jobs.inc()
                if job.in_shm is not None:
                    self._c_shm_jobs.inc()
                    self._c_shm_bytes.inc(
                        int(inputs.nbytes) + job.n_nodes * batch
                    )
                else:
                    self._c_pickle_bytes.inc(int(inputs.nbytes))
                if self._telemetry:
                    job.started_at = time.perf_counter()
                job.counted = True
                self._outstanding += 1
                self._g_queue_depth.set(self._outstanding)
                if job.deadline is not None:
                    self._deadline_jobs.add(job)
                for start, stop in ranges:
                    task = _Task(next(self._task_ids), job, start, stop)
                    job.pending.add(task.task_id)
                    self._tasks[task.task_id] = task
                    self._dispatch(task)
        except BaseException as exc:
            with self._lock:
                if not job.done:
                    self._fail_job(
                        job,
                        exc if isinstance(exc, Exception) else RuntimeError(repr(exc)),
                    )
            self._flush_resolutions()
            raise
        # Dispatching may have respawned a dead worker and failed another
        # job's over-retried tasks; resolve those futures lock-free too.
        self._flush_resolutions()
        return future

    def _submit_degraded(self, future, program, inputs, chunk_size, deadline) -> Future:
        """Serial in-process fallback once the pool is gone (degraded mode).

        Runs on the submitting thread — by the time the service degrades
        there is no pool left to pipeline over, so inline execution loses
        nothing and keeps the futures API intact for callers.
        """
        with self._lock:
            self._c_jobs.inc()
            self._c_degraded_jobs.inc()
        try:
            result = run_serial(
                program, inputs, chunk_size=chunk_size, deadline=deadline
            )
        except BaseException as exc:
            if isinstance(exc, DeadlineExceeded):
                self._c_deadline_failures.inc()
            future.set_exception(
                exc if isinstance(exc, Exception) else RuntimeError(repr(exc))
            )
        else:
            future.set_result(result)
        return future

    def evaluate(
        self, program, inputs, *, key=None, chunk_size=None, timeout=None
    ) -> np.ndarray:
        """Blocking :meth:`submit`: the ``(n_nodes, batch)`` node values."""
        return self.submit(
            program, inputs, key=key, chunk_size=chunk_size, timeout=timeout
        ).result()

    def map(
        self, program, batches: Iterable, *, key=None, chunk_size=None
    ) -> Iterator[np.ndarray]:
        """Submit many batches of one program; yield results in order."""
        futures = [
            self.submit(program, batch, key=key, chunk_size=chunk_size)
            for batch in batches
        ]
        for future in futures:
            yield future.result()

    def _setup_shared_memory(self, job: _Job, inputs: np.ndarray) -> None:
        in_shm = SharedMemory(create=True, size=max(1, inputs.nbytes))
        try:
            out_shm = SharedMemory(create=True, size=max(1, job.n_nodes * job.batch))
        except BaseException:
            in_shm.close()
            in_shm.unlink()
            raise
        staged = np.ndarray(inputs.shape, dtype=inputs.dtype, buffer=in_shm.buf)
        staged[:] = inputs
        del staged
        job.in_shm = in_shm
        job.out_shm = out_shm
        # The block now owns the data; dispatch only needs shape and dtype.
        job.inputs = None

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, task: _Task) -> None:
        """Send one task to the least-loaded live worker (lock held).

        With no live workers left (every slot retired) the task goes to the
        serial backlog the dispatcher drains in-process instead.  Retries
        prefer a worker other than the one that last held the task, so a
        task whose worker wedges or loses results isn't re-dispatched into
        the same failure.
        """
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self._respawn_worker(worker)
        if task.job.done or task.task_id not in self._tasks:
            # The respawn sweep can fail this very task's job (a sibling
            # orphan exhausting its attempts releases the job's buffers).
            return
        if not self._workers:
            self._serial_backlog.append(task)
            return
        worker = min(
            self._workers,
            key=lambda w: (len(w.inflight), w.index == task.last_worker, w.index),
        )
        self._install_if_needed(worker, task.job)
        worker.inflight.add(task.task_id)
        self._c_tasks.inc()
        task.dispatched_at = time.monotonic()
        task.last_worker = worker.index
        self._dispatch_count += 1
        plan = self._fault_plan
        if plan is not None and self._dispatch_count in plan.drop_dispatch_tasks:
            # Injected dispatch loss: all the bookkeeping, no request — the
            # lost-result clock must notice and re-dispatch.
            return
        worker.requests.put(
            (
                "run",
                task.task_id,
                task.job.key,
                self._payload_for(task),
                time.time() if self._telemetry else None,
            )
        )

    def _retry_later(self, task: _Task) -> None:
        """Schedule a re-dispatch after exponential backoff (lock held)."""
        self._c_retries.inc()
        delay = self._retry_backoff_s * (2 ** max(0, task.attempts - 1))
        heapq.heappush(
            self._retries, (time.monotonic() + delay, next(self._retry_seq), task)
        )

    def _task_attempt_failed(self, task: _Task, reason: str) -> None:
        """Count one lost attempt; retry with backoff or fail the job (lock held)."""
        task.attempts += 1
        if task.attempts >= self._max_attempts:
            self._tasks.pop(task.task_id, None)
            self._fail_job(
                task.job,
                RuntimeError(
                    f"service task for program {task.job.key!r} was "
                    f"retried {task.attempts} times after {reason}; "
                    "giving up (does this input crash the worker?)"
                ),
            )
            return
        self._retry_later(task)

    def _payload_for(self, task: _Task) -> tuple:
        job = task.job
        if job.in_shm is not None:
            return (
                "shm",
                job.in_shm.name,
                job.in_shape,
                job.in_dtype,
                job.out_shm.name,
                (job.n_nodes, job.batch),
                task.start,
                task.stop,
            )
        return ("pickle", job.inputs[:, task.start : task.stop])

    def _artifact_resident(self, key) -> bool:
        """Whether the artifact store holds this key (memoized positives).

        Only ``(structural_hash, backend)`` string keys are disk-cacheable;
        anonymous per-program keys always install over the queue.
        """
        if self._artifacts is None or not (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], str)
            and isinstance(key[1], str)
        ):
            return False
        if key in self._disk_resident:
            return True
        if self._artifacts.contains(key[0], key[1]):
            self._disk_resident.add(key)
            return True
        return False

    def _install_if_needed(self, worker: _Worker, job: _Job) -> None:
        """Mirror-checked install: ship the program once per worker per key.

        With the artifact cache on, a key the disk store holds skips the
        queue install entirely — the worker restores it on first use (and
        a respawned worker re-restores without the parent doing anything).
        A worker whose restore failed reports ``missing``, which marks the
        key for a forced queue install here (see ``_Worker.force_install``).
        """
        if job.key not in worker.store:
            if (
                job.key not in worker.force_install
                and self._artifact_resident(job.key)
            ):
                self._c_disk_skipped.inc()
            else:
                worker.requests.put(("install", job.key, job.program))
                worker.force_install.discard(job.key)
                self._c_installs.inc()
        worker.store[job.key] = True
        worker.store.move_to_end(job.key)
        while len(worker.store) > self.config.service_store_size:
            worker.store.popitem(last=False)

    def _respawn_worker(self, worker: _Worker) -> None:
        """Replace a dead worker — or retire its slot — and retry its tasks.

        Re-dispatches count against the task's attempt budget so a task that
        deterministically kills its worker (OOM, native crash) fails its job
        after ``service_task_attempts`` instead of respawning forever.  Each
        slot may only be respawned ``service_respawn_budget`` times; a slot
        over budget is retired, and retiring the last slot flips the service
        into degraded (in-process serial) mode.
        """
        worker.process.join(timeout=0)
        _discard_queue(worker.requests)
        orphaned = [
            self._tasks[task_id]
            for task_id in worker.inflight
            if task_id in self._tasks
        ]
        worker.inflight.clear()
        slot = self._workers.index(worker)
        if self._closing or self._closed:
            # Shutdown in progress: never spawn into a closing service, and
            # close() will fail the orphans' jobs itself.
            self._workers.pop(slot)
            self._g_workers.set(len(self._workers))
            return
        respawns = self._slot_respawns.get(worker.index, 0) + 1
        self._slot_respawns[worker.index] = respawns
        if respawns > self._respawn_budget:
            self._workers.pop(slot)
            self._c_retired.inc()
            self._g_workers.set(len(self._workers))
            if not self._workers:
                self._enter_degraded()
        else:
            self._c_restarts.inc()
            self._workers[slot] = self._spawn_worker(worker.index)
        for task in orphaned:
            if self._degraded:
                # _enter_degraded already moved every live task (these
                # included) onto the serial backlog.
                break
            self._task_attempt_failed(task, "worker deaths")

    # ------------------------------------------------------------ degradation
    def _enter_degraded(self) -> None:
        """Flip to in-process serial execution (lock held).

        Called when the last worker slot is retired: every live task moves
        onto the serial backlog (ordered by task id, so columns of one job
        complete in order) and the dispatcher thread drains it; future
        submissions run inline.  The service stays *correct* — same
        programs, same column ranges, bit-identical outputs — it just stops
        being parallel.
        """
        if self._degraded:
            return
        self._degraded = True
        self._g_degraded.set(1)
        # Pending retries would re-dispatch into an empty pool; fold them in.
        backlogged = {task.task_id for task in self._serial_backlog}
        for _, _, task in self._retries:
            backlogged.add(task.task_id)
            self._serial_backlog.append(task)
        self._retries.clear()
        for task in sorted(self._tasks.values(), key=lambda t: t.task_id):
            if task.task_id not in backlogged:
                self._serial_backlog.append(task)

    def _convert_job_to_pickle(self, job: _Job) -> None:
        """Move a shared-memory job onto pickle transport (lock held).

        Copies the staged inputs and any already-written output columns out
        of the blocks, then closes and unlinks both — exactly once; tasks
        still holding shm payloads hit :class:`_ShmAttachError` on their next
        attach and retry with pickle payloads, and results of tasks already
        *past* attach are recognized (shm-shaped report against a
        pickle-mode job) and re-run rather than trusted.
        """
        if job.in_shm is None:
            return
        in_block, out_block = job.in_shm, job.out_shm
        job.inputs = np.ndarray(
            job.in_shape, dtype=np.dtype(job.in_dtype), buffer=in_block.buf
        ).copy()
        job.out = np.ndarray(
            (job.n_nodes, job.batch), dtype=np.int8, buffer=out_block.buf
        ).copy()
        job.in_shm = None
        job.out_shm = None
        for block in (in_block, out_block):
            try:
                block.close()
                block.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._c_shm_fallbacks.inc()

    def _drain_serial_backlog(self) -> None:
        """Run backlogged tasks in-process (dispatcher thread, lock dropped per task).

        Each task is executed *outside* the lock — programs can run for
        milliseconds to seconds, and submissions must not block meanwhile —
        with completion and failure applied back under it.
        """
        while True:
            with self._lock:
                if not self._serial_backlog or self._closed:
                    return
                task = self._serial_backlog.pop(0)
                if task.task_id not in self._tasks or task.job.done:
                    continue
                job = task.job
                self._convert_job_to_pickle(job)
                if not job.degraded:
                    job.degraded = True
                    self._c_degraded_jobs.inc()
                program = job.program
                chunk = job.inputs[:, task.start : task.stop]
                deadline = job.deadline
            try:
                part = run_serial(
                    program, chunk, chunk_size=self.config.chunk_size, deadline=deadline
                )
            except BaseException as exc:
                with self._lock:
                    self._tasks.pop(task.task_id, None)
                    if isinstance(exc, DeadlineExceeded):
                        self._c_deadline_failures.inc()
                    self._fail_job(
                        job,
                        exc if isinstance(exc, Exception) else RuntimeError(repr(exc)),
                    )
            else:
                with self._lock:
                    if task.task_id in self._tasks and not job.done:
                        self._tasks.pop(task.task_id)
                        self._complete_task(task, part)
            self._flush_resolutions()

    # ---------------------------------------------------------------- results
    def _dispatch_loop(self) -> None:
        while True:
            wait = 0.2
            with self._lock:
                if self._retries:
                    # Wake for the next due retry instead of sleeping past it.
                    wait = min(wait, max(0.01, self._retries[0][0] - time.monotonic()))
            try:
                item = self._results.get(timeout=wait)
            except (Empty, OSError, ValueError):
                if self._closed:
                    return
                item = False  # timeout tick; None is the shutdown sentinel
            if item is None:
                self._flush_resolutions()
                return
            if item is not False:
                with self._lock:
                    try:
                        self._handle_result(item)
                    except Exception:
                        # A malformed/corrupted result message (truncated
                        # tuple, unpicklable payload, bad delta) must never
                        # kill this thread — a dead dispatcher wedges the
                        # whole service with every future forever pending.
                        # The task it belonged to is recovered by the
                        # lost-result clock.
                        self._c_protocol_errors.inc()
            now = time.monotonic()
            if item is False or now >= self._next_tick:
                with self._lock:
                    self._on_tick(now)
                self._next_tick = now + self._tick_interval
            self._flush_resolutions()
            self._drain_serial_backlog()

    def _on_tick(self, now: float) -> None:
        """Time-based bookkeeping (lock held): retries, deadlines, health.

        Runs on every quiet period and at least every ``_tick_interval``
        under load — a saturated result queue must not starve deadline
        enforcement or stall detection.
        """
        while self._retries and self._retries[0][0] <= now:
            _, _, task = heapq.heappop(self._retries)
            if task.task_id not in self._tasks or task.job.done:
                continue
            if self._degraded:
                self._serial_backlog.append(task)
            else:
                self._dispatch(task)
        for job in list(self._deadline_jobs):
            if job.done:
                self._deadline_jobs.discard(job)
            elif now > job.deadline:
                self._deadline_jobs.discard(job)
                self._c_deadline_failures.inc()
                self._fail_job(
                    job,
                    DeadlineExceeded(
                        f"service job for program {job.key!r} missed its deadline"
                    ),
                )
        self._check_workers(now)

    def _check_workers(self, now: float) -> None:
        """Detect dead, wedged, and result-losing workers (lock held)."""
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self._respawn_worker(worker)
                continue
            if self._stall_timeout_s <= 0 or self._heartbeat_s <= 0:
                continue
            if worker.running is not None:
                task_id, first_seen = worker.running
                if now - first_seen > self._stall_timeout_s:
                    # Alive but wedged inside one task: death detection will
                    # never fire, so kill it ourselves and let the respawn
                    # path retry its tasks.
                    self._c_stall_kills.inc()
                    try:
                        worker.process.kill()
                    except Exception:  # pragma: no cover - already gone
                        pass
                    worker.process.join(timeout=1.0)
                    self._respawn_worker(worker)
                    continue
            if worker.inflight and worker.last_beat_at is not None:
                for task_id in list(worker.inflight):
                    task = self._tasks.get(task_id)
                    if task is None:
                        worker.inflight.discard(task_id)
                        continue
                    if task.dispatched_at is None:
                        continue
                    if worker.running is not None and worker.running[0] == task_id:
                        continue
                    # The worker has heartbeat since well after the dispatch
                    # yet reports itself past (or never on) this old task:
                    # the request or the result went missing.  Worst case it
                    # is merely queued behind slow siblings and runs twice —
                    # duplicate executions write identical bytes to disjoint
                    # columns, so retrying is always safe.
                    if (
                        now - task.dispatched_at > self._stall_timeout_s
                        and worker.last_beat_at > task.dispatched_at + self._heartbeat_s
                    ):
                        worker.inflight.discard(task_id)
                        self._task_attempt_failed(task, "a lost result message")

    def _handle_result(self, item) -> None:
        """Process one worker report (lock held; resolutions are staged)."""
        worker_id, kind, task_id, payload, delta = item
        reporter = next(
            (worker for worker in self._workers if worker.index == worker_id), None
        )
        if kind == "heartbeat":
            # (worker_id, "heartbeat", pid, current_task_id, None): ignore
            # beats from a dead predecessor of the slot (its pid differs).
            if reporter is not None and reporter.process.pid == task_id:
                now = time.monotonic()
                reporter.last_beat_at = now
                current = payload
                if current is None:
                    reporter.running = None
                elif reporter.running is None or reporter.running[0] != current:
                    reporter.running = (current, now)
            return
        if delta is not None:
            # Piggybacked worker metrics: merged exactly once per message,
            # tagged with the reporting worker's id.
            self._metrics.merge(delta, extra_labels={"worker_id": str(worker_id)})
        task = self._tasks.get(task_id)
        # Clear the inflight slot by the *reported* worker: tasks of an
        # already-failed job are gone from the registry but their ids must
        # still leave the live worker's inflight set, or least-loaded
        # dispatch is skewed away from it forever.
        if reporter is not None:
            reporter.inflight.discard(task_id)
            if reporter.running is not None and reporter.running[0] == task_id:
                reporter.running = None
        if task is None or task.job.done:
            # Late result of a failed/cancelled/retried job.
            self._tasks.pop(task_id, None)
            return
        if kind == "missing":
            # The worker lost the program (store drift, a fresh process
            # after a crash, or an injected install drop): drop the stale
            # mirror entry so the next dispatch reinstalls, then retry the
            # task immediately — the reinstall rides the same queue.
            self._c_reinstalls.inc()
            if reporter is not None:
                reporter.store.pop(task.job.key, None)
                # If the parent skipped the install trusting the disk
                # artifact, that trust was misplaced (pruned or corrupt —
                # the worker's failed restore deletes a corrupt artifact):
                # drop the residency memo so the next probe re-stats, and
                # force this worker's next install onto the queue.
                self._disk_resident.discard(task.job.key)
                reporter.force_install.add(task.job.key)
            task.attempts += 1
            if task.attempts >= self._max_attempts:
                self._tasks.pop(task_id, None)
                self._fail_job(
                    task.job,
                    RuntimeError(
                        "service could not install program "
                        f"{task.job.key!r} after {task.attempts} "
                        "attempts (is it picklable?)"
                    ),
                )
                return
            self._dispatch(task)
            return
        if kind == "shm_error":
            # Shared-memory attach failed (block gone, /dev/shm hiccup, or
            # injected).  First failure: plain retry — it may be transient.
            # Repeated failure: move the whole job onto pickle transport
            # before retrying, so the job cannot starve on a broken segment.
            if task.attempts >= 1:
                self._convert_job_to_pickle(task.job)
            self._task_attempt_failed(task, "shared-memory attach failures")
            return
        if kind == "done" and payload is None and task.job.in_shm is None:
            # A shm-transport result for a job that has since fallen back to
            # pickle: the columns went into an unlinked block nobody will
            # read.  Re-run rather than silently accept missing data.
            self._task_attempt_failed(task, "a stale shared-memory write")
            return
        self._tasks.pop(task_id, None)
        if kind == "error":
            name, detail = payload
            self._fail_job(
                task.job,
                RuntimeError(f"service worker failed: {name}\n{detail}"),
            )
            return
        self._complete_task(task, payload)

    def _flush_resolutions(self) -> None:
        """Resolve staged futures with no lock held.

        Done-callbacks therefore never block the service's bookkeeping —
        though they still run on the dispatcher (or submitting) thread, so
        they should stay cheap and must not wait on further service results.
        """
        with self._lock:
            if not self._resolutions:
                return
            pending, self._resolutions = self._resolutions, []
        for future, value, exception in pending:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(value)

    def _complete_task(self, task: _Task, payload) -> None:
        job = task.job
        if job.out is not None and payload is not None:
            job.out[:, task.start : task.stop] = payload
        job.pending.discard(task.task_id)
        if job.pending:
            return
        job.done = True
        if job.out_shm is not None:
            result = np.ndarray(
                (job.n_nodes, job.batch), dtype=np.int8, buffer=job.out_shm.buf
            ).copy()
        else:
            result = job.out
        if job.started_at is not None:
            self._metrics.histogram("service.job_s").observe(
                time.perf_counter() - job.started_at
            )
        self._job_closed(job)
        self._release_job_resources(job)
        self._job_slots.release()
        self._resolutions.append((job.future, result, None))

    def _fail_job(self, job: _Job, exception: BaseException) -> None:
        if job.done:
            return
        job.done = True
        for task_id in list(job.pending):
            self._tasks.pop(task_id, None)
        job.pending.clear()
        self._job_closed(job)
        self._release_job_resources(job)
        self._job_slots.release()
        self._resolutions.append((job.future, None, exception))

    def _job_closed(self, job: _Job) -> None:
        """Maintain the outstanding-jobs gauge (lock held)."""
        if job.counted:
            job.counted = False
            self._outstanding -= 1
            self._g_queue_depth.set(self._outstanding)

    @staticmethod
    def _release_job_resources(job: _Job) -> None:
        for block in (job.in_shm, job.out_shm):
            if block is not None:
                try:
                    block.close()
                    block.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        job.in_shm = None
        job.out_shm = None
        job.inputs = None
        job.out = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"EvaluationService(workers={stats.workers}, jobs={stats.jobs}, "
            f"installs={stats.installs}, closed={self._closed})"
        )
