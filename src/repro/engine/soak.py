"""Invariant soak harness: hammer a resident service, assert nothing drifts.

The bit-identity invariants in ``docs/INVARIANTS.md`` are each pinned by a
targeted Hypothesis test; this module is the complementary *endurance*
check (INV-4 and INV-6 under sustained load): drive an
:class:`~repro.engine.service.EvaluationService` with a mixed stream of
circuit families — parity across all three backends, the trace-estimation
driver circuit, the matmul driver circuit — for a configurable duration,
typically under an active :class:`~repro.engine.faults.FaultPlan`, and
assert that

* every job's node values are **bit-identical** to the serially computed
  reference (no drift, whatever kills/stalls/drops the plan injected),
* telemetry counters stay **monotone** across periodic snapshots (a
  shrinking counter means lost or double-merged worker deltas),
* ``ServiceStats`` fields stay monotone between reads,
* nothing **leaks**: no shared-memory blocks left in ``/dev/shm`` and no
  child processes left behind once the service closes.

Entry points: :func:`run_soak` (library), ``tests/soak_harness.py``
(pytest/`__main__` wrapper), and ``repro soak`` (CLI).  CI runs the short
mode — ``SOAK_SECONDS=20`` under :func:`~repro.engine.faults.aggressive_plan`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.builder import CircuitBuilder
from repro.core.matmul_circuit import build_matmul_circuit
from repro.core.trace_circuit import build_trace_circuit
from repro.engine.config import EngineConfig
from repro.engine.engine import Engine
from repro.engine.faults import DeadlineExceeded, FaultPlan
from repro.engine.service import EvaluationService
from repro.obs import MetricsRegistry, counter_regressions

__all__ = ["SoakReport", "default_soak_config", "run_soak"]

#: ServiceStats fields that are monotone counters (``workers`` may shrink on
#: slot retirement and ``degraded`` is a latch, so neither is listed).
_MONOTONE_STATS = (
    "jobs",
    "tasks",
    "installs",
    "reinstalls",
    "shm_jobs",
    "worker_restarts",
    "retries",
    "stall_kills",
    "deadline_failures",
    "protocol_errors",
    "shm_fallbacks",
    "retired_workers",
    "degraded_jobs",
)


@dataclass
class SoakReport:
    """Everything a soak run observed; ``assert_ok()`` is the verdict."""

    seconds: float
    jobs_ok: int = 0
    jobs_failed: int = 0
    drift: int = 0
    failures: Dict[str, int] = field(default_factory=dict)
    monotone_violations: List[str] = field(default_factory=list)
    leaked_shm: List[str] = field(default_factory=list)
    leaked_processes: List[str] = field(default_factory=list)
    families: List[str] = field(default_factory=list)
    final_stats: Dict[str, object] = field(default_factory=dict)
    job_timeout: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "drift": self.drift,
            "failures": dict(self.failures),
            "monotone_violations": list(self.monotone_violations),
            "leaked_shm": list(self.leaked_shm),
            "leaked_processes": list(self.leaked_processes),
            "families": list(self.families),
            "final_stats": dict(self.final_stats),
            "job_timeout": self.job_timeout,
        }

    def problems(self) -> List[str]:
        """Human-readable list of everything that violates the soak contract.

        Job failures are violations too — the soak configuration budgets
        attempts and respawns generously enough that every injected fault
        should be *recovered from*, not surfaced — except
        :class:`DeadlineExceeded` when the run itself set ``job_timeout``
        (then deadline misses are the feature under test, not a defect).
        """
        issues: List[str] = []
        if self.drift:
            issues.append(f"{self.drift} job(s) returned non-bit-identical output")
        for name, count in sorted(self.failures.items()):
            if name == DeadlineExceeded.__name__ and self.job_timeout is not None:
                continue
            issues.append(f"{count} job(s) failed with {name}")
        issues.extend(f"counter regression: {v}" for v in self.monotone_violations)
        issues.extend(f"leaked shm block: {v}" for v in self.leaked_shm)
        issues.extend(f"leaked process: {v}" for v in self.leaked_processes)
        if not self.jobs_ok:
            issues.append("no job completed successfully")
        return issues

    def assert_ok(self) -> None:
        problems = self.problems()
        if problems:
            # An explicit raise, not a bare assert: the soak verdict must
            # survive ``python -O`` (REP001).
            raise AssertionError("; ".join(problems))


def default_soak_config(**overrides) -> EngineConfig:
    """The service configuration soak runs use unless told otherwise.

    Small chunks and a low shared-memory threshold maximize tasks (hence
    fault-injection points) per second; fast heartbeats and a short stall
    timeout make wedge recovery visible within a seconds-long run; and the
    attempt/respawn budgets are generous because the soak contract is that
    every injected fault is *recovered from* — budget exhaustion is the
    degradation test's job, not the soak's.
    """
    base = dict(
        max_workers=2,
        chunk_size=8,
        parallel_threshold=1,
        shared_memory_min_bytes=256,
        service_queue_depth=16,
        service_heartbeat_s=0.1,
        service_stall_timeout_s=1.0,
        service_retry_backoff_s=0.02,
        service_task_attempts=25,
        service_respawn_budget=1_000_000,
    )
    base.update(overrides)
    return EngineConfig(**base)


def _parity_circuit(n_bits: int, name: str = "soak-parity"):
    builder = CircuitBuilder(name=f"{name}{n_bits}")
    inputs = builder.allocate_inputs(n_bits)
    at_least = [builder.add_gate(inputs, [1] * n_bits, k) for k in range(1, n_bits + 1)]
    weights = [1 if k % 2 == 1 else -1 for k in range(1, n_bits + 1)]
    out = builder.add_gate(at_least, weights, 1)
    builder.set_outputs([out], ["parity"])
    return builder.build()


class _Family:
    """One circuit family in the mix: a compiled program plus ready batches.

    References are computed up front with serial ``program.run`` — the soak
    loop then only compares, so verification never competes with the
    service for CPU inside the timing window.
    """

    __slots__ = ("name", "program", "key", "batches", "references")

    def __init__(self, name, program, key, batches) -> None:
        self.name = name
        self.program = program
        self.key = key
        self.batches = batches
        self.references = [program.run(batch) for batch in batches]


def _build_families(engine: Engine, rng: np.random.Generator, n_batches: int):
    families: List[_Family] = []

    def add(name, circuit, backend, widths, low=0, high=2):
        program = engine.compile(circuit, backend=backend)
        key = (circuit.structural_hash(), backend)
        batches = [
            rng.integers(low, high, size=(circuit.n_inputs, int(widths[i % len(widths)])))
            for i in range(n_batches)
        ]
        families.append(_Family(name, program, key, batches))

    parity = _parity_circuit(6)
    # Mixed widths straddle the shm threshold of default_soak_config, so
    # both transports (and the fallback between them) stay exercised.
    add("parity6-sparse", parity, "sparse", widths=(5, 24, 96))
    add("parity6-dense", parity, "dense", widths=(8, 64))
    add("parity6-exact", parity, "exact", widths=(16,))
    trace = build_trace_circuit(2, 3, bit_width=1, depth_parameter=1)
    add("trace2", trace.circuit, "sparse", widths=(12, 48))
    matmul = build_matmul_circuit(2, bit_width=1)
    add("matmul2", matmul.circuit, "dense", widths=(10, 40))
    return families


def run_soak(
    seconds: float,
    *,
    config: Optional[EngineConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    seed: int = 2018,
    job_timeout: Optional[float] = None,
    max_in_flight: int = 8,
    batches_per_family: int = 12,
    snapshot_every: int = 25,
    result_timeout: float = 120.0,
) -> SoakReport:
    """Drive a resident service for ``seconds``; return what was observed.

    ``fault_plan`` (usually :func:`~repro.engine.faults.aggressive_plan`)
    is merged into the config; ``job_timeout`` adds a per-job deadline to
    every submission (making :class:`DeadlineExceeded` an allowed failure
    type).  The run keeps at most ``max_in_flight`` futures outstanding and
    verifies each result against its precomputed serial reference the
    moment it completes; every ``snapshot_every`` completions it snapshots
    the metrics registry and ``stats()`` and records monotonicity
    violations.  Leak checks (shm blocks, child processes) run after the
    service closes.
    """
    if seconds <= 0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    config = config if config is not None else default_soak_config()
    if fault_plan is not None:
        config = config.with_overrides(fault_plan=fault_plan)
    rng = np.random.default_rng(seed)
    engine = Engine()  # compile-only; evaluation goes through the service
    families = _build_families(engine, rng, batches_per_family)

    report = SoakReport(seconds=float(seconds), job_timeout=job_timeout)
    report.families = [family.name for family in families]
    shm_before = _shm_listing()
    children_before = {process.pid for process in multiprocessing.active_children()}

    # Private always-on registry: worker-side telemetry activates without
    # touching the process-global registry, and snapshots are isolated from
    # whatever else the process records.
    registry = MetricsRegistry()
    last_snapshot = None
    last_stats = None
    completions = 0
    round_robin = 0

    service = EvaluationService(config, registry=registry)
    try:
        deadline = time.monotonic() + seconds
        pending = deque()

        def reap(block: bool) -> None:
            nonlocal completions, last_snapshot, last_stats
            future, family, index = pending.popleft()
            if not block and not future.done():
                pending.appendleft((future, family, index))
                return
            try:
                result = future.result(timeout=result_timeout)
            except Exception as exc:
                report.jobs_failed += 1
                name = type(exc).__name__
                report.failures[name] = report.failures.get(name, 0) + 1
            else:
                if np.array_equal(result, family.references[index]):
                    report.jobs_ok += 1
                else:
                    report.drift += 1
            completions += 1
            if completions % snapshot_every == 0:
                snapshot = registry.snapshot()
                if last_snapshot is not None:
                    report.monotone_violations.extend(
                        counter_regressions(last_snapshot, snapshot)
                    )
                last_snapshot = snapshot
                stats = service.stats().as_dict()
                if last_stats is not None:
                    for fields_name in _MONOTONE_STATS:
                        if stats[fields_name] < last_stats[fields_name]:
                            report.monotone_violations.append(
                                f"stats.{fields_name}: {last_stats[fields_name]} "
                                f"-> {stats[fields_name]}"
                            )
                last_stats = stats

        while time.monotonic() < deadline:
            family = families[round_robin % len(families)]
            index = int(rng.integers(0, len(family.batches)))
            round_robin += 1
            future = service.submit(
                family.program,
                family.batches[index],
                key=family.key,
                timeout=job_timeout,
            )
            pending.append((future, family, index))
            while len(pending) >= max_in_flight:
                reap(block=True)
            while pending:
                head = pending[0][0]
                if not head.done():
                    break
                reap(block=False)
        while pending:
            reap(block=True)
        report.final_stats = service.stats().as_dict()
    finally:
        service.close(wait=False, timeout=15.0)
        engine.close()

    # Settle before the leak sweep: worker teardown (and the resource
    # tracker) may need a beat to reap processes and unlink segments.
    for _ in range(50):
        leaked_shm = sorted(set(_shm_listing()) - set(shm_before))
        leaked_children = [
            f"pid={process.pid} name={process.name}"
            for process in multiprocessing.active_children()
            if process.pid not in children_before
        ]
        if not leaked_shm and not leaked_children:
            break
        time.sleep(0.1)
    report.leaked_shm = leaked_shm
    report.leaked_processes = leaked_children
    return report


def _shm_listing() -> List[str]:
    """Python-owned shared-memory segments currently in ``/dev/shm``."""
    try:
        names = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    return [name for name in names if name.startswith("psm_")]
