"""Spiking-mode evaluator: per-layer / per-gate spike counts and energy.

The paper's constructions target neuromorphic hardware, where the cost of a
run is not gate count but *activity*: how many neurons fire (the Uchizawa–
Douglas–Maass energy the scalar ``SimulationResult.energy`` already reports)
and how many synaptic events are delivered (a firing source charges every
outgoing wire).  This module replays a circuit layer by layer and records
both, resolved per layer and per gate, so energy hotspots can be localized
to a construction stage instead of a single total.

The replay consumes the node values computed by any engine backend — the
trace is a pure function of them — so it inherits the backend's exactness
and costs one extra pass over the layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.circuits.simulator import LayerPlan

__all__ = ["ActivityPlan", "SpikeTrace", "compute_spike_trace"]


@dataclass(frozen=True)
class ActivityPlan:
    """The slice of a :class:`LayerPlan` the spiking replay actually reads.

    A full layer plan carries per-wire Python-int weight lists (O(edges)
    boxed ints) that only matter during compilation; this slim form — just
    int64 arrays — is what the engine retains in its compile cache so
    spike traces stay cheap without pinning the plan.
    """

    n_inputs: int
    n_nodes: int
    layers: Tuple[Tuple[int, np.ndarray, np.ndarray], ...]  # (depth, nodes, cols)

    @classmethod
    def from_layer_plan(cls, plan: LayerPlan) -> "ActivityPlan":
        return cls(
            n_inputs=plan.n_inputs,
            n_nodes=plan.n_nodes,
            layers=tuple(
                (spec.depth, spec.nodes, spec.cols) for spec in plan.layers
            ),
        )

    @classmethod
    def from_circuit(cls, circuit) -> "ActivityPlan":
        """Build the activity layers straight from a circuit's columnar store.

        Produces exactly the layers :meth:`from_layer_plan` would for the
        same circuit, without lowering weights or thresholds.  Used by the
        engine when a circuit was compiled through the template-streaming
        path (no full :class:`LayerPlan` exists there) and a spike trace is
        requested — the one consumer that genuinely needs the global
        depth-layer view.
        """
        from repro.circuits.store import iter_depth_layers

        cols_store = circuit.columnar()
        layers = [
            (depth, gate_idx + circuit.n_inputs, cols_store.sources[wire_idx])
            for depth, gate_idx, wire_idx, _fan in iter_depth_layers(
                circuit.gate_depths(), cols_store.offsets
            )
        ]
        return cls(
            n_inputs=circuit.n_inputs,
            n_nodes=circuit.n_nodes,
            layers=tuple(layers),
        )


@dataclass(frozen=True)
class SpikeTrace:
    """Activity trace of one batched evaluation.

    Attributes
    ----------
    depths:
        Depth label of each layer, ascending (shape ``(n_layers,)``).
    gates_per_layer:
        Number of gates in each layer (shape ``(n_layers,)``).
    spikes_per_layer:
        Firing gates per layer and batch column (``(n_layers, batch)``).
    synaptic_events_per_layer:
        Spikes *delivered into* each layer per batch column: every wire whose
        source carries a 1 counts one event (``(n_layers, batch)``).
    gate_fire_counts:
        Per-gate total fires across the batch (``(size,)``, gate order).
    energy:
        Total firing gates per batch column (``(batch,)``); always equals
        ``spikes_per_layer.sum(axis=0)`` and the simulator's energy measure.
    """

    depths: np.ndarray
    gates_per_layer: np.ndarray
    spikes_per_layer: np.ndarray
    synaptic_events_per_layer: np.ndarray
    gate_fire_counts: np.ndarray
    energy: np.ndarray

    @property
    def batch(self) -> int:
        """Number of evaluated input assignments."""
        return int(self.energy.shape[0])

    @property
    def synaptic_events(self) -> np.ndarray:
        """Total synaptic events per batch column (``(batch,)``)."""
        return self.synaptic_events_per_layer.sum(axis=0)

    def as_rows(self) -> List[dict]:
        """Row-per-layer view for tabular/JSON reporting (means over batch)."""
        rows = []
        for index in range(self.depths.shape[0]):
            gates = int(self.gates_per_layer[index])
            mean_spikes = float(self.spikes_per_layer[index].mean())
            rows.append(
                {
                    "layer": int(self.depths[index]),
                    "gates": gates,
                    "mean_spikes": mean_spikes,
                    "mean_fraction_firing": mean_spikes / gates if gates else 0.0,
                    "mean_synaptic_events": float(
                        self.synaptic_events_per_layer[index].mean()
                    ),
                }
            )
        return rows

    def as_dict(self) -> dict:
        """Summary dict (no per-gate detail) for CLI and benchmark output."""
        return {
            "samples": self.batch,
            "mean_energy": float(self.energy.mean()) if self.batch else 0.0,
            "max_energy": int(self.energy.max()) if self.batch else 0,
            "min_energy": int(self.energy.min()) if self.batch else 0,
            "mean_synaptic_events": (
                float(self.synaptic_events.mean()) if self.batch else 0.0
            ),
            "layers": self.as_rows(),
        }


def compute_spike_trace(
    plan: Union[ActivityPlan, LayerPlan], node_values: np.ndarray
) -> SpikeTrace:
    """Replay a (activity or full layer) plan over computed node values.

    ``node_values`` is the ``(n_nodes, batch)`` 0/1 matrix produced by any
    backend for the same circuit the plan was built from.
    """
    if isinstance(plan, LayerPlan):
        plan = ActivityPlan.from_layer_plan(plan)
    if node_values.ndim != 2 or node_values.shape[0] != plan.n_nodes:
        raise ValueError(
            f"node_values must have shape ({plan.n_nodes}, batch), "
            f"got {node_values.shape}"
        )
    batch = node_values.shape[1]
    n_layers = len(plan.layers)
    depths = np.zeros(n_layers, dtype=np.int64)
    gates_per_layer = np.zeros(n_layers, dtype=np.int64)
    spikes = np.zeros((n_layers, batch), dtype=np.int64)
    events = np.zeros((n_layers, batch), dtype=np.int64)
    for index, (depth, nodes, cols) in enumerate(plan.layers):
        depths[index] = depth
        gates_per_layer[index] = nodes.shape[0]
        spikes[index] = node_values[nodes, :].astype(np.int64).sum(axis=0)
        if cols.size:
            # One synaptic event per wire whose source node carries a spike.
            events[index] = node_values[cols, :].astype(np.int64).sum(axis=0)
    gate_fire_counts = (
        node_values[plan.n_inputs :, :].astype(np.int64).sum(axis=1)
    )
    return SpikeTrace(
        depths=depths,
        gates_per_layer=gates_per_layer,
        spikes_per_layer=spikes,
        synaptic_events_per_layer=events,
        gate_fire_counts=gate_fire_counts,
        energy=spikes.sum(axis=0),
    )
