"""Fast matrix multiplication substrate (paper Section 2.1 and Definition 2.1).

Bilinear base-case algorithms (Strassen, Winograd, naive, compositions), the
Brent-equation verifier, the recursive exact-integer driver used as a test
oracle, and the sparsity parameters that drive the circuit constructions.
"""

from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2
from repro.fastmm.winograd import winograd_2x2
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.compose import compose, self_compose
from repro.fastmm.sparsity import (
    SideParameters,
    SparsityParameters,
    side_parameters,
    sparsity_parameters,
)
from repro.fastmm.recursive import fast_matmul, OperationCounts, operation_counts
from repro.fastmm.catalog import available_algorithms, get_algorithm

__all__ = [
    "BilinearAlgorithm",
    "strassen_2x2",
    "winograd_2x2",
    "naive_algorithm",
    "compose",
    "self_compose",
    "SideParameters",
    "SparsityParameters",
    "side_parameters",
    "sparsity_parameters",
    "fast_matmul",
    "OperationCounts",
    "operation_counts",
    "available_algorithms",
    "get_algorithm",
]
