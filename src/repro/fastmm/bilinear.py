"""Bilinear (Strassen-like) fast matrix multiplication algorithms.

A *bilinear algorithm* for multiplying two T x T matrices with r scalar
multiplications is given by three integer coefficient tensors (Section 2.1
and 2.3 of the paper):

* ``u[i, p, q]`` — coefficient of block ``A[p, q]`` in the left factor of
  the i-th multiplication ``M_i``;
* ``v[i, p, q]`` — coefficient of block ``B[p, q]`` in the right factor;
* ``w[p, q, i]`` — coefficient of ``M_i`` in the expression for ``C[p, q]``.

So ``M_i = (sum_pq u[i,p,q] A_pq) * (sum_pq v[i,p,q] B_pq)`` and
``C_pq = sum_i w[p,q,i] M_i``.  The paper restricts attention to
``{-1, 0, 1}`` coefficients for exposition; this implementation accepts any
integers (the weighted-sum circuits support arbitrary integer weights).

Correctness of an algorithm is equivalent to the Brent equations,
checked exactly by :meth:`BilinearAlgorithm.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

__all__ = ["BilinearAlgorithm"]


@dataclass(frozen=True)
class BilinearAlgorithm:
    """A base-case fast matrix multiplication algorithm (see module docs)."""

    name: str
    t: int
    u: np.ndarray  # shape (r, t, t)
    v: np.ndarray  # shape (r, t, t)
    w: np.ndarray  # shape (t, t, r)

    def __post_init__(self) -> None:
        u = np.asarray(self.u, dtype=np.int64)
        v = np.asarray(self.v, dtype=np.int64)
        w = np.asarray(self.w, dtype=np.int64)
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)
        object.__setattr__(self, "w", w)
        t = self.t
        if u.ndim != 3 or u.shape[1:] != (t, t):
            raise ValueError(f"u must have shape (r, {t}, {t}), got {u.shape}")
        if v.shape != u.shape:
            raise ValueError(f"v must have shape {u.shape}, got {v.shape}")
        if w.shape != (t, t, u.shape[0]):
            raise ValueError(f"w must have shape ({t}, {t}, {u.shape[0]}), got {w.shape}")

    # ------------------------------------------------------------------ basic
    @property
    def r(self) -> int:
        """Number of scalar multiplications per base-case application."""
        return int(self.u.shape[0])

    @property
    def omega(self) -> float:
        """Exponent of the derived recursive algorithm: ``log_T r``."""
        return float(np.log(self.r) / np.log(self.t))

    # -------------------------------------------------------------- validation
    def brent_residual(self) -> np.ndarray:
        """Left-hand side minus right-hand side of the Brent equations.

        The algorithm is correct iff the returned tensor is identically zero.
        Shape: ``(t, t, t, t, t, t)`` indexed by ``(a, b, c, d, e, f)`` for
        the identity ``sum_i u[i,a,b] v[i,c,d] w[e,f,i] =
        [b == c][a == e][d == f]``.
        """
        t = self.t
        lhs = np.einsum("iab,icd,efi->abcdef", self.u, self.v, self.w)
        eye = np.eye(t, dtype=np.int64)
        rhs = np.einsum("bc,ae,df->abcdef", eye, eye, eye)
        return lhs - rhs

    def verify(self) -> bool:
        """True when the algorithm satisfies the Brent equations exactly."""
        return not self.brent_residual().any()

    # ------------------------------------------------------------ application
    def apply_once(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Apply one level of the algorithm to matrices of dimension ``k*t``.

        Blocks are multiplied with ordinary (exact) matrix multiplication;
        this is the non-recursive reference used in tests and by the
        recursive driver in :mod:`repro.fastmm.recursive`.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        n = a.shape[0]
        t = self.t
        if a.shape != b.shape or a.shape[0] != a.shape[1]:
            raise ValueError("apply_once requires two square matrices of equal shape")
        if n % t != 0:
            raise ValueError(f"matrix dimension {n} is not divisible by t={t}")
        k = n // t
        out = np.zeros_like(a)
        products: List[np.ndarray] = []
        for i in range(self.r):
            left = np.zeros((k, k), dtype=a.dtype)
            right = np.zeros((k, k), dtype=a.dtype)
            for p in range(t):
                for q in range(t):
                    cu = int(self.u[i, p, q])
                    cv = int(self.v[i, p, q])
                    if cu:
                        left = left + cu * a[p * k : (p + 1) * k, q * k : (q + 1) * k]
                    if cv:
                        right = right + cv * b[p * k : (p + 1) * k, q * k : (q + 1) * k]
            products.append(left @ right)
        for p in range(t):
            for q in range(t):
                acc = np.zeros((k, k), dtype=a.dtype)
                for i in range(self.r):
                    cw = int(self.w[p, q, i])
                    if cw:
                        acc = acc + cw * products[i]
                out[p * k : (p + 1) * k, q * k : (q + 1) * k] = acc
        return out

    # ------------------------------------------------------------ descriptors
    def multiplication_terms(self, i: int) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]]]:
        """Nonzero (p, q, coefficient) terms of the two factors of ``M_i``."""
        left = [
            (p, q, int(self.u[i, p, q]))
            for p in range(self.t)
            for q in range(self.t)
            if self.u[i, p, q]
        ]
        right = [
            (p, q, int(self.v[i, p, q]))
            for p in range(self.t)
            for q in range(self.t)
            if self.v[i, p, q]
        ]
        return left, right

    def output_terms(self, p: int, q: int) -> List[Tuple[int, int]]:
        """Nonzero (i, coefficient) terms of the expression for ``C[p, q]``."""
        return [(i, int(self.w[p, q, i])) for i in range(self.r) if self.w[p, q, i]]

    def describe(self) -> str:
        """Human-readable rendering in the style of the paper's Figure 1."""
        def block(name: str, p: int, q: int) -> str:
            return f"{name}{p + 1}{q + 1}"

        lines: List[str] = [f"{self.name}: T={self.t}, r={self.r}, omega={self.omega:.4f}"]
        for i in range(self.r):
            left, right = self.multiplication_terms(i)
            left_s = " + ".join(
                f"{'' if c == 1 else '-' if c == -1 else str(c) + '*'}{block('A', p, q)}"
                for p, q, c in left
            ).replace("+ -", "- ")
            right_s = " + ".join(
                f"{'' if c == 1 else '-' if c == -1 else str(c) + '*'}{block('B', p, q)}"
                for p, q, c in right
            ).replace("+ -", "- ")
            lines.append(f"M{i + 1} = ({left_s}) * ({right_s})")
        for p in range(self.t):
            for q in range(self.t):
                terms = self.output_terms(p, q)
                expr = " + ".join(
                    f"{'' if c == 1 else '-' if c == -1 else str(c) + '*'}M{i + 1}"
                    for i, c in terms
                ).replace("+ -", "- ")
                lines.append(f"{block('C', p, q)} = {expr}")
        return "\n".join(lines)
