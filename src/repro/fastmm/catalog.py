"""Registry of the bilinear algorithms shipped with the package."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.compose import self_compose
from repro.fastmm.naive_algorithm import naive_algorithm
from repro.fastmm.strassen import strassen_2x2
from repro.fastmm.winograd import winograd_2x2

__all__ = ["available_algorithms", "get_algorithm"]


def _strassen_squared() -> BilinearAlgorithm:
    return self_compose(strassen_2x2(), times=1, name="strassen^2")


_REGISTRY: Dict[str, Callable[[], BilinearAlgorithm]] = {
    "strassen": strassen_2x2,
    "winograd": winograd_2x2,
    "naive-2": lambda: naive_algorithm(2),
    "naive-3": lambda: naive_algorithm(3),
    "strassen-squared": _strassen_squared,
}


def available_algorithms() -> List[str]:
    """Names accepted by :func:`get_algorithm`."""
    return sorted(_REGISTRY)


def get_algorithm(name: str) -> BilinearAlgorithm:
    """Instantiate a registered algorithm by name.

    Raises
    ------
    KeyError
        If the name is unknown; the message lists the available names.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from None
    return factory()
