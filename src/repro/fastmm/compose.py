"""Composition (tensor product) of bilinear algorithms.

Composing an algorithm for T1 x T1 matrices using r1 multiplications with an
algorithm for T2 x T2 matrices using r2 multiplications yields an algorithm
for (T1*T2) x (T1*T2) matrices using r1*r2 multiplications — this is exactly
one level of recursive application written out as a single larger base case.
The paper's framework ("we assume we are given an algorithm for multiplying
two T x T matrices using a total of r multiplications", Section 2.3) is
agnostic to how the base algorithm was obtained, so composed algorithms are
a convenient way to exercise the constructions with larger T (e.g. Strassen
composed with itself: T = 4, r = 49).
"""

from __future__ import annotations

import numpy as np

from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["compose", "self_compose"]


def compose(outer: BilinearAlgorithm, inner: BilinearAlgorithm, name: str = "") -> BilinearAlgorithm:
    """Tensor-compose two bilinear algorithms.

    The outer algorithm partitions the matrix into ``T1 x T1`` blocks and the
    inner algorithm is applied to those blocks, giving block index
    ``(p1 * T2 + p2, q1 * T2 + q2)`` and multiplication index
    ``i1 * r2 + i2``.
    """
    t1, t2 = outer.t, inner.t
    r1, r2 = outer.r, inner.r
    t = t1 * t2
    r = r1 * r2

    # u[(i1, i2), (p1, p2), (q1, q2)] = u1[i1, p1, q1] * u2[i2, p2, q2]
    u = np.einsum("iab,jcd->ijacbd", outer.u, inner.u).reshape(r, t, t)
    v = np.einsum("iab,jcd->ijacbd", outer.v, inner.v).reshape(r, t, t)
    w = np.einsum("abi,cdj->acbdij", outer.w, inner.w).reshape(t, t, r)

    label = name or f"{outer.name}∘{inner.name}"
    return BilinearAlgorithm(label, t, u, v, w)


def self_compose(algorithm: BilinearAlgorithm, times: int = 1, name: str = "") -> BilinearAlgorithm:
    """Compose an algorithm with itself ``times`` times (0 returns it unchanged)."""
    if times < 0:
        raise ValueError(f"times must be nonnegative, got {times}")
    result = algorithm
    for _ in range(times):
        result = compose(result, algorithm)
    if name:
        result = BilinearAlgorithm(name, result.t, result.u, result.v, result.w)
    return result
