"""The naive (definition-based) T x T multiplication as a bilinear algorithm.

The naive algorithm uses ``r = T**3`` multiplications ``M_{(p,k,q)} =
A[p,k] * B[k,q]`` and sums them into ``C[p,q] = sum_k M_{(p,k,q)}``.  It is
the ``omega = 3`` baseline the paper's introduction compares against, and a
useful degenerate case for the circuit constructions (its sparsity ratio
``alpha = r / s_A`` equals 1, so the geometric level schedule collapses to a
single jump — see :mod:`repro.core.schedule`).
"""

from __future__ import annotations

import numpy as np

from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["naive_algorithm"]


def naive_algorithm(t: int = 2) -> BilinearAlgorithm:
    """Return the definition-based algorithm for ``t x t`` block matrices."""
    if t < 1:
        raise ValueError(f"block dimension must be at least 1, got {t}")
    r = t ** 3
    u = np.zeros((r, t, t), dtype=np.int64)
    v = np.zeros((r, t, t), dtype=np.int64)
    w = np.zeros((t, t, r), dtype=np.int64)
    index = 0
    for p in range(t):
        for k in range(t):
            for q in range(t):
                u[index, p, k] = 1
                v[index, k, q] = 1
                w[p, q, index] = 1
                index += 1
    return BilinearAlgorithm(f"naive-{t}x{t}", t, u, v, w)
