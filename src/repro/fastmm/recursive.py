"""Conventional (non-circuit) recursive fast matrix multiplication.

This is the classical divide-and-conquer driver over a bilinear base-case
algorithm (Section 2.1 of the paper): partition into T x T blocks, form the
r left/right linear combinations, recurse, and recombine.  It serves three
purposes in the reproduction:

* the exact-integer oracle the threshold circuits are validated against;
* the source of the operation counts reported in experiment E1 (the paper's
  recurrence ``T(N) = 7 T(N/2) + 18 (N/2)^2`` for Strassen);
* the "conventional parallel algorithm" baseline the paper contrasts its
  constant-depth circuits with.

Arithmetic is exact: inputs are converted to ``dtype=object`` arrays of
Python integers, so no overflow can occur for any entry width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fastmm.bilinear import BilinearAlgorithm
from repro.fastmm.strassen import strassen_2x2
from repro.util.intmath import ceil_log
from repro.util.matrices import as_exact_array, pad_to_power

__all__ = ["fast_matmul", "OperationCounts", "operation_counts"]


def _recurse(a: np.ndarray, b: np.ndarray, algorithm: BilinearAlgorithm, cutoff: int) -> np.ndarray:
    n = a.shape[0]
    if n <= cutoff or n % algorithm.t != 0:
        return a @ b
    t = algorithm.t
    k = n // t

    def block(m: np.ndarray, p: int, q: int) -> np.ndarray:
        return m[p * k : (p + 1) * k, q * k : (q + 1) * k]

    products = []
    for i in range(algorithm.r):
        left = np.zeros((k, k), dtype=object)
        right = np.zeros((k, k), dtype=object)
        for p in range(t):
            for q in range(t):
                cu = int(algorithm.u[i, p, q])
                cv = int(algorithm.v[i, p, q])
                if cu:
                    left = left + cu * block(a, p, q)
                if cv:
                    right = right + cv * block(b, p, q)
        products.append(_recurse(left, right, algorithm, cutoff))

    out = np.zeros((n, n), dtype=object)
    for p in range(t):
        for q in range(t):
            acc = np.zeros((k, k), dtype=object)
            for i in range(algorithm.r):
                cw = int(algorithm.w[p, q, i])
                if cw:
                    acc = acc + cw * products[i]
            out[p * k : (p + 1) * k, q * k : (q + 1) * k] = acc
    return out


def fast_matmul(
    a,
    b,
    algorithm: Optional[BilinearAlgorithm] = None,
    cutoff: int = 1,
) -> np.ndarray:
    """Multiply two square integer matrices with a recursive fast algorithm.

    Matrices are zero-padded to the next power of the algorithm's block
    dimension; the result is cropped back to the original size.  ``cutoff``
    is the dimension at or below which the recursion switches to the naive
    product (1 reproduces the fully recursive algorithm of the paper).
    """
    algorithm = algorithm if algorithm is not None else strassen_2x2()
    a = as_exact_array(a)
    b = as_exact_array(b)
    if a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected equal square matrices, got {a.shape} and {b.shape}")
    n = a.shape[0]
    a_padded, _ = pad_to_power(a, algorithm.t)
    b_padded, _ = pad_to_power(b, algorithm.t)
    product = _recurse(a_padded, b_padded, algorithm, max(1, cutoff))
    return product[:n, :n]


@dataclass(frozen=True)
class OperationCounts:
    """Exact operation counts of the recursive algorithm on N x N matrices."""

    n: int
    levels: int
    scalar_multiplications: int
    scalar_additions: int

    @property
    def total_operations(self) -> int:
        """Scalar multiplications plus scalar additions/subtractions."""
        return self.scalar_multiplications + self.scalar_additions


def operation_counts(algorithm: BilinearAlgorithm, n: int) -> OperationCounts:
    """Count scalar operations of the fully recursive algorithm (experiment E1).

    Follows the paper's recurrence: each level performs ``r`` recursive calls
    plus one addition/subtraction per entry per (nonzero coefficient beyond
    the first) in the left, right and output linear combinations.  For
    Strassen this is ``T(N) = 7 T(N/2) + 18 (N/2)^2``.
    """
    t = algorithm.t
    levels = ceil_log(n, t)
    if t ** levels != n:
        raise ValueError(f"N={n} is not a power of the block dimension T={t}")

    # additions per application of the base case, counted per block entry:
    # a linear combination of k blocks costs k-1 additions per entry.
    adds_per_apply = 0
    for i in range(algorithm.r):
        adds_per_apply += max(int((algorithm.u[i] != 0).sum()) - 1, 0)
        adds_per_apply += max(int((algorithm.v[i] != 0).sum()) - 1, 0)
    for p in range(t):
        for q in range(t):
            adds_per_apply += max(int((algorithm.w[p, q, :] != 0).sum()) - 1, 0)

    mults = algorithm.r ** levels
    additions = 0
    block_dim = n
    calls = 1
    for _ in range(levels):
        block_dim //= t
        additions += calls * adds_per_apply * block_dim * block_dim
        calls *= algorithm.r
    return OperationCounts(
        n=n,
        levels=levels,
        scalar_multiplications=mults,
        scalar_additions=additions,
    )
