"""Sparsity parameters of a fast matrix multiplication algorithm.

Definition 2.1 of the paper: for each multiplication ``M_i`` let ``a_i``
(resp. ``b_i``) be the number of distinct blocks of A (resp. B) appearing in
its left (resp. right) factor, and ``c_i`` the number of output expressions
``C_j`` in which ``M_i`` appears.  Then

    s_A = sum_i a_i,   s_B = sum_i b_i,   s_C = sum_i c_i,
    s   = max(s_A, s_B, s_C).

Section 4.3 derives from these the constants that drive the circuit
constructions (stated there for the A side; the analogous quantities for the
other sides use s_B and s_C):

    alpha = r / s_A          (0 < alpha <= 1)
    beta  = s_A / T^2        (beta >= 1)
    gamma = log_beta(1/alpha)       (0 < gamma < 1 when r > T^2)
    c     = log_T(alpha * beta) / (1 - gamma)

and the appendix additionally uses ``c'_j``, the number of multiplications
appearing in the j-th output expression (for Strassen: 4, 2, 2, 4).

For Strassen's algorithm these evaluate to s_A = s_B = s_C = 12,
alpha = 7/12, beta = 3, gamma ≈ 0.491 and c ≈ 1.585, the values quoted in
the paper (experiment E3 regenerates this table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["SideParameters", "SparsityParameters", "side_parameters", "sparsity_parameters"]


@dataclass(frozen=True)
class SideParameters:
    """The Section 4.3 constants computed for one side (s one of s_A/s_B/s_C)."""

    s: int
    alpha: Fraction
    beta: Fraction
    gamma: float
    c: float

    @property
    def alpha_beta(self) -> Fraction:
        """The product ``alpha * beta = r / T^2`` (independent of the side)."""
        return self.alpha * self.beta


@dataclass(frozen=True)
class SparsityParameters:
    """All Definition 2.1 quantities plus the derived per-side constants."""

    algorithm: str
    t: int
    r: int
    omega: float
    a: Tuple[int, ...]
    b: Tuple[int, ...]
    c: Tuple[int, ...]
    c_prime: Tuple[int, ...]
    s_A: int
    s_B: int
    s_C: int
    s: int
    side_A: SideParameters
    side_B: SideParameters
    side_C: SideParameters

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view used by the benchmark reports."""
        return {
            "algorithm": self.algorithm,
            "T": self.t,
            "r": self.r,
            "omega": self.omega,
            "s_A": self.s_A,
            "s_B": self.s_B,
            "s_C": self.s_C,
            "s": self.s,
            "alpha": float(self.side_A.alpha),
            "beta": float(self.side_A.beta),
            "gamma": self.side_A.gamma,
            "c": self.side_A.c,
            "gamma_C": self.side_C.gamma,
            "c_prime": list(self.c_prime),
        }


def side_parameters(t: int, r: int, s: int) -> SideParameters:
    """Compute alpha, beta, gamma and c from (T, r, s) for one side.

    Degenerate cases are handled explicitly: when ``alpha == 1`` (every
    multiplication touches exactly one block, as in the naive algorithm)
    gamma is 0 and the geometric schedule collapses; the constant ``c`` is
    then reported as ``log_T(alpha*beta)`` (its ``gamma -> 0`` limit).
    """
    if s <= 0:
        raise ValueError(f"sparsity must be positive, got {s}")
    alpha = Fraction(r, s)
    beta = Fraction(s, t * t)
    if alpha > 1:
        raise ValueError(
            f"alpha = r/s = {alpha} > 1: every multiplication must use at least one block"
        )
    if beta < 1:
        raise ValueError(f"beta = s/T^2 = {beta} < 1: the algorithm is not total")
    if alpha == 1 or beta == 1:
        gamma = 0.0
    else:
        gamma = math.log(1.0 / float(alpha)) / math.log(float(beta))
    alpha_beta = float(alpha * beta)
    if gamma >= 1.0:
        raise ValueError(
            f"gamma = {gamma} >= 1; this requires r <= T^2, which is not a fast algorithm"
        )
    denom = 1.0 - gamma
    c = (math.log(alpha_beta) / math.log(t)) / denom if alpha_beta > 1 else 0.0
    return SideParameters(s=s, alpha=alpha, beta=beta, gamma=gamma, c=c)


def sparsity_parameters(algorithm: BilinearAlgorithm) -> SparsityParameters:
    """Compute Definition 2.1 and the Section 4.3 constants for an algorithm."""
    a = tuple(int((algorithm.u[i] != 0).sum()) for i in range(algorithm.r))
    b = tuple(int((algorithm.v[i] != 0).sum()) for i in range(algorithm.r))
    c = tuple(int((algorithm.w[:, :, i] != 0).sum()) for i in range(algorithm.r))
    c_prime = tuple(
        int((algorithm.w[p, q, :] != 0).sum())
        for p in range(algorithm.t)
        for q in range(algorithm.t)
    )
    s_a, s_b, s_c = sum(a), sum(b), sum(c)
    if sum(c_prime) != s_c:
        raise AssertionError("internal error: sum of c'_j must equal s_C")
    return SparsityParameters(
        algorithm=algorithm.name,
        t=algorithm.t,
        r=algorithm.r,
        omega=algorithm.omega,
        a=a,
        b=b,
        c=c,
        c_prime=c_prime,
        s_A=s_a,
        s_B=s_b,
        s_C=s_c,
        s=max(s_a, s_b, s_c),
        side_A=side_parameters(algorithm.t, algorithm.r, s_a),
        side_B=side_parameters(algorithm.t, algorithm.r, s_b),
        side_C=side_parameters(algorithm.t, algorithm.r, s_c),
    )
