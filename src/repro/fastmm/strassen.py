"""Strassen's algorithm for 2 x 2 block matrices (paper Figure 1).

The seven multiplications and four output expressions are transcribed
verbatim from Figure 1 of the paper (Strassen 1969):

    M1 = A11 (B12 - B22)          C11 = M3 + M4 - M5 + M7
    M2 = (A21 + A22) B11          C12 = M1 + M5
    M3 = (A11 + A22)(B11 + B22)   C21 = M2 + M4
    M4 = A22 (B21 - B11)          C22 = M1 - M2 + M3 + M6
    M5 = (A11 + A12) B22
    M6 = (A21 - A11)(B11 + B12)
    M7 = (A12 - A22)(B21 + B22)

Block indices are zero-based in code: ``A11 -> (0, 0)``, ``A12 -> (0, 1)``,
``A21 -> (1, 0)``, ``A22 -> (1, 1)``.
"""

from __future__ import annotations

import numpy as np

from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["strassen_2x2"]


def strassen_2x2() -> BilinearAlgorithm:
    """Return Strassen's 7-multiplication algorithm as a bilinear algorithm."""
    u = np.zeros((7, 2, 2), dtype=np.int64)
    v = np.zeros((7, 2, 2), dtype=np.int64)
    w = np.zeros((2, 2, 7), dtype=np.int64)

    # M1 = A11 (B12 - B22)
    u[0, 0, 0] = 1
    v[0, 0, 1], v[0, 1, 1] = 1, -1
    # M2 = (A21 + A22) B11
    u[1, 1, 0], u[1, 1, 1] = 1, 1
    v[1, 0, 0] = 1
    # M3 = (A11 + A22)(B11 + B22)
    u[2, 0, 0], u[2, 1, 1] = 1, 1
    v[2, 0, 0], v[2, 1, 1] = 1, 1
    # M4 = A22 (B21 - B11)
    u[3, 1, 1] = 1
    v[3, 1, 0], v[3, 0, 0] = 1, -1
    # M5 = (A11 + A12) B22
    u[4, 0, 0], u[4, 0, 1] = 1, 1
    v[4, 1, 1] = 1
    # M6 = (A21 - A11)(B11 + B12)
    u[5, 1, 0], u[5, 0, 0] = 1, -1
    v[5, 0, 0], v[5, 0, 1] = 1, 1
    # M7 = (A12 - A22)(B21 + B22)
    u[6, 0, 1], u[6, 1, 1] = 1, -1
    v[6, 1, 0], v[6, 1, 1] = 1, 1

    # C11 = M3 + M4 - M5 + M7
    w[0, 0, 2], w[0, 0, 3], w[0, 0, 4], w[0, 0, 6] = 1, 1, -1, 1
    # C12 = M1 + M5
    w[0, 1, 0], w[0, 1, 4] = 1, 1
    # C21 = M2 + M4
    w[1, 0, 1], w[1, 0, 3] = 1, 1
    # C22 = M1 - M2 + M3 + M6
    w[1, 1, 0], w[1, 1, 1], w[1, 1, 2], w[1, 1, 5] = 1, -1, 1, 1

    return BilinearAlgorithm("strassen", 2, u, v, w)
