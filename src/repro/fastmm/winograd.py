"""Strassen–Winograd variant of the 2 x 2 fast multiplication algorithm.

Winograd's variant also uses 7 multiplications but only 15 additions (versus
Strassen's 18) when implemented with shared intermediate sums.  In the
bilinear (flattened) form required by the paper's circuit constructions the
shared sums are expanded, which *increases* the sparsity parameters of
Definition 2.1: s_A = s_B = s_C = 14 versus Strassen's 12.  The variant is
included precisely to demonstrate that the circuit constructions care about
sparsity rather than addition count — see experiment E3.

Flattened definition (P_i are the multiplications):

    P1 = A11 B11                          C11 = P1 + P2
    P2 = A12 B21                          C12 = P1 + P3 + P5 + P6
    P3 = (A11 - A21 - A22 + A12) B22      C21 = P1 - P4 + P6 + P7
    P4 = A22 (B11 - B12 + B22 - B21)      C22 = P1 + P5 + P6 + P7
    P5 = (A21 + A22)(B12 - B11)
    P6 = (A21 + A22 - A11)(B11 - B12 + B22)
    P7 = (A11 - A21)(B22 - B12)
"""

from __future__ import annotations

import numpy as np

from repro.fastmm.bilinear import BilinearAlgorithm

__all__ = ["winograd_2x2"]


def winograd_2x2() -> BilinearAlgorithm:
    """Return the Strassen–Winograd 7-multiplication algorithm."""
    u = np.zeros((7, 2, 2), dtype=np.int64)
    v = np.zeros((7, 2, 2), dtype=np.int64)
    w = np.zeros((2, 2, 7), dtype=np.int64)

    # P1 = A11 B11
    u[0, 0, 0] = 1
    v[0, 0, 0] = 1
    # P2 = A12 B21
    u[1, 0, 1] = 1
    v[1, 1, 0] = 1
    # P3 = (A11 - A21 - A22 + A12) B22
    u[2, 0, 0], u[2, 1, 0], u[2, 1, 1], u[2, 0, 1] = 1, -1, -1, 1
    v[2, 1, 1] = 1
    # P4 = A22 (B11 - B12 + B22 - B21)
    u[3, 1, 1] = 1
    v[3, 0, 0], v[3, 0, 1], v[3, 1, 1], v[3, 1, 0] = 1, -1, 1, -1
    # P5 = (A21 + A22)(B12 - B11)
    u[4, 1, 0], u[4, 1, 1] = 1, 1
    v[4, 0, 1], v[4, 0, 0] = 1, -1
    # P6 = (A21 + A22 - A11)(B11 - B12 + B22)
    u[5, 1, 0], u[5, 1, 1], u[5, 0, 0] = 1, 1, -1
    v[5, 0, 0], v[5, 0, 1], v[5, 1, 1] = 1, -1, 1
    # P7 = (A11 - A21)(B22 - B12)
    u[6, 0, 0], u[6, 1, 0] = 1, -1
    v[6, 1, 1], v[6, 0, 1] = 1, -1

    # C11 = P1 + P2
    w[0, 0, 0], w[0, 0, 1] = 1, 1
    # C12 = P1 + P3 + P5 + P6
    w[0, 1, 0], w[0, 1, 2], w[0, 1, 4], w[0, 1, 5] = 1, 1, 1, 1
    # C21 = P1 - P4 + P6 + P7
    w[1, 0, 0], w[1, 0, 3], w[1, 0, 5], w[1, 0, 6] = 1, -1, 1, 1
    # C22 = P1 + P5 + P6 + P7
    w[1, 1, 0], w[1, 1, 4], w[1, 1, 5], w[1, 1, 6] = 1, 1, 1, 1

    return BilinearAlgorithm("winograd", 2, u, v, w)
