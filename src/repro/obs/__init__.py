"""Observability: the process-wide telemetry subsystem (``repro.obs``).

One :class:`MetricsRegistry` per process (see :func:`get_registry`) holds
named counters, gauges and histograms with label support; ``span`` records
wall time; ``render()`` / ``snapshot()`` export Prometheus text and JSON.
Telemetry is a no-op by default — activate with ``REPRO_TELEMETRY=1``,
:func:`enable`, or ``EngineConfig(telemetry=True)``.  See the README's
"Observability" section for the registry model and the metric inventory.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
    counter_regressions,
    disable,
    enable,
    get_registry,
    set_registry,
)

#: Readable alias for the top-level ``repro.enable_telemetry`` re-export.
enable_telemetry = enable

__all__ = [
    "enable_telemetry",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "counter_regressions",
    "disable",
    "enable",
    "get_registry",
    "set_registry",
]
