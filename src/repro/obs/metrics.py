"""Process-wide metrics: named instruments, timing spans, and exporters.

The registry model is deliberately small:

* A :class:`MetricsRegistry` owns named instruments — :class:`Counter`
  (monotone totals), :class:`Gauge` (last-written values) and
  :class:`Histogram` (bucketed distributions with a bounded sample ring for
  percentiles) — each keyed by ``(name, sorted label items)``, so
  ``registry.counter("cache.hits", backend="sparse")`` and the same name
  under a different backend are independent series.
* ``registry.span(name, **labels)`` returns a context manager (usable as a
  decorator too) that records wall time into the histogram of that name.
* Exporters: :meth:`MetricsRegistry.render` emits Prometheus text format and
  :meth:`MetricsRegistry.snapshot` a JSON-ready dict (embedded in BENCH
  files, CLI ``--metrics`` output, and the future ``/stats`` endpoint).
* Worker aggregation: :meth:`MetricsRegistry.drain` atomically returns and
  resets the registry's contents as a picklable *delta*;
  :meth:`MetricsRegistry.merge` folds a delta into another registry, with
  optional extra labels (the evaluation service tags ``worker_id``).  A
  delta rides exactly one message and is merged exactly once, so parent-side
  totals stay monotone across worker kills and re-dispatches.

Telemetry is **off by default**: the process-global registry returned by
:func:`get_registry` is a shared :class:`NullRegistry` whose instruments and
spans are allocation-free singletons, so instrumented hot paths cost one
attribute check when disabled.  ``REPRO_TELEMETRY=1`` in the environment (at
import), :func:`enable` (e.g. via ``EngineConfig(telemetry=True)``), or
:func:`set_registry` activate a real registry.  ``REPRO_TELEMETRY_DEBUG=1``
additionally turns on the expensive per-layer backend spans
(``registry.debug``).
"""

from __future__ import annotations

import bisect
import functools
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "counter_regressions",
    "disable",
    "enable",
    "get_registry",
    "set_registry",
]

#: Default histogram bucket upper bounds, tuned for wall-time seconds — the
#: dominant histogram use (spans).  Callers measuring something else pass
#: explicit ``buckets=`` to :meth:`MetricsRegistry.histogram`.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 1.0, 2.5, 10.0, 60.0,
)

#: Bound on the per-histogram sample ring backing percentile queries: the
#: newest samples overwrite the oldest, so percentiles reflect recent
#: behaviour and memory stays O(1) per series however long the process runs.
_SAMPLE_RING = 2048

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: dict) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _series_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


# ------------------------------------------------------------------ instruments
class Counter:
    """A monotone total.  ``inc`` only; negative increments are rejected."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-written value (queue depth, worker count, ...)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Bucketed distribution plus a bounded ring of recent raw samples.

    Buckets (cumulative in the Prometheus export) come from fixed upper
    bounds chosen at creation; percentiles are computed from the sample ring
    — exact while fewer than :data:`_SAMPLE_RING` observations have been
    made, a sliding-window estimate afterwards.
    """

    __slots__ = (
        "_lock", "bounds", "bucket_counts", "count", "total",
        "min", "max", "_samples", "_ring_next",
    )

    def __init__(
        self, lock: threading.RLock, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self._lock = lock
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # final slot: +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._ring_next = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._observe_locked(value)

    def _observe_locked(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        if len(self._samples) < _SAMPLE_RING:
            self._samples.append(value)
        else:
            self._samples[self._ring_next] = value
            self._ring_next = (self._ring_next + 1) % _SAMPLE_RING

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (0..100) of the sample ring; None when empty.

        Linear interpolation between closest ranks: a single sample is every
        percentile of itself, and q=0 / q=100 are the ring min / max.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._samples:
                return None
            data = sorted(self._samples)
        position = (len(data) - 1) * (q / 100.0)
        low = int(position)
        high = min(low + 1, len(data) - 1)
        fraction = position - low
        return data[low] + (data[high] - data[low]) * fraction

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self.total / self.count if self.count else None

    # ------------------------------------------------- delta (worker) protocol
    def _state_locked(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
        }

    def _reset_locked(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples = []
        self._ring_next = 0

    def merge_state(self, state: dict) -> None:
        """Fold a drained delta into this histogram (same-bounds fast path)."""
        with self._lock:
            self.count += state["count"]
            self.total += state["total"]
            for extreme, better in (("min", min), ("max", max)):
                other = state[extreme]
                if other is not None:
                    mine = getattr(self, extreme)
                    setattr(
                        self, extreme, other if mine is None else better(mine, other)
                    )
            if list(self.bounds) == state["bounds"]:
                for index, n in enumerate(state["buckets"]):
                    self.bucket_counts[index] += n
            else:  # mismatched layouts: re-bucket from the samples we have
                for value in state["samples"]:
                    self.bucket_counts[
                        bisect.bisect_left(self.bounds, value)
                    ] += 1
            for value in state["samples"]:
                if len(self._samples) < _SAMPLE_RING:
                    self._samples.append(value)
                else:
                    self._samples[self._ring_next] = value
                    self._ring_next = (self._ring_next + 1) % _SAMPLE_RING


class Span:
    """Times a block (``with``) or a function (decorator) into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)

    def __call__(self, func):
        histogram = self._histogram

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                histogram.observe(time.perf_counter() - start)

        return wrapper


# ------------------------------------------------------------------- registry
class MetricsRegistry:
    """Thread-safe home of every instrument, with exporters and delta merge."""

    enabled = True

    def __init__(self, debug: Optional[bool] = None) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        #: Expensive instrumentation switch (per-layer backend spans).
        self.debug = (
            debug
            if debug is not None
            else os.environ.get("REPRO_TELEMETRY_DEBUG") == "1"
        )

    # ------------------------------------------------------------- instruments
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_items(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(self._lock))
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_items(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(self._lock))
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = (name, _label_items(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(self._lock, buckets)
                )
        return instrument

    def span(self, name: str, **labels) -> Span:
        """A fresh timing span over ``histogram(name, **labels)``."""
        return Span(self.histogram(name, **labels))

    # ------------------------------------------------------------------ reads
    def value(self, name: str, **labels) -> int:
        """Current value of one counter series (0 if never incremented)."""
        instrument = self._counters.get((name, _label_items(labels)))
        return instrument.value if instrument is not None else 0

    def total(self, name: str) -> int:
        """Sum of a counter across every label set (e.g. over workers)."""
        with self._lock:
            return sum(
                counter.value
                for (counter_name, _), counter in self._counters.items()
                if counter_name == name
            )

    def series(self, name: str) -> Dict[str, int]:
        """Counter values of ``name`` keyed by rendered label set."""
        with self._lock:
            return {
                _series_key(name, labels): counter.value
                for (counter_name, labels), counter in self._counters.items()
                if counter_name == name
            }

    # ------------------------------------------------------------- aggregation
    def drain(self) -> dict:
        """Atomically return-and-reset counters/histograms (gauges: report only).

        The returned delta is a plain picklable dict; merging it elsewhere
        via :meth:`merge` transfers exactly the activity since the previous
        drain, which is what lets service workers piggyback their metrics on
        result messages without double counting.
        """
        with self._lock:
            counters = []
            for (name, labels), counter in self._counters.items():
                if counter.value:
                    counters.append((name, labels, counter.value))
                    counter.value = 0
            gauges = [
                (name, labels, gauge.value)
                for (name, labels), gauge in self._gauges.items()
            ]
            histograms = []
            for (name, labels), histogram in self._histograms.items():
                if histogram.count:
                    histograms.append((name, labels, histogram._state_locked()))
                    histogram._reset_locked()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, delta: Optional[dict], extra_labels: Optional[dict] = None) -> None:
        """Fold a :meth:`drain` delta in, tagging every series with extra labels.

        ``None`` (the piggyback slot of a result message with nothing to
        report) is a no-op.
        """
        if not delta:
            return
        extra = dict(extra_labels) if extra_labels else {}
        for name, labels, value in delta.get("counters", ()):
            self.counter(name, **{**dict(labels), **extra}).inc(value)
        for name, labels, value in delta.get("gauges", ()):
            self.gauge(name, **{**dict(labels), **extra}).set(value)
        for name, labels, state in delta.get("histograms", ()):
            self.histogram(
                name, buckets=state["bounds"], **{**dict(labels), **extra}
            ).merge_state(state)

    # -------------------------------------------------------------- exporters
    def snapshot(self) -> dict:
        """A JSON-ready snapshot: every series, histogram summary statistics."""
        with self._lock:
            counters = {
                _series_key(name, labels): counter.value
                for (name, labels), counter in sorted(self._counters.items())
            }
            gauges = {
                _series_key(name, labels): gauge.value
                for (name, labels), gauge in sorted(self._gauges.items())
            }
            histograms = {}
            for (name, labels), histogram in sorted(self._histograms.items()):
                histograms[_series_key(name, labels)] = {
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "mean": histogram.mean,
                    "p50": histogram.percentile(50),
                    "p90": histogram.percentile(90),
                    "p99": histogram.percentile(99),
                }
        return {
            "version": __version__,
            "telemetry": True,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render(self) -> str:
        """Prometheus text exposition of every series."""
        lines: List[str] = [
            "# TYPE repro_build_info gauge",
            f'repro_build_info{{version="{__version__}"}} 1',
        ]
        with self._lock:
            counter_items = sorted(self._counters.items())
            gauge_items = sorted(self._gauges.items())
            histogram_items = sorted(self._histograms.items())
        seen_types = set()

        def _declare(metric: str, kind: str) -> None:
            if metric not in seen_types:
                seen_types.add(metric)
                lines.append(f"# TYPE {metric} {kind}")

        for (name, labels), counter in counter_items:
            metric = f"repro_{_sanitize(name)}_total"
            _declare(metric, "counter")
            lines.append(f"{metric}{_label_text(labels)} {counter.value}")
        for (name, labels), gauge in gauge_items:
            metric = f"repro_{_sanitize(name)}"
            _declare(metric, "gauge")
            lines.append(f"{metric}{_label_text(labels)} {gauge.value}")
        for (name, labels), histogram in histogram_items:
            metric = f"repro_{_sanitize(name)}"
            _declare(metric, "histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.bucket_counts):
                cumulative += count
                lines.append(
                    f"{metric}_bucket{_label_text(labels, le=repr(bound))} {cumulative}"
                )
            lines.append(
                f'{metric}_bucket{_label_text(labels, le="+Inf")} {histogram.count}'
            )
            lines.append(f"{metric}_sum{_label_text(labels)} {histogram.total}")
            lines.append(f"{metric}_count{_label_text(labels)} {histogram.count}")
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _label_text(labels: LabelItems, **extra: str) -> str:
    pairs = [(k, v) for k, v in labels] + sorted(extra.items())
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


# --------------------------------------------------------------- the null path
class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __call__(self, func):
        return func


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value) -> None:
        return None

    def inc(self, amount=1) -> None:
        return None

    def dec(self, amount=1) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def observe(self, value: float) -> None:
        return None

    def percentile(self, q: float) -> None:
        return None

    def merge_state(self, state: dict) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled default: shared no-op singletons, no allocation per span."""

    enabled = False
    debug = False

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, **labels) -> _NullSpan:
        return _NULL_SPAN

    def value(self, name: str, **labels) -> int:
        return 0

    def total(self, name: str) -> int:
        return 0

    def series(self, name: str) -> dict:
        return {}

    def drain(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}

    def merge(self, delta: dict, extra_labels: Optional[dict] = None) -> None:
        return None

    def snapshot(self) -> dict:
        return {
            "version": __version__,
            "telemetry": False,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def render(self) -> str:
        return (
            "# TYPE repro_build_info gauge\n"
            f'repro_build_info{{version="{__version__}"}} 1\n'
        )


_NULL_REGISTRY = NullRegistry()
_REGISTRY_LOCK = threading.Lock()
_REGISTRY = (
    MetricsRegistry() if os.environ.get("REPRO_TELEMETRY") == "1" else _NULL_REGISTRY
)


def get_registry():
    """The process-global registry (a shared no-op unless telemetry is on)."""
    return _REGISTRY


def set_registry(registry):
    """Install a registry (or the null registry via None); returns the old one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        _REGISTRY = registry if registry is not None else _NULL_REGISTRY
    return previous


def enable(reset: bool = False) -> MetricsRegistry:
    """Activate process-global telemetry; returns the live registry.

    Idempotent: an already-enabled registry is kept (so a second engine does
    not wipe the first one's series) unless ``reset=True`` forces a fresh
    registry.
    """
    global _REGISTRY
    with _REGISTRY_LOCK:
        if reset or not _REGISTRY.enabled:
            _REGISTRY = MetricsRegistry()
        return _REGISTRY


def disable():
    """Deactivate process-global telemetry; returns the replaced registry."""
    return set_registry(None)


def counter_regressions(before: dict, after: dict) -> List[str]:
    """Counter series that went *backwards* between two snapshots.

    Counters are monotone by contract — a series whose value shrinks between
    two :meth:`MetricsRegistry.snapshot` calls means lost or double-reset
    state (e.g. a worker delta merged twice, or a registry silently
    replaced).  The soak harness snapshots periodically and asserts this
    returns empty.  A series absent from ``after`` is also a regression:
    registries never drop series.
    """
    regressions: List[str] = []
    after_counters = after.get("counters", {})
    for key, value in before.get("counters", {}).items():
        current = after_counters.get(key)
        if current is None:
            regressions.append(f"{key}: series vanished (was {value})")
        elif current < value:
            regressions.append(f"{key}: {value} -> {current}")
    return regressions
