"""Static analysis for the reproduction: prove properties without running.

Two prongs, both wired into CI:

* :mod:`repro.statics.verifier` — abstract interpretation over
  :class:`~repro.circuits.circuit.ThresholdCircuit` and the compiled plan
  forms: per-gate signed interval analysis of accumulator magnitudes,
  template-provenance re-derivation, CSR/layer-plan well-formedness and
  unreachable-gate reporting.  Exposed as ``repro verify`` on the CLI and
  as the optional ``EngineConfig(verify_compile=True)`` debug gate.
* :mod:`repro.statics.lint` — an AST lint over the engine's own source
  (``python -m repro.statics.lint src/repro``) with rules distilled from
  the bug classes previous PRs fixed dynamically: bare ``assert`` in
  runtime paths, unpaired ``SharedMemory`` lifecycles, dispatcher state
  touched outside the lock, wall-clock deadline arithmetic, and
  unpicklable members on pool-boundary classes.
"""

from repro.statics.verifier import (
    GateIntervals,
    StaticReport,
    StaticVerificationError,
    gate_intervals,
    provenance_issues,
    structure_issues,
    unreachable_gates,
    verify_circuit,
)

__all__ = [
    "GateIntervals",
    "StaticReport",
    "StaticVerificationError",
    "gate_intervals",
    "provenance_issues",
    "structure_issues",
    "unreachable_gates",
    "verify_circuit",
]
