"""AST lint for the engine source: the PR 5–7 bug classes, statically.

Every rule here is a bug class a previous PR fixed *dynamically* — found
by a failing run, a wedged service, or a soak — turned into a static
check so the class cannot regress:

* **REP001** — bare ``assert`` in engine runtime paths (dies under
  ``python -O``; the PR 5 scheduler fix).
* **REP002** — a ``SharedMemory(create=True)`` whose segment is not
  lexically paired with ``close()``/``unlink()`` or ownership-transferred
  to a release site (leaked segments survive the process).
* **REP003** — dispatcher-state fields (registered per class in
  :mod:`repro.statics.registry`) touched outside ``with self._lock``
  (the PR 7 dispatch-after-release race).
* **REP004** — ``time.time()`` arithmetic for deadlines (wall clock
  jumps; deadlines must use ``time.monotonic()``).
* **REP005** — pool-boundary program classes growing known-unpicklable
  members (lambdas, generators, thread primitives, open files, weakrefs).
* **REP006** — a temp file/directory created for the write-to-temp +
  ``os.replace`` publication pattern (registered factories:
  ``tempfile.mkstemp``/``mkdtemp``) in a function with no cleanup call
  (``os.unlink``/``shutil.rmtree``/...): publication covers only the
  success path, so every failure leaks staging litter (the disk
  artifact-store crash-safety contract).

Run as ``python -m repro.statics.lint src/repro``.  Suppress a finding
with a same-line ``# statics: ignore[REP004]`` comment (bare
``# statics: ignore`` suppresses every rule on the line); suppressions
are deliberate, visible markers that a human judged the exception sound.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.statics.registry import (
    GUARDED_CLASSES,
    POOL_BOUNDARY_CLASSES,
    TEMP_ARTIFACT_FACTORIES,
    TEMP_CLEANUP_CALLS,
    LockSpec,
)

__all__ = ["Finding", "lint_source", "lint_paths", "main", "ALL_CODES"]

ALL_CODES = ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006")

_SUPPRESS_RE = re.compile(
    r"#\s*statics:\s*ignore(?:\[([A-Za-z0-9,\s]+)\])?"
)
_DEADLINE_NAME_RE = re.compile(
    r"deadline|expires|expiry|due|cutoff|_at$", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = all codes)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            table[lineno] = None
        else:
            table[lineno] = {
                code.strip().upper() for code in match.group(1).split(",")
            }
    return table


def _is_suppressed(
    finding: Finding, table: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = table.get(finding.line, "missing")
    if codes == "missing":
        return False
    return codes is None or finding.code in codes


# --------------------------------------------------------------------------
# Shared AST helpers.
# --------------------------------------------------------------------------


def _is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee ('' when not a plain name/attribute)."""
    parts: List[str] = []
    target: ast.AST = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return ""


def _attach_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._statics_parent = parent  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_statics_parent", None)


# --------------------------------------------------------------------------
# REP001 — bare assert in engine runtime paths.
# --------------------------------------------------------------------------


def _check_bare_assert(tree: ast.Module, path: str) -> List[Finding]:
    if "engine" not in Path(path).parts:
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    node.col_offset,
                    "REP001",
                    "bare assert in an engine runtime path is stripped under "
                    "python -O; raise an explicit error instead",
                )
            )
    return findings


# --------------------------------------------------------------------------
# REP002 — SharedMemory lifecycle pairing.
# --------------------------------------------------------------------------


def _is_shm_create(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node)
    if not name.endswith("SharedMemory"):
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return bool(
                isinstance(kw.value, ast.Constant) and kw.value.value is True
            )
    if len(node.args) >= 2:
        arg = node.args[1]
        return isinstance(arg, ast.Constant) and arg.value is True
    return False


def _module_has_release_site(tree: ast.Module) -> bool:
    """True when the module calls both ``.close()`` and ``.unlink()`` somewhere."""
    seen = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("close", "unlink"):
                seen.add(node.func.attr)
    return {"close", "unlink"} <= seen


def _check_shared_memory(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    module_releases = _module_has_release_site(tree)

    def flag(node: ast.AST, detail: str) -> None:
        findings.append(
            Finding(
                path,
                node.lineno,
                node.col_offset,
                "REP002",
                "SharedMemory(create=True) " + detail,
            )
        )

    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # Per-name facts gathered over the whole function body: releases,
        # ownership transfers (attribute assignment / return of the name).
        closes: Set[str] = set()
        unlinks: Set[str] = set()
        transferred: Set[str] = set()
        creates: List[tuple] = []  # (node, kind, name)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                target = node.func.value
                if isinstance(target, ast.Name):
                    if node.func.attr == "close":
                        closes.add(target.id)
                    elif node.func.attr == "unlink":
                        unlinks.add(target.id)
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Name):
                    if any(
                        isinstance(t, ast.Attribute) for t in node.targets
                    ):
                        transferred.add(node.value.id)
                if _is_shm_create(node.value):
                    bound = node.targets[0] if len(node.targets) == 1 else None
                    if isinstance(bound, ast.Name):
                        creates.append((node, "local", bound.id))
                    elif isinstance(bound, ast.Attribute):
                        creates.append((node, "attribute", bound.attr))
                    else:
                        flag(node, "result is discarded; the segment leaks")
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                transferred.add(node.value.id)
            elif _is_shm_create(node) and not isinstance(
                _parent(node), (ast.Assign, ast.AnnAssign)
            ):
                flag(node, "result is discarded; the segment leaks")

        for node, kind, name in creates:
            if kind == "local":
                if name in closes and name in unlinks:
                    continue
                if name in transferred and module_releases:
                    continue
                flag(
                    node,
                    f"bound to '{name}' but the function neither pairs it "
                    "with close()+unlink() nor transfers ownership to a "
                    "release site",
                )
            else:  # attribute target: owner object must have a release site
                if not module_releases:
                    flag(
                        node,
                        f"stored on an attribute '{name}' but this module "
                        "has no close()+unlink() release site",
                    )
    return findings


# --------------------------------------------------------------------------
# REP003 — guarded dispatcher state only under the lock.
# --------------------------------------------------------------------------


class _LockWalker(ast.NodeVisitor):
    """Flags guarded ``self.<field>`` access outside ``with self.<lock>``."""

    def __init__(self, spec: LockSpec, path: str, assume_locked: bool) -> None:
        self.spec = spec
        self.path = path
        self.locked = assume_locked
        self.findings: List[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        takes_lock = any(
            _is_self_attr(item.context_expr, self.spec.lock_attr)
            for item in node.items
        )
        if takes_lock and not self.locked:
            self.locked = True
            for child in node.body:
                self.visit(child)
            self.locked = False
            # The with-items themselves evaluate before the lock is held.
            for item in node.items:
                self.visit(item)
        else:
            self.generic_visit(node)

    def _visit_nested_scope(self, node: ast.AST) -> None:
        # A closure or lambda defined here may run on another thread (the
        # heartbeat, a future callback) long after the lock is released —
        # never assume the definition site's lock state inside it.
        was_locked = self.locked
        self.locked = False
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.locked = was_locked

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested_scope(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.locked
            and _is_self_attr(node)
            and node.attr in self.spec.guarded_fields
        ):
            self.findings.append(
                Finding(
                    self.path,
                    node.lineno,
                    node.col_offset,
                    "REP003",
                    f"dispatcher state 'self.{node.attr}' touched outside "
                    f"'with self.{self.spec.lock_attr}'",
                )
            )
        self.generic_visit(node)


def _check_lock_discipline(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        spec = GUARDED_CLASSES.get(node.name)
        if spec is None:
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in spec.exempt:
                continue
            walker = _LockWalker(
                spec, path, assume_locked=method.name in spec.assume_locked
            )
            for child in method.body:
                walker.visit(child)
            findings.extend(walker.findings)
    return findings


# --------------------------------------------------------------------------
# REP004 — wall-clock arithmetic for deadlines.
# --------------------------------------------------------------------------


def _is_wallclock_call(node: ast.AST, bare_time_imported: bool) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node)
    if name == "time.time":
        return True
    return bare_time_imported and name == "time"


def _check_wallclock(tree: ast.Module, path: str) -> List[Finding]:
    bare_time = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "time"
        and any(alias.name == "time" for alias in node.names)
        for node in ast.walk(tree)
    )
    findings: List[Finding] = []
    flagged: Set[int] = set()

    def flag(node: ast.AST, detail: str) -> None:
        if id(node) in flagged:
            return
        flagged.add(id(node))
        findings.append(
            Finding(
                path,
                node.lineno,
                node.col_offset,
                "REP004",
                "wall-clock time.time() " + detail + "; use time.monotonic() "
                "for deadlines (wall clock can jump backwards)",
            )
        )

    for node in ast.walk(tree):
        if not _is_wallclock_call(node, bare_time):
            continue
        ancestor = _parent(node)
        while ancestor is not None and not isinstance(
            ancestor, (ast.stmt, ast.Lambda)
        ):
            if isinstance(ancestor, (ast.BinOp, ast.Compare)):
                flag(node, "used in arithmetic/comparison")
                break
            ancestor = _parent(ancestor)
        else:
            if isinstance(ancestor, ast.Assign):
                for target in ancestor.targets:
                    name = (
                        target.id
                        if isinstance(target, ast.Name)
                        else target.attr
                        if isinstance(target, ast.Attribute)
                        else ""
                    )
                    if name and _DEADLINE_NAME_RE.search(name):
                        flag(node, f"assigned to deadline-like name '{name}'")
                        break
    return findings


# --------------------------------------------------------------------------
# REP005 — unpicklable members on pool-boundary classes.
# --------------------------------------------------------------------------

_THREAD_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore"}
)


def _unpicklable_reason(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name == "open":
            return "an open file handle"
        head, _, tail = name.rpartition(".")
        if head == "threading" and tail in _THREAD_PRIMITIVES:
            return f"a threading.{tail}"
        if not head and tail in _THREAD_PRIMITIVES:
            return f"a {tail} primitive"
        if head == "weakref" or name.startswith("weakref."):
            return "a weak reference"
    return None


def _check_pool_boundary(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name not in POOL_BOUNDARY_CLASSES:
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            if not any(_is_self_attr(t) for t in sub.targets):
                continue
            reason = _unpicklable_reason(sub.value)
            if reason:
                attr = next(
                    t.attr
                    for t in sub.targets
                    if isinstance(t, ast.Attribute) and _is_self_attr(t)
                )
                findings.append(
                    Finding(
                        path,
                        sub.lineno,
                        sub.col_offset,
                        "REP005",
                        f"pool-boundary class '{node.name}' stores {reason} "
                        f"on 'self.{attr}'; it will not survive pickling to "
                        "a worker",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# REP006 — temp-write publication pattern must clean up after itself.
# --------------------------------------------------------------------------


def _check_temp_cleanup(tree: ast.Module, path: str) -> List[Finding]:
    """Flag temp-artifact factories in functions with no cleanup call.

    The write-to-temp + ``os.replace`` pattern is only crash-safe if the
    failure path removes the staging file/dir: ``os.replace`` consumes it
    on success, but an exception between creation and publication leaves
    litter unless an except/finally cleans up.  The rule is lexical (like
    REP002): the factory and at least one registered cleanup call must
    appear in the same function.  Pure-scratch uses (temp never published)
    pass the same way — cleanup is required, publication is not.
    """
    findings: List[Finding] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        factory_calls: List[tuple] = []
        has_cleanup = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in TEMP_ARTIFACT_FACTORIES:
                factory_calls.append((node, name))
            elif name in TEMP_CLEANUP_CALLS:
                has_cleanup = True
        if has_cleanup:
            continue
        for node, name in factory_calls:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    node.col_offset,
                    "REP006",
                    f"temp artifact from {name}() is never cleaned up in "
                    "this function (os.replace covers only the success "
                    "path); pair it with os.unlink/shutil.rmtree in an "
                    "except/finally",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

_CHECKS = {
    "REP001": _check_bare_assert,
    "REP002": _check_shared_memory,
    "REP003": _check_lock_discipline,
    "REP004": _check_wallclock,
    "REP005": _check_pool_boundary,
    "REP006": _check_temp_cleanup,
}


def lint_source(
    source: str, path: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one source string; returns unsuppressed findings sorted by line."""
    tree = ast.parse(source, filename=path)
    _attach_parents(tree)
    codes = tuple(select) if select is not None else ALL_CODES
    table = _suppressions(source)
    findings: List[Finding] = []
    for code in codes:
        findings.extend(_CHECKS[code](tree, path))
    findings = [f for f in findings if not _is_suppressed(f, table)]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            yield path


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint files and directories (recursively); returns all findings."""
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), select=select))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics.lint",
        description="Project-specific AST lint for the engine source.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    args = parser.parse_args(argv)
    select = (
        [code.strip().upper() for code in args.select.split(",")]
        if args.select
        else None
    )
    if select:
        unknown = [code for code in select if code not in _CHECKS]
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")
    findings = lint_paths(args.paths, select=select)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
