"""Project-specific declarations driving the engine source lint.

The lint rules in :mod:`repro.statics.lint` are generic AST walks; this
module holds the *project knowledge* they consume — which classes own a
dispatcher lock and which of their fields it guards, which helpers are
documented lock-held, and which classes cross the multiprocessing pool
boundary and therefore must stay picklable.  Keeping the knowledge here
(rather than inline in the rules) means adding a guarded field or a new
pool-boundary program is a one-line registry edit that the lint then
enforces everywhere, and the self-test fixtures can trigger the rules
simply by defining classes with the registered names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

__all__ = [
    "LockSpec",
    "GUARDED_CLASSES",
    "POOL_BOUNDARY_CLASSES",
    "TEMP_ARTIFACT_FACTORIES",
    "TEMP_CLEANUP_CALLS",
]


@dataclass(frozen=True)
class LockSpec:
    """Lock discipline for one class: which fields which lock guards.

    ``assume_locked`` lists methods documented as lock-held helpers (their
    callers hold the lock, so bare field access inside them is fine);
    ``exempt`` lists methods that run before the lock exists or after the
    object is single-threaded again (``__init__`` and friends).
    """

    lock_attr: str = "_lock"
    guarded_fields: FrozenSet[str] = field(default_factory=frozenset)
    assume_locked: FrozenSet[str] = field(default_factory=frozenset)
    exempt: FrozenSet[str] = field(default_factory=frozenset)


#: Classes whose mutable dispatcher state must only be touched under the
#: registered lock.  PR 7's dispatcher race (a dead-worker sweep failing a
#: sibling's job, then dispatching against the released job) is exactly the
#: class of bug this catches before it runs.
GUARDED_CLASSES: Dict[str, LockSpec] = {
    "EvaluationService": LockSpec(
        lock_attr="_lock",
        guarded_fields=frozenset(
            {
                "_tasks",
                "_retries",
                "_serial_backlog",
                "_deadline_jobs",
                "_slot_respawns",
                "_workers",
                "_outstanding",
                "_resolutions",
                "_disk_resident",
            }
        ),
        # Documented lock-held helpers: every caller already holds _lock
        # (the docstrings in engine/service.py say so explicitly).
        assume_locked=frozenset(
            {
                "_dispatch",
                "_retry_later",
                "_task_attempt_failed",
                "_payload_for",
                "_install_if_needed",
                "_artifact_resident",
                "_respawn_worker",
                "_enter_degraded",
                "_convert_job_to_pickle",
                "_on_tick",
                "_check_workers",
                "_handle_result",
                "_complete_task",
                "_fail_job",
                "_job_closed",
                "_key_for",
            }
        ),
        exempt=frozenset({"__init__"}),
    ),
}


#: Classes whose instances are shipped to pool workers (installed once per
#: worker by the evaluation service).  They must not grow members that the
#: default pickle protocol rejects — PR 5 hit this the hard way.
POOL_BOUNDARY_CLASSES: FrozenSet[str] = frozenset(
    {
        "_MatrixProgram",
        "_ExactProgram",
        "_TemplateProgram",
        "_TemplateExactProgram",
    }
)


#: Calls that create a temp file/directory for the write-to-temp +
#: ``os.replace`` publication pattern (the disk artifact store, atomic
#: circuit dumps).  REP006 requires any function calling one of these to
#: also contain a cleanup call (below): publication via ``os.replace``
#: covers only the success path, and a function with no cleanup leaks its
#: staging litter on every failure.
TEMP_ARTIFACT_FACTORIES: FrozenSet[str] = frozenset(
    {"tempfile.mkstemp", "tempfile.mkdtemp", "mkstemp", "mkdtemp"}
)

#: Calls REP006 accepts as cleaning up a temp artifact.
TEMP_CLEANUP_CALLS: FrozenSet[str] = frozenset(
    {
        "os.unlink",
        "os.remove",
        "os.rmdir",
        "shutil.rmtree",
        "unlink",
        "remove",
        "rmtree",
    }
)
