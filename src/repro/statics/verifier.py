"""Abstract-interpretation verifier for threshold circuits and plans.

The runtime's overflow analysis (:func:`~repro.circuits.store.csr_max_magnitude`)
is a *global worst case*: every source is assumed to contribute its full
weight magnitude.  The verifier runs a genuine abstract interpretation
instead — every node carries an abstract value in ``{0}``, ``{1}`` or
``{0, 1}`` and every gate's accumulator a signed interval derived from its
sources' abstract values — which is provably tighter (a negative weight can
never push the sum *up*; a constant-0 source contributes nothing) while
never disagreeing with the runtime's safety verdicts in the unsafe
direction.  On top of the intervals the verifier checks:

* **structure** — CSR well-formedness (offsets monotone and covering,
  sources strictly before their gate, recorded depths consistent with the
  wiring, declared outputs in range);
* **provenance** — every :class:`~repro.circuits.template.TemplateBlock`
  re-derives, wire for wire, from its
  :class:`~repro.circuits.template.CompiledTemplate` and parameter rows
  (deeper than :func:`~repro.circuits.simulator.build_template_plan`,
  which validates the tiling but trusts the wires);
* **reachability** — gates that cannot influence any declared output;
* **plans** — :func:`build_layer_plan` / :func:`build_template_plan`
  cross-checks: both plan forms must exist where provenance says they can,
  agree on ``max_magnitude`` / ``int64_safe`` / ``float64_exact``, and be
  well-formed (strictly increasing layer depths, every gate planned
  exactly once, indices in range, segments tiling the gate range).

Everything is exact: interval arithmetic runs on int64 when the worst case
is certified to fit and on Python ints otherwise, so a huge-weight circuit
can never silently wrap the analysis that is supposed to catch wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.circuits.circuit import ThresholdCircuit
from repro.circuits.simulator import (
    _INT64_SAFE_LIMIT,
    LayerPlan,
    ResidualSegment,
    TemplatePlan,
    build_layer_plan,
    build_template_plan,
)
from repro.circuits.store import (
    Columns,
    csr_max_magnitude,
    iter_depth_layers,
    segment_max,
    segment_sum,
)

__all__ = [
    "GateIntervals",
    "StaticReport",
    "StaticVerificationError",
    "gate_intervals",
    "provenance_issues",
    "structure_issues",
    "unreachable_gates",
    "verify_circuit",
]

#: The simulator's whole-circuit int64-safety bound (re-exported so the
#: verifier and the runtime can never hold two different limits).
INT64_SAFE_LIMIT: int = _INT64_SAFE_LIMIT
_FLOAT64_EXACT_LIMIT: int = 1 << 53
#: Above this certified worst case the interval arithmetic leaves int64
#: for exact Python ints (same guard band as ``csr_max_magnitude``).
_INT64_ANALYSIS_LIMIT: int = 1 << 61
_SAMPLE_LIMIT = 8


class StaticVerificationError(ValueError):
    """A circuit or plan failed static verification."""


@dataclass
class StaticReport:
    """Outcome of :func:`verify_circuit`: issues, warnings and verdicts."""

    target: str = ""
    issues: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no issues were found (warnings do not fail a report)."""
        return not self.issues

    def raise_if_failed(self) -> None:
        """Raise :class:`StaticVerificationError` listing all issues."""
        if self.issues:
            raise StaticVerificationError(
                f"static verification failed for {self.target or 'circuit'}:\n"
                + "\n".join(self.issues)
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (plain Python scalars only)."""
        return {
            "target": self.target,
            "ok": self.ok,
            "issues": list(self.issues),
            "warnings": list(self.warnings),
            "info": dict(self.info),
        }


@dataclass
class GateIntervals:
    """Per-gate signed accumulator intervals from abstract interpretation.

    ``acc_lo[g] <= sum_j w_j * x_j <= acc_hi[g]`` holds for gate ``g`` on
    *every* 0/1 input assignment; ``val_lo``/``val_hi`` bound each node's
    value (a node with ``val_lo == val_hi`` is a constant).  Arrays are in
    gate insertion order (int64 on the fast path, exact object dtype when
    the worst case leaves the certified int64 range).
    """

    acc_lo: np.ndarray
    acc_hi: np.ndarray
    val_lo: np.ndarray
    val_hi: np.ndarray
    max_magnitude: int
    constant_gates: np.ndarray  # absolute node ids, ascending

    @property
    def int64_safe(self) -> bool:
        """The interval analogue of :attr:`LayerPlan.int64_safe` (>= as tight)."""
        return self.max_magnitude < INT64_SAFE_LIMIT


def _sample(values: np.ndarray) -> List[int]:
    return [int(v) for v in values[:_SAMPLE_LIMIT].tolist()]


# --------------------------------------------------------------------------
# Structure: CSR well-formedness, depth consistency, outputs.
# --------------------------------------------------------------------------


def structure_issues(circuit: ThresholdCircuit) -> List[str]:
    """Vectorized well-formedness check of a circuit's columnar store."""
    issues: List[str] = []
    cols = circuit.columnar()
    n_inputs = circuit.n_inputs
    n_gates = cols.n_gates

    offsets = cols.offsets
    if len(offsets) != n_gates + 1 or (n_gates >= 0 and int(offsets[0]) != 0):
        issues.append(
            f"offsets array has {len(offsets)} entries for {n_gates} gates "
            "(expected n_gates + 1 starting at 0)"
        )
        return issues
    fan_ins = np.diff(offsets)
    if fan_ins.size and int(fan_ins.min()) < 0:
        issues.append("offsets are not non-decreasing")
        return issues
    if int(offsets[-1]) != cols.n_edges:
        issues.append(
            f"offsets cover {int(offsets[-1])} wires but the store holds "
            f"{cols.n_edges}"
        )
        return issues
    if len(cols.thresholds) != n_gates:
        issues.append(
            f"{len(cols.thresholds)} thresholds for {n_gates} gates"
        )
        return issues
    if len(cols.weights) != cols.n_edges:
        issues.append(f"{len(cols.weights)} weights for {cols.n_edges} wires")
        return issues

    sources = cols.sources
    if sources.size:
        if int(sources.min()) < 0:
            issues.append("a gate references a negative node id")
            return issues
        own_node = n_inputs + np.repeat(
            np.arange(n_gates, dtype=np.int64), fan_ins
        )
        dangling = sources >= own_node
        if bool(dangling.any()):
            wire = int(np.argmax(dangling))
            issues.append(
                f"gate {int(own_node[wire])} references node "
                f"{int(sources[wire])}, which is not an earlier node"
            )
            return issues

    if n_gates:
        depths = circuit.gate_depths()
        node_depths = np.concatenate(
            [np.zeros(n_inputs, dtype=np.int64), np.asarray(depths, dtype=np.int64)]
        )
        expected = 1 + segment_max(node_depths[sources], offsets)
        mismatched = np.nonzero(expected != depths)[0]
        if mismatched.size:
            gate = int(mismatched[0])
            issues.append(
                f"gate {n_inputs + gate}: recorded depth {int(depths[gate])} "
                f"!= wiring depth {int(expected[gate])} "
                f"({mismatched.size} gate(s) total)"
            )

    n_nodes = n_inputs + n_gates
    for out in circuit.outputs:
        if not (0 <= int(out) < n_nodes):
            issues.append(f"declared output node {int(out)} does not exist")
    return issues


# --------------------------------------------------------------------------
# Abstract interpretation: per-gate signed accumulator intervals.
# --------------------------------------------------------------------------


def gate_intervals(circuit: ThresholdCircuit) -> GateIntervals:
    """Run the interval analysis (the circuit must be structurally valid).

    Each node's value is abstracted to a ``[lo, hi]`` sub-interval of
    ``[0, 1]``; a gate's accumulator interval follows from its sources'
    abstract values and the weight signs, and its own abstract value from
    comparing the interval against the threshold — so constants propagate
    (an always-below-threshold gate contributes exactly 0 downstream) and
    the resulting magnitude bound is at most, and usually below, the
    ``sum |w| + |threshold|`` worst case of ``csr_max_magnitude``.
    """
    cols = circuit.columnar()
    n_inputs = circuit.n_inputs
    n_gates = cols.n_gates
    n_nodes = n_inputs + n_gates

    worst = csr_max_magnitude(
        cols.weights, cols.offsets, cols.thresholds, cols.int64_ok
    )
    fast = cols.int64_ok and worst < _INT64_ANALYSIS_LIMIT
    if fast:
        weights = cols.weights
        thresholds = cols.thresholds
        acc_dtype: Any = np.int64
    else:
        # Exact lane: every operand becomes a Python int so the analysis
        # itself can never wrap, whatever the weights.
        weights = cols.weights.astype(object)
        thresholds = cols.thresholds.astype(object)
        acc_dtype = object

    val_lo = np.zeros(n_nodes, dtype=np.int8)
    val_hi = np.zeros(n_nodes, dtype=np.int8)
    val_hi[:n_inputs] = 1
    acc_lo = np.zeros(n_gates, dtype=acc_dtype)
    acc_hi = np.zeros(n_gates, dtype=acc_dtype)
    max_magnitude = 0
    constant_chunks: List[np.ndarray] = []

    if n_gates:
        depths = circuit.gate_depths()
        for _depth, gate_idx, wire_idx, layer_fan in iter_depth_layers(
            depths, cols.offsets
        ):
            w = weights[wire_idx]
            src = cols.sources[wire_idx]
            if fast:
                src_lo = val_lo[src].astype(np.int64)
                src_hi = val_hi[src].astype(np.int64)
            else:
                src_lo = val_lo[src].astype(object)
                src_hi = val_hi[src].astype(object)
            positive = w >= 0
            # A weight's smallest contribution pairs it with the source
            # bound of the opposite sign direction; 0/1 abstract values
            # make this exact, not just sound.
            contrib_lo = np.where(positive, w * src_lo, w * src_hi)
            contrib_hi = np.where(positive, w * src_hi, w * src_lo)
            layer_offsets = np.zeros(len(gate_idx) + 1, dtype=np.int64)
            np.cumsum(layer_fan, out=layer_offsets[1:])
            lo = segment_sum(contrib_lo, layer_offsets)
            hi = segment_sum(contrib_hi, layer_offsets)
            thr = thresholds[gate_idx]
            fires_lo = lo >= thr  # fires even on the minimal sum -> constant 1
            fires_hi = hi >= thr  # cannot fire on the maximal sum -> constant 0
            val_lo[n_inputs + gate_idx] = fires_lo
            val_hi[n_inputs + gate_idx] = fires_hi
            acc_lo[gate_idx] = lo
            acc_hi[gate_idx] = hi
            if len(gate_idx):
                magnitude = np.maximum(
                    np.maximum(np.abs(lo), np.abs(hi)), np.abs(thr)
                )
                layer_max = int(magnitude.max())
                if layer_max > max_magnitude:
                    max_magnitude = layer_max
                constant = gate_idx[np.asarray(fires_lo == fires_hi)]
                if constant.size:
                    constant_chunks.append(constant + n_inputs)

    constant_gates = (
        np.sort(np.concatenate(constant_chunks))
        if constant_chunks
        else np.empty(0, dtype=np.int64)
    )
    return GateIntervals(
        acc_lo=acc_lo,
        acc_hi=acc_hi,
        val_lo=val_lo,
        val_hi=val_hi,
        max_magnitude=int(max_magnitude),
        constant_gates=constant_gates,
    )


# --------------------------------------------------------------------------
# Reachability: gates that cannot influence any declared output.
# --------------------------------------------------------------------------


def unreachable_gates(circuit: ThresholdCircuit) -> np.ndarray:
    """Node ids of gates with no path to any declared output.

    Runs one backward sweep over the depth layers in decreasing order —
    a gate's consumers always sit at strictly greater depth, so each
    layer's liveness is final by the time it is visited.  Returns an empty
    array when the circuit declares no outputs (then nothing is "dead",
    the notion just does not apply).
    """
    cols = circuit.columnar()
    n_inputs = circuit.n_inputs
    n_gates = cols.n_gates
    if n_gates == 0 or not circuit.outputs:
        return np.empty(0, dtype=np.int64)
    reachable = np.zeros(n_inputs + n_gates, dtype=bool)
    reachable[np.asarray(circuit.outputs, dtype=np.int64)] = True
    layers = list(iter_depth_layers(circuit.gate_depths(), cols.offsets))
    for _depth, gate_idx, wire_idx, layer_fan in reversed(layers):
        live = reachable[n_inputs + gate_idx]
        if not bool(live.any()):
            continue
        live_wires = np.repeat(live, layer_fan)
        reachable[cols.sources[wire_idx[live_wires]]] = True
    return np.nonzero(~reachable[n_inputs:])[0] + n_inputs


# --------------------------------------------------------------------------
# Provenance: every template block re-derives from its compiled template.
# --------------------------------------------------------------------------


def provenance_issues(circuit: ThresholdCircuit) -> List[str]:
    """Check recorded template provenance against the columnar store.

    For every :class:`TemplateBlock` the stamped gates are re-derived from
    the compiled template (fan-ins, weights, thresholds tiled ``k`` times;
    sources re-mapped through the parameter rows exactly as the stamper
    maps them) and compared wire for wire against the store — plus the
    tiling rules ``build_template_plan`` enforces (sorted, non-overlapping,
    in-range blocks whose parameters precede them).  An empty list means
    the provenance is faithful; gaps between blocks are legitimate
    (residual gates emitted outside any stamp).
    """
    issues: List[str] = []
    blocks = [
        block
        for block in getattr(circuit, "template_blocks", [])
        if getattr(block, "k", 0)
    ]
    if not blocks:
        return issues
    cols = circuit.columnar()
    n_inputs = circuit.n_inputs
    size = cols.n_gates
    cursor = 0
    for block in sorted(blocks, key=lambda b: b.base):
        label = f"template block at node {int(block.base)}"
        template = block.template
        if template is None or template.n_gates == 0:
            issues.append(f"{label}: no compiled template attached")
            continue
        params = np.asarray(block.params)
        if params.ndim != 2 or params.shape[1] != template.n_params:
            issues.append(
                f"{label}: parameter rows have shape {params.shape}, "
                f"expected (k, {template.n_params})"
            )
            continue
        if params.size and (
            int(params.min()) < 0 or int(params.max()) >= block.base
        ):
            issues.append(
                f"{label}: parameter node ids must lie in [0, {int(block.base)})"
            )
            continue
        first = int(block.base) - n_inputs
        length = block.k * template.n_gates
        if first < cursor:
            issues.append(f"{label}: overlaps the preceding block")
            continue
        if first < 0 or first + length > size:
            issues.append(f"{label}: extends outside the gate range")
            continue
        cursor = first + length

        fan = np.diff(template.offsets)
        actual_fan = np.diff(cols.offsets[first : first + length + 1])
        if not np.array_equal(actual_fan, np.tile(fan, block.k)):
            issues.append(f"{label}: stamped fan-ins do not match the template")
            continue
        if not np.array_equal(
            cols.thresholds[first : first + length],
            np.tile(template.thresholds, block.k),
        ):
            issues.append(
                f"{label}: stamped thresholds do not match the template"
            )
            continue
        lo = int(cols.offsets[first])
        hi = int(cols.offsets[first + length])
        if not np.array_equal(
            cols.weights[lo:hi], np.tile(template.weights, block.k)
        ):
            issues.append(f"{label}: stamped weights do not match the template")
            continue
        # Source re-derivation: exactly the stamper's translation — local
        # parameter slots read the copy's parameter row, local gate ids
        # shift by base + copy * n_gates.
        shift = np.arange(block.k, dtype=np.int64)[:, None] * template.n_gates
        internal = (
            (int(block.base) - template.n_params)
            + template.sources[None, :]
            + shift
        )
        if template.n_params:
            is_param = template.sources < template.n_params
            slots = np.where(is_param, template.sources, 0)
            expected = np.where(is_param[None, :], params[:, slots], internal)
        else:
            expected = internal
        actual = cols.sources[lo:hi]
        if not np.array_equal(actual, expected.reshape(-1)):
            mismatch = np.nonzero(actual != expected.reshape(-1))[0]
            issues.append(
                f"{label}: stamped sources diverge from the template "
                f"re-derivation (first at wire {int(mismatch[0])} of the "
                f"block, {mismatch.size} wire(s) total)"
            )
    return issues


def _covered_gates(circuit: ThresholdCircuit) -> int:
    total = 0
    for block in getattr(circuit, "template_blocks", []):
        template = getattr(block, "template", None)
        if template is not None:
            total += int(getattr(block, "k", 0)) * int(template.n_gates)
    return total


# --------------------------------------------------------------------------
# Plan cross-checks: both compiled forms well-formed and in agreement.
# --------------------------------------------------------------------------


def _layer_plan_issues(plan: LayerPlan) -> List[str]:
    issues: List[str] = []
    last_depth = 0
    planned: List[np.ndarray] = []
    for spec in plan.layers:
        if spec.depth <= last_depth:
            issues.append(
                f"layer plan: depth {spec.depth} layer does not strictly "
                f"increase over {last_depth}"
            )
        last_depth = spec.depth
        nodes = np.asarray(spec.nodes, dtype=np.int64)
        planned.append(nodes)
        if nodes.size and (
            int(nodes.min()) < plan.n_inputs or int(nodes.max()) >= plan.n_nodes
        ):
            issues.append(
                f"layer plan: depth {spec.depth} layer holds node ids outside "
                f"[{plan.n_inputs}, {plan.n_nodes})"
            )
        cols_arr = np.asarray(spec.cols, dtype=np.int64)
        if cols_arr.size and (
            int(cols_arr.min()) < 0 or int(cols_arr.max()) >= plan.n_nodes
        ):
            issues.append(
                f"layer plan: depth {spec.depth} layer reads sources outside "
                f"[0, {plan.n_nodes})"
            )
        rows = np.asarray(spec.rows, dtype=np.int64)
        if rows.size and (
            int(rows.min()) < 0 or int(rows.max()) >= spec.n_gates
        ):
            issues.append(
                f"layer plan: depth {spec.depth} layer wire rows outside "
                f"[0, {spec.n_gates})"
            )
    total = int(sum(len(nodes) for nodes in planned))
    expected_total = plan.n_nodes - plan.n_inputs
    if total != expected_total:
        issues.append(
            f"layer plan covers {total} gates, circuit has {expected_total}"
        )
    elif planned:
        all_nodes = np.concatenate(planned)
        if len(np.unique(all_nodes)) != total:
            issues.append("layer plan schedules some gate more than once")
    return issues


def _template_plan_issues(plan: TemplatePlan) -> List[str]:
    issues: List[str] = []
    cursor = 0
    for segment in plan.segments:
        if isinstance(segment, ResidualSegment):
            nodes = (
                np.sort(
                    np.concatenate(
                        [
                            np.asarray(layer.nodes, dtype=np.int64)
                            for layer in segment.layers
                        ]
                    )
                )
                if segment.layers
                else np.empty(0, dtype=np.int64)
            )
            count = len(nodes)
            expected = plan.n_inputs + cursor + np.arange(count, dtype=np.int64)
            if not np.array_equal(nodes, expected):
                issues.append(
                    f"template plan: residual segment at gate {cursor} does "
                    "not cover its gap exactly"
                )
            cursor += count
        else:  # a TemplateBlock
            first = int(segment.base) - plan.n_inputs
            if first != cursor:
                issues.append(
                    f"template plan: block at node {int(segment.base)} does "
                    f"not start at the tiling cursor (gate {cursor})"
                )
            cursor = first + segment.k * segment.template.n_gates
    if cursor != plan.size:
        issues.append(
            f"template plan segments cover {cursor} gates, circuit has "
            f"{plan.size}"
        )
    return issues


# --------------------------------------------------------------------------
# The top-level entry point.
# --------------------------------------------------------------------------


def verify_circuit(
    circuit: ThresholdCircuit,
    *,
    intervals: bool = True,
    provenance: bool = True,
    reachability: bool = True,
    plans: bool = True,
    target: str = "",
) -> StaticReport:
    """Statically verify a circuit; returns a :class:`StaticReport`.

    The structure pass always runs; ``intervals``, ``provenance``,
    ``reachability`` and ``plans`` toggle the deeper passes (the serialize
    path runs structure + provenance only, the CLI and the engine debug
    gate run everything).  The deeper passes are skipped when structure
    fails — their math assumes a well-formed store.
    """
    report = StaticReport(target=target or circuit.name or "<circuit>")
    cols: Columns = circuit.columnar()
    report.info["n_inputs"] = int(circuit.n_inputs)
    report.info["n_gates"] = int(cols.n_gates)
    report.info["n_edges"] = int(cols.n_edges)
    report.info["n_outputs"] = len(circuit.outputs)

    report.issues.extend(structure_issues(circuit))

    worst = csr_max_magnitude(
        cols.weights, cols.offsets, cols.thresholds, cols.int64_ok
    )
    report.info["max_magnitude"] = int(worst)
    report.info["int64_safe"] = bool(worst < INT64_SAFE_LIMIT)
    report.info["float64_exact"] = bool(worst < _FLOAT64_EXACT_LIMIT)

    if provenance:
        blocks = [
            block
            for block in getattr(circuit, "template_blocks", [])
            if getattr(block, "k", 0)
        ]
        report.info["template_blocks"] = len(blocks)
        report.info["covered_gates"] = _covered_gates(circuit)
        prov_issues = provenance_issues(circuit)
        report.issues.extend(prov_issues)
    else:
        blocks = []
        prov_issues = []

    if not report.ok:
        return report

    interval_summary: Optional[GateIntervals] = None
    if intervals:
        interval_summary = gate_intervals(circuit)
        report.info["interval_max_magnitude"] = interval_summary.max_magnitude
        report.info["interval_int64_safe"] = interval_summary.int64_safe
        report.info["constant_gates"] = int(len(interval_summary.constant_gates))
        if interval_summary.constant_gates.size:
            report.warnings.append(
                f"{len(interval_summary.constant_gates)} gate(s) are constant "
                f"on every input (e.g. nodes "
                f"{_sample(interval_summary.constant_gates)})"
            )
        if interval_summary.max_magnitude > worst:
            report.issues.append(
                "interval analysis exceeded the worst-case magnitude bound "
                f"({interval_summary.max_magnitude} > {worst}) — analyzer bug"
            )

    if reachability:
        if circuit.outputs:
            dead = unreachable_gates(circuit)
            report.info["unreachable_gates"] = int(len(dead))
            if dead.size:
                report.warnings.append(
                    f"{len(dead)} gate(s) cannot reach any declared output "
                    f"(e.g. nodes {_sample(dead)})"
                )
        else:
            report.info["unreachable_gates"] = 0
            report.warnings.append(
                "circuit declares no outputs; reachability not checked"
            )

    if plans:
        plan = build_layer_plan(circuit)
        if plan.max_magnitude != worst:
            report.issues.append(
                f"build_layer_plan reports max_magnitude {plan.max_magnitude}, "
                f"verifier derived {worst}"
            )
        if plan.int64_safe != (worst < INT64_SAFE_LIMIT):
            report.issues.append(
                "build_layer_plan int64_safe verdict disagrees with the "
                "verifier's magnitude bound"
            )
        if interval_summary is not None and (
            interval_summary.max_magnitude > plan.max_magnitude
        ):
            report.issues.append(
                "interval bound exceeds the layer plan's worst case — "
                "analyzer bug"
            )
        report.issues.extend(_layer_plan_issues(plan))
        if blocks and not prov_issues:
            template_plan = build_template_plan(circuit)
            if template_plan is None:
                report.issues.append(
                    "provenance verified but build_template_plan refused the "
                    "factorization"
                )
            else:
                if template_plan.max_magnitude != plan.max_magnitude:
                    report.issues.append(
                        "template plan and layer plan disagree on "
                        f"max_magnitude ({template_plan.max_magnitude} != "
                        f"{plan.max_magnitude})"
                    )
                if template_plan.int64_safe != plan.int64_safe:
                    report.issues.append(
                        "template plan and layer plan disagree on int64_safe"
                    )
                report.issues.extend(_template_plan_issues(template_plan))

    return report
