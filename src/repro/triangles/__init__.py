"""Triangle counting / social-network analysis application (paper Section 5)."""

from repro.triangles.graphs import (
    adjacency_matrix,
    graph_from_adjacency,
    validate_adjacency,
    pad_adjacency,
)
from repro.triangles.counting import (
    triangle_count,
    wedge_count,
    trace_cubed,
    triangles_per_vertex,
)
from repro.triangles.clustering import (
    global_clustering_coefficient,
    transitivity,
    tau_from_wedges,
    tau_from_clustering_target,
)
from repro.triangles.generators import (
    erdos_renyi_adjacency,
    block_two_level_adjacency,
    preferential_attachment_adjacency,
    planted_clique_adjacency,
)
from repro.triangles.queries import TriangleQuery, build_triangle_query

__all__ = [
    "adjacency_matrix",
    "graph_from_adjacency",
    "validate_adjacency",
    "pad_adjacency",
    "triangle_count",
    "wedge_count",
    "trace_cubed",
    "triangles_per_vertex",
    "global_clustering_coefficient",
    "transitivity",
    "tau_from_wedges",
    "tau_from_clustering_target",
    "erdos_renyi_adjacency",
    "block_two_level_adjacency",
    "preferential_attachment_adjacency",
    "planted_clique_adjacency",
    "TriangleQuery",
    "build_triangle_query",
]
