"""Clustering coefficients and threshold (tau) selection.

Section 5 of the paper motivates the trace-threshold question through the
*global clustering coefficient* (transitivity): the fraction of wedges that
close into triangles.  Practitioners pick ``tau`` as a function of the wedge
count D — "usually they compute the total number of wedges D in O(N) time
and set tau to some function of D (perhaps just scaling by a constant)".
"""

from __future__ import annotations

import math
from typing import Optional

from repro.triangles.counting import triangle_count, wedge_count

__all__ = [
    "global_clustering_coefficient",
    "transitivity",
    "tau_from_wedges",
    "tau_from_clustering_target",
]


def global_clustering_coefficient(adjacency) -> float:
    """``3 * triangles / wedges`` (0 when the graph has no wedges)."""
    wedges = wedge_count(adjacency)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(adjacency) / wedges


# The social-network literature uses "transitivity" for the same ratio.
transitivity = global_clustering_coefficient


def tau_from_wedges(adjacency, target_coefficient: float) -> int:
    """Triangle threshold corresponding to a target clustering coefficient.

    A graph has global clustering coefficient at least ``target_coefficient``
    exactly when it has at least ``ceil(target * wedges / 3)`` triangles;
    that integer is the natural ``tau`` for the trace-threshold circuit
    (``trace(A^3) >= 6 * tau``).
    """
    if not (0.0 <= target_coefficient <= 1.0):
        raise ValueError(
            f"the clustering coefficient target must be in [0, 1], got {target_coefficient}"
        )
    wedges = wedge_count(adjacency)
    return max(1, math.ceil(target_coefficient * wedges / 3.0))


def tau_from_clustering_target(
    n_wedges: int,
    target_coefficient: float,
) -> int:
    """Same as :func:`tau_from_wedges` but from a precomputed wedge count."""
    if n_wedges < 0:
        raise ValueError(f"wedge count must be nonnegative, got {n_wedges}")
    if not (0.0 <= target_coefficient <= 1.0):
        raise ValueError(
            f"the clustering coefficient target must be in [0, 1], got {target_coefficient}"
        )
    return max(1, math.ceil(target_coefficient * n_wedges / 3.0))
