"""Exact triangle / wedge counting oracles.

These are the reference quantities the circuit answers are validated
against: ``triangles(G) = trace(A^3) / 6`` and the wedge (length-2 path)
count used to pick the threshold ``tau`` in Section 5.
"""

from __future__ import annotations

import numpy as np

from repro.triangles.graphs import validate_adjacency

__all__ = ["triangle_count", "wedge_count", "trace_cubed", "triangles_per_vertex"]


def trace_cubed(adjacency) -> int:
    """Exact ``trace(A^3)`` of a 0/1 adjacency matrix (equals 6 * triangles)."""
    adj = validate_adjacency(adjacency).astype(object)
    return int(np.trace(adj @ adj @ adj))


def triangle_count(adjacency) -> int:
    """Exact number of triangles in the graph."""
    trace = trace_cubed(adjacency)
    if trace % 6 != 0:
        raise AssertionError("trace(A^3) of a simple graph must be divisible by 6")
    return trace // 6


def wedge_count(adjacency) -> int:
    """Number of wedges (paths of length 2): ``sum_v C(deg(v), 2)``."""
    adj = validate_adjacency(adjacency)
    degrees = adj.sum(axis=1)
    return int((degrees * (degrees - 1) // 2).sum())


def triangles_per_vertex(adjacency) -> np.ndarray:
    """Number of triangles through each vertex (``diag(A^3) / 2``)."""
    adj = validate_adjacency(adjacency).astype(object)
    cube = adj @ adj @ adj
    diag = np.array([int(cube[i, i]) for i in range(adj.shape[0])], dtype=np.int64)
    if (diag % 2 != 0).any():
        raise AssertionError("diag(A^3) of a simple graph must be even")
    return diag // 2
