"""Synthetic social-network-like graph generators.

Social networks of interest to the paper (Section 5) are proprietary and far
too large for explicit circuit construction; following the reproduction's
substitution rule we generate synthetic graphs that exercise the same code
paths and exhibit the structural property the application cares about
(community structure -> high clustering coefficient):

* Erdős–Rényi G(n, p) — the low-clustering control;
* a Block Two-Level Erdős–Rényi (BTER-like) generator in the spirit of
  Seshadhri, Kolda and Pinar (cited by the paper): dense within-community
  blocks plus a sparse background, giving tunable community structure;
* a simple power-law / preferential-attachment style generator for degree
  heterogeneity.

All generators return adjacency matrices ready for the circuits (symmetric,
0/1, zero diagonal), optionally padded to a power of the base dimension.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.triangles.graphs import validate_adjacency

__all__ = [
    "erdos_renyi_adjacency",
    "block_two_level_adjacency",
    "preferential_attachment_adjacency",
    "planted_clique_adjacency",
]


def _symmetrize_upper(upper: np.ndarray) -> np.ndarray:
    upper = np.triu(upper, k=1)
    return (upper | upper.T).astype(np.int64)


def erdos_renyi_adjacency(
    n: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """G(n, p) adjacency matrix."""
    if n < 1:
        raise ValueError(f"graph size must be positive, got {n}")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng() if rng is None else rng
    upper = rng.random((n, n)) < p
    return validate_adjacency(_symmetrize_upper(upper))


def block_two_level_adjacency(
    n: int,
    block_size: int,
    p_within: float = 0.7,
    p_between: float = 0.02,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """BTER-like generator: dense communities over a sparse background.

    Vertices are partitioned into consecutive blocks of ``block_size``; pairs
    within a block are connected with probability ``p_within`` and pairs in
    different blocks with probability ``p_between``.  Larger
    ``p_within / p_between`` ratios give higher global clustering
    coefficients, the regime the paper's Section 5 discussion targets.
    """
    if block_size < 1 or block_size > n:
        raise ValueError(f"block size must be in [1, {n}], got {block_size}")
    for name, p in (("p_within", p_within), ("p_between", p_between)):
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    rng = np.random.default_rng() if rng is None else rng
    blocks = np.arange(n) // block_size
    same_block = blocks[:, None] == blocks[None, :]
    probabilities = np.where(same_block, p_within, p_between)
    upper = rng.random((n, n)) < probabilities
    return validate_adjacency(_symmetrize_upper(upper))


def preferential_attachment_adjacency(
    n: int,
    m: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Barabási–Albert style graph with ``m`` edges per arriving vertex."""
    if n < 2:
        raise ValueError(f"graph size must be at least 2, got {n}")
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    rng = np.random.default_rng() if rng is None else rng
    adj = np.zeros((n, n), dtype=np.int64)
    # Start from a small clique so early vertices have nonzero degree.
    seed = min(m + 1, n)
    adj[:seed, :seed] = 1
    np.fill_diagonal(adj, 0)
    degrees = adj.sum(axis=1).astype(np.float64)
    for v in range(seed, n):
        weights = degrees[:v]
        total = weights.sum()
        probabilities = weights / total if total > 0 else np.full(v, 1.0 / v)
        k = min(m, v)
        targets = rng.choice(v, size=k, replace=False, p=probabilities)
        for u in targets:
            adj[v, u] = adj[u, v] = 1
        degrees = adj.sum(axis=1).astype(np.float64)
    return validate_adjacency(adj)


def planted_clique_adjacency(
    n: int,
    clique_size: int,
    background_p: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Erdős–Rényi background with a planted clique on the first vertices.

    Useful for testing threshold queries: the planted clique contributes
    exactly ``C(clique_size, 3)`` triangles on top of the sparse background.
    """
    if clique_size > n:
        raise ValueError(f"clique size {clique_size} exceeds graph size {n}")
    rng = np.random.default_rng() if rng is None else rng
    adj = erdos_renyi_adjacency(n, background_p, rng=rng)
    adj[:clique_size, :clique_size] = 1
    np.fill_diagonal(adj, 0)
    return validate_adjacency(adj)
