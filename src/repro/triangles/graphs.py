"""Graph <-> adjacency-matrix helpers for the triangle-counting application.

The paper's Section 2.3 / Section 5 application: a graph G on N vertices is
given by its symmetric 0/1 adjacency matrix A (zero diagonal);
``trace(A^3) = 6 * (#triangles)``, so the trace-threshold circuit answers
"does G have at least tau triangles?".
"""

from __future__ import annotations

from typing import Iterable, Tuple

import networkx as nx
import numpy as np

__all__ = [
    "adjacency_matrix",
    "graph_from_adjacency",
    "validate_adjacency",
    "pad_adjacency",
]


def adjacency_matrix(graph: nx.Graph, n: int = None) -> np.ndarray:
    """Symmetric 0/1 adjacency matrix of a simple undirected graph.

    Vertices are relabelled to ``0..N-1`` in sorted order; ``n`` may be given
    to embed the graph into a larger (zero-padded) matrix, e.g. to reach a
    power of the circuit's base dimension.
    """
    nodes = sorted(graph.nodes())
    size = len(nodes) if n is None else n
    if size < len(nodes):
        raise ValueError(f"target size {size} smaller than the graph ({len(nodes)} nodes)")
    index = {v: i for i, v in enumerate(nodes)}
    adj = np.zeros((size, size), dtype=np.int64)
    for u, v in graph.edges():
        if u == v:
            continue
        i, j = index[u], index[v]
        adj[i, j] = adj[j, i] = 1
    return adj


def graph_from_adjacency(adjacency: np.ndarray) -> nx.Graph:
    """Build a networkx graph from a symmetric 0/1 adjacency matrix."""
    adjacency = validate_adjacency(adjacency)
    graph = nx.Graph()
    n = adjacency.shape[0]
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(np.triu(adjacency, k=1))
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


def validate_adjacency(adjacency) -> np.ndarray:
    """Check symmetry, zero diagonal and 0/1 entries; return as int64 array."""
    adj = np.asarray(adjacency)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {adj.shape}")
    if not np.isin(adj, (0, 1)).all():
        raise ValueError("adjacency matrix entries must be 0/1")
    if (np.diag(adj) != 0).any():
        raise ValueError("adjacency matrix must have a zero diagonal (no self-loops)")
    if (adj != adj.T).any():
        raise ValueError("adjacency matrix must be symmetric")
    return adj.astype(np.int64)


def pad_adjacency(adjacency: np.ndarray, base: int) -> Tuple[np.ndarray, int]:
    """Zero-pad an adjacency matrix so its size is a power of ``base``.

    Padding with isolated vertices changes neither the triangle count nor
    the wedge count, so thresholds computed on the original graph remain
    valid.  Returns ``(padded, original_n)``.
    """
    from repro.util.matrices import pad_to_power

    adj = validate_adjacency(adjacency)
    return pad_to_power(adj, base)
